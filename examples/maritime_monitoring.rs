//! Maritime monitoring: windowed ship counts persisted to an external store.
//!
//! Run with: `cargo run --example maritime_monitoring`

use stream2gym::apps::maritime;
use stream2gym::core::ascii_table;
use stream2gym::sim::SimTime;
use stream2gym::store::StoreServer;

fn main() {
    let scenario = maritime::scenario(500, SimTime::from_secs(90), 4);
    println!("running the maritime-monitoring pipeline...");
    let result = scenario.run().expect("scenario is valid");

    let store_pid = result.store_pids["h-store"];
    let store = result
        .sim
        .process_ref::<StoreServer>(store_pid)
        .expect("store");
    let mut tables = store.tables().clone();
    let groups = tables
        .group_count("port_counts", "c0")
        .expect("table exists");
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|(port, n)| vec![port.clone(), n.to_string()])
        .collect();
    println!(
        "{}",
        ascii_table(
            "windows persisted per watched port",
            &["port", "windows"],
            &rows
        )
    );
    let (r_in, r_out) = result.report.spe["port-counts"].record_counts;
    println!(
        "stream job: {r_in} reports in, {r_out} window counts out (filtered to watched ports)"
    );
    println!("store now holds {} rows", store.tables().total_rows());
}
