//! Ride selection: join + groupby + window over structured taxi data.
//!
//! Streams rides and fares from two producers, joins them by ride id in the
//! stream job, groups by pickup area, and reports the best tipping areas.
//!
//! Run with: `cargo run --example ride_selection`

use stream2gym::apps::ride_selection::{self, rank_areas};
use stream2gym::broker::{CollectingSink, ConsumerProcess};
use stream2gym::core::{ascii_table, MonitoredSink};
use stream2gym::sim::SimTime;
use stream2gym::spe::Event;

fn main() {
    let scenario = ride_selection::scenario(400, SimTime::from_secs(90), 7);
    println!("running the ride-selection pipeline...");
    let result = scenario.run().expect("scenario is valid");

    // Decode the windowed averages the consumer received.
    let pid = result.consumer_pids[0];
    let cons = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cons.sink_as::<MonitoredSink>().expect("monitored sink");
    let inner = (monitored.inner() as &dyn std::any::Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    let events: Vec<Event> = inner
        .deliveries
        .iter()
        .filter_map(|(_, _, r)| Event::from_bytes(&r.value).ok())
        .collect();

    let ranking = rank_areas(&events);
    let rows: Vec<Vec<String>> = ranking
        .iter()
        .map(|(area, rate)| vec![area.clone(), format!("{:.1}%", rate * 100.0)])
        .collect();
    println!(
        "{}",
        ascii_table("best tipping areas", &["area", "mean tip rate"], &rows)
    );
    println!(
        "({} joined window results across {} deliveries)",
        events.len(),
        result.total_deliveries()
    );
}
