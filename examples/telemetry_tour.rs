//! A tour of the telemetry subsystem: metrics, time series, and tracing.
//!
//! Runs a checkpointed word-count pipeline whose worker is crashed and
//! restarted mid-stream, with the sampler on a 200 ms interval and the
//! causal tracer enabled, then walks through everything the run recorded:
//! registry totals, tail-quantile latency stats, sampled time series, the
//! fault/recovery markers, and the Chrome-trace export.
//!
//! Run with: `cargo run --release --example telemetry_tour`

use stream2gym::apps::word_count::recovery_scenario;
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::CheckpointCfg;
use stream2gym::telemetry::validate_chrome_trace;

fn main() {
    let mut sc = recovery_scenario(
        160,
        SimDuration::from_millis(40),
        SimTime::from_secs(30),
        42,
    );
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
    sc.telemetry_interval(SimDuration::from_millis(200));
    sc.with_telemetry_trace(true);
    sc.faults(FaultPlan::new().crash_restart(
        "wordcount",
        SimTime::from_millis(4_500),
        SimDuration::from_millis(1_000),
    ));
    let result = sc.run().expect("valid scenario");
    let tele = &result.telemetry;

    println!("== the metrics registry (always-on counters/gauges/histograms) ==");
    {
        let reg = tele.registry();
        println!(
            "  {} metrics registered across every process scope",
            reg.metrics().len()
        );
        for (scope, name) in [
            ("broker-0", "records_appended"),
            ("wordcount", "records_in"),
            ("wordcount", "records_out"),
        ] {
            if let Some(v) = reg.counter(scope, name) {
                println!("  {scope:<12} {name:<18} = {v}");
            }
        }
        if let Some(h) = reg.histogram("wordcount", "checkpoint_duration_s") {
            let s = h.stats().expect("checkpoints ran");
            println!(
                "  wordcount    checkpoint_duration_s: n={} mean={:.4}s p50={:.4}s p95={:.4}s p99={:.4}s",
                s.count, s.mean, s.p50, s.p95, s.p99
            );
        }
    }

    println!("\n== delivery latency quantiles (MonitorCore + the histogram type) ==");
    {
        let monitor = result.monitor.borrow();
        if let Some(s) = monitor.latency_stats("counts") {
            println!(
                "  counts: n={} mean={:.3}s p50={:.3}s p95={:.3}s p99={:.3}s max={:.3}s",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            );
        }
        println!(
            "  clamped negative latencies: {}",
            monitor.clamped_latencies
        );
    }

    println!("\n== sampled time series (one snapshot per 200 ms of sim time) ==");
    let series = &result.report.metric_series;
    println!("  {} series captured; a selection:", series.len());
    for s in series {
        let interesting = (s.scope == "wordcount" && s.name == "records_out")
            || (s.scope == "broker-0" && s.name == "log_bytes")
            || s.name == "cpu_occupancy";
        if interesting {
            let (t_last, v_last) = s.points.last().copied().expect("sampled");
            println!(
                "  {:<12} {:<16} {} points, last = {:.2} at t={:.1}s",
                s.scope,
                s.name,
                s.points.len(),
                v_last,
                t_last.as_secs_f64()
            );
        }
    }
    let csv = tele.tidy_csv();
    println!(
        "  tidy CSV export: {} rows, header `{}`",
        csv.lines().count() - 1,
        csv.lines().next().expect("header")
    );

    println!("\n== the causal trace (crash -> recovery, span by span) ==");
    {
        // Fault and recovery phases in full; checkpoint events only inside
        // the crash window, or the steady-state barriers drown the story.
        let window = SimTime::from_millis(3_000)..SimTime::from_millis(8_000);
        let tracer = tele.tracer();
        for e in tracer.events() {
            if e.cat == "fault"
                || e.cat == "recovery"
                || (e.cat == "checkpoint" && window.contains(&e.at))
            {
                println!(
                    "  t={:>7.3}s [{:<10}] {:<12} {}",
                    e.at.as_secs_f64(),
                    e.cat,
                    e.scope,
                    e.name
                );
            }
        }
    }
    let json = tele.chrome_json();
    let summary = validate_chrome_trace(&json).expect("well-formed trace");
    println!(
        "  Chrome-trace JSON: {} events ({} spans, {} instants) across {} processes",
        summary.events, summary.spans, summary.instants, summary.processes
    );
    println!("  (write it to a file and load in chrome://tracing or ui.perfetto.dev)");
}
