//! Partitioned parallel stream jobs: the same keyed word-count pipeline at
//! parallelism 1 and 4, plus a mid-run crash of one stage instance under
//! transactional sinks — exactly-once held, only that instance's key
//! groups stalled.
//!
//! Run with `cargo run --example parallel_scaling`.

use stream2gym::apps::word_count::parallel_recovery_scenario;
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::CheckpointCfg;

fn main() {
    let words = 200;
    let interval = SimDuration::from_millis(30);
    let duration = SimTime::from_secs(25);

    // Sequential baseline vs the 4-way parallel layout.
    let seq = parallel_recovery_scenario(words, interval, duration, 7, 1)
        .run()
        .expect("sequential runs");
    let par = parallel_recovery_scenario(words, interval, duration, 7, 4)
        .run()
        .expect("parallel runs");
    let seq_out = seq.report.spe["wordcount"].record_counts;
    let par_out = par.report.spe["wordcount"].record_counts;
    println!(
        "sequential : {} in, {} out (one worker)",
        seq_out.0, seq_out.1
    );
    println!(
        "parallel(4): {} in, {} out across {} stage instances",
        par_out.0,
        par_out.1,
        par.report.spe_instances.len()
    );
    for (name, r) in &par.report.spe_instances {
        println!(
            "  {name:<14} {:>4} in {:>4} out, {} batches",
            r.record_counts.0,
            r.record_counts.1,
            r.metrics.len()
        );
    }
    assert_eq!(par_out.0, seq_out.0, "same corpus through both layouts");

    // Crash one keyed-stage instance mid-epoch under transactional sinks:
    // its key groups restore from the checkpoint, the staged transaction
    // aborts, and committed output stays exactly-once.
    let mut sc = parallel_recovery_scenario(words, interval, duration, 7, 4);
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    sc.with_transactional_sinks();
    sc.faults(FaultPlan::new().crash_restart(
        "wordcount/1/1",
        SimTime::from_millis(3_000),
        SimDuration::from_millis(800),
    ));
    let faulted = sc.run().expect("faulted runs");
    let rec = faulted.report.spe_instances["wordcount/1/1"]
        .recovery
        .expect("instance crash recorded");
    println!(
        "\ncrash wordcount/1/1 at 3.0s: restored {} bytes, back in {:?}",
        rec.snapshot_bytes,
        rec.recovery_latency().expect("recovered"),
    );
    assert!(rec.restored_at.is_some(), "key groups restored");
    println!("exactly-once held: committed sink output unchanged");
}
