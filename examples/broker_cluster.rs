//! Multi-broker partition replication, narrated: a 3-broker cluster
//! replicates every partition (RF=3), a producer writes at `acks=all`,
//! and the partition leader's broker is crashed mid-run.
//!
//! Watch for three things in the output:
//!
//! * the controller detects the dead session and moves partition
//!   leadership to an in-sync replica (`leadership moves`);
//! * the surviving leaders shrink their ISR around the outage and
//!   re-expand it once the restarted broker catches up over replica
//!   fetch with epoch-based truncation;
//! * at `acks=all` no acknowledged record is lost — the produce stall is
//!   the leader-rediscovery window, not a data-loss window. Contrast
//!   with RF=1, where the same crash is a full outage until the broker
//!   returns.
//!
//! Run with: `cargo run --release --example broker_cluster`

use stream2gym::broker::{BrokerConfig, ControllerConfig, ProducerConfig, TopicSpec};
use stream2gym::core::{Scenario, SourceSpec};
use stream2gym::net::{FaultPlan, LinkSpec};
use stream2gym::proto::AckMode;
use stream2gym::sim::{SimDuration, SimTime};

const RECORDS: u64 = 900;
const INTERVAL_MS: u64 = 30;
const CRASH_AT_S: u64 = 12;
const DOWN_FOR_S: u64 = 4;
const RUN_S: u64 = 35;

fn run(rf: u32) -> (f64, f64, u64, u64, u64) {
    let mut sc = Scenario::new("broker-cluster");
    sc.seed(7)
        .duration(SimTime::from_secs(RUN_S))
        .default_link(LinkSpec::new().latency_ms(2))
        .topic(TopicSpec::new("data"));
    // Failure detection tuned so a 4 s outage triggers an election: the
    // 6 s default session timeout would simply wait the crash out.
    let broker_cfg = BrokerConfig {
        heartbeat_interval: SimDuration::from_millis(300),
        session_timeout: SimDuration::from_secs(1),
        replica_fetch_interval: SimDuration::from_millis(10),
        replica_lag_max: SimDuration::from_secs(1),
        ..BrokerConfig::default()
    };
    for h in ["h1", "h2", "h3"] {
        sc.broker_with(h, broker_cfg.clone());
    }
    sc.controller_config(ControllerConfig {
        session_timeout: SimDuration::from_secs(1),
        session_check_interval: SimDuration::from_millis(250),
        ..ControllerConfig::default()
    });
    sc.with_replicated_partitions(rf);
    sc.with_acks(AckMode::All);
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "data".into(),
            count: RECORDS,
            interval: SimDuration::from_millis(INTERVAL_MS),
            payload: 200,
        },
        ProducerConfig {
            request_timeout: SimDuration::from_millis(500),
            ..ProducerConfig::default()
        },
    );
    sc.consumer("hc", Default::default(), &["data"]);
    sc.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_secs(CRASH_AT_S),
        SimDuration::from_secs(DOWN_FOR_S),
    ));

    let result = sc.run().expect("scenario is valid");
    let p = &result.report.producers[0];
    // Availability: the share of records acked within a 1 s SLO (queued
    // records do ack eventually — the delivery timeout is 120 s — but an
    // ack minutes late is an outage as far as the application is
    // concerned).
    let slo = SimDuration::from_secs(1);
    let within_slo = p
        .outcomes
        .iter()
        .filter(|o| o.delivered && o.completed.saturating_since(o.created) <= slo)
        .count();
    let crash_at = SimTime::from_secs(CRASH_AT_S);
    // The produce outage: gap from the crash to the first ack after it.
    let mut completions: Vec<SimTime> = p
        .outcomes
        .iter()
        .filter(|o| o.delivered)
        .map(|o| o.completed)
        .collect();
    completions.sort();
    let outage_s = completions
        .iter()
        .find(|t| **t >= crash_at)
        .map(|t| t.saturating_since(crash_at).as_nanos() as f64 / 1e9)
        .unwrap_or(f64::NAN);
    let (mut moves, mut shrinks, mut expands) = (0, 0, 0);
    for b in &result.report.brokers {
        if let Some(r) = b.recovery {
            moves += r.leadership_moves;
            shrinks = shrinks.max(r.isr_shrinks);
            expands = expands.max(r.isr_expands);
        }
    }
    (
        100.0 * within_slo as f64 / RECORDS as f64,
        outage_s,
        moves,
        shrinks,
        expands,
    )
}

fn main() {
    println!(
        "producing {RECORDS} records at acks=all; crashing broker 0 at \
         {CRASH_AT_S}s for {DOWN_FOR_S}s...\n"
    );
    for rf in [1, 3] {
        let (avail_pct, outage_s, moves, shrinks, expands) = run(rf);
        println!("RF={rf}:");
        println!("  acked within 1s SLO    {avail_pct:.1}%");
        println!("  produce outage         {outage_s:.2}s");
        println!("  leadership moves       {moves}");
        println!("  ISR shrinks/expands    {shrinks}/{expands}");
        if rf == 1 {
            println!("  (no replicas: the outage spans the whole downtime)\n");
        } else {
            println!("  (an in-sync replica took over within the election window)");
        }
    }
}
