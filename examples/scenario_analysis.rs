//! Walk a deliberately misconfigured scenario through the static
//! analyzer, then fix it knob by knob until it analyzes clean.
//!
//! ```text
//! cargo run --release --example scenario_analysis
//! ```

use stream2gym::broker::TopicSpec;
use stream2gym::core::{Scenario, ScenarioError, SourceSpec, SpeJobSpec, SpeSinkSpec};
use stream2gym::net::FaultPlan;
use stream2gym::proto::AckMode;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, SpeConfig};

fn broken() -> Scenario {
    let mut sc = Scenario::new("analysis-demo");
    sc.duration(SimTime::from_secs(30))
        .topic(TopicSpec::new("clicks"))
        .topic(TopicSpec::new("counts"))
        .broker("bh1");
    // Typo'd source topic, transactional sink with no checkpointing,
    // and a fault aimed at a job that doesn't exist.
    sc.producer(
        "ph",
        SourceSpec::Rate {
            topic: "click".into(),
            count: 100,
            interval: SimDuration::from_millis(50),
            payload: 64,
        },
        Default::default(),
    );
    sc.spe_job(
        "jh",
        SpeJobSpec::new(
            "clickcount",
            vec!["clicks".into()],
            stream2gym::apps::word_count::running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig::default(),
        ),
    );
    sc.with_transactional_sinks();
    sc.faults(FaultPlan::new().crash_restart(
        "clickcounts",
        SimTime::from_secs(10),
        SimDuration::from_secs(2),
    ));
    sc
}

fn main() -> Result<(), ScenarioError> {
    let sc = broken();

    println!("== analyze() on the broken scenario ==\n");
    let report = sc.analyze();
    println!("{}", report.to_tidy());
    println!(
        "\n{} denials, {} warnings; run() will refuse to start:",
        report.denials().count(),
        report.warnings().count()
    );

    // run() surfaces the same report inside the error.
    let err = broken().run().expect_err("deny diagnostics gate run()");
    println!("  {err}\n");

    println!("== machine-readable form (to_json) ==\n");
    println!("{}\n", report.to_json());

    // Fix each finding the report named.
    println!("== fixed scenario ==\n");
    let mut fixed = Scenario::new("analysis-demo");
    fixed
        .duration(SimTime::from_secs(30))
        .topic(TopicSpec::new("clicks"))
        .topic(TopicSpec::new("counts"))
        .broker("bh1");
    fixed.producer(
        "ph",
        SourceSpec::Rate {
            topic: "clicks".into(), // S2G002: the name the hint suggested
            count: 100,
            interval: SimDuration::from_millis(50),
            payload: 64,
        },
        Default::default(),
    );
    fixed.spe_job(
        "jh",
        SpeJobSpec::new(
            "clickcount",
            vec!["clicks".into()],
            stream2gym::apps::word_count::running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig::default(),
        ),
    );
    // S2G013: transactional sinks need exactly-once checkpoint alignment.
    fixed
        .with_transactional_sinks()
        .with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(2)))
        .with_acks(AckMode::All);
    // S2G006: target the job by its real name.
    fixed.faults(FaultPlan::new().crash_restart(
        "clickcount",
        SimTime::from_secs(10),
        SimDuration::from_secs(2),
    ));

    let clean = fixed.analyze();
    assert!(clean.is_clean(), "fixed scenario still flagged:\n{clean}");
    println!("analyze(): clean — running the scenario for real ...");
    let result = fixed.run()?;
    let job = &result.report.spe["clickcount"];
    let (records_in, records_out) = job.record_counts;
    println!(
        "done: job processed {records_in} -> {records_out} records, {} checkpoints taken",
        job.checkpoints.checkpoints
    );
    Ok(())
}
