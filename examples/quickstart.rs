//! Quickstart: the paper's word-count pipeline (Fig. 2a) end to end.
//!
//! Five components on a one-big-switch network: a document producer, a
//! broker, two chained stream jobs (per-document word counts, then running
//! average document length per topic), and a consumer. Prints the measured
//! end-to-end latency per data unit — the quantity Fig. 5 sweeps.
//!
//! Run with: `cargo run --example quickstart`

use stream2gym::apps::word_count::{self, ComponentDelays};
use stream2gym::core::ascii_chart;
use stream2gym::sim::{SimDuration, SimTime};

fn main() {
    let scenario = word_count::scenario(
        100,
        SimDuration::from_millis(150),
        ComponentDelays::default(),
        SimTime::from_secs(60),
        42,
    );
    println!("running the word-count pipeline on the emulated network...");
    let result = scenario.run().expect("scenario is valid");

    let monitor = result.monitor.borrow();
    let outputs: Vec<_> = monitor.for_topic("avg-words-per-topic").collect();
    println!(
        "pipeline finished: {} documents in, {} running-average outputs delivered",
        result.report.producers[0].stats.acked,
        outputs.len()
    );
    if let Some(mean) = monitor.mean_latency("avg-words-per-topic") {
        println!("mean end-to-end latency per document: {mean}");
    }

    // Latency over time, like stream2gym's visualization module would show.
    let series: Vec<(f64, f64)> = monitor
        .latency_series(0, "avg-words-per-topic")
        .iter()
        .map(|(t, lat)| (t.as_secs_f64(), lat.as_secs_f64()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "end-to-end latency per document",
            &[("latency", &series)],
            64,
            12,
            "time (s)",
            "latency (s)",
        )
    );

    println!(
        "simulation processed {} events; peak modeled memory {:.1} GB ({:.0}% of the server)",
        result.report.sim_stats.events_processed,
        result.report.peak_mem_bytes as f64 / (1u64 << 30) as f64,
        result.report.peak_mem_fraction() * 100.0
    );
}
