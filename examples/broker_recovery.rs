//! Broker crash and recovery, narrated: volatile vs durable broker logs.
//!
//! The same exactly-once word-count pipeline is run three ways while the
//! fault plan crashes the (only) broker mid-run and restarts it:
//!
//! 1. **volatile** — no log backend: the restarted broker comes back empty,
//!    acknowledged records vanish, and consumers reset to a truncated log;
//! 2. **recoverable** — an in-memory "local disk" outside the broker
//!    process: replay is instant and the output equals the no-fault run;
//! 3. **durable** — segments persisted through a store server: produce
//!    acks wait for the covering flush, and the restarted broker pays read
//!    round trips per segment before serving (the replay latency printed).
//!
//! Run with: `cargo run --release --example broker_recovery`

use std::any::Any;
use std::collections::BTreeMap;

use stream2gym::apps::word_count::{recovery_scenario, word_stream};
use stream2gym::broker::{Broker, CollectingSink, ConsumerProcess};
use stream2gym::core::{MonitoredSink, RunResult, Scenario};
use stream2gym::net::FaultPlan;
use stream2gym::proto::TopicPartition;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, Event};
use stream2gym::store::StoreConfig;

const WORDS: usize = 160;
const WORD_EVERY_MS: u64 = 40;
const CRASH_AT_MS: u64 = 3_500;
const DOWN_FOR_MS: u64 = 1_500;
const SEED: u64 = 42;

#[derive(Clone, Copy, PartialEq)]
enum Durability {
    Volatile,
    Recoverable,
    DurableStore,
}

fn scenario(durability: Durability) -> Scenario {
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_EVERY_MS),
        SimTime::from_secs(30),
        SEED,
    );
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
    match durability {
        Durability::Volatile => {}
        Durability::Recoverable => {
            sc.with_recoverable_broker();
        }
        Durability::DurableStore => {
            sc.store("h6", StoreConfig::default());
            sc.with_durable_broker("h6");
        }
    }
    sc.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_millis(CRASH_AT_MS),
        SimDuration::from_millis(DOWN_FOR_MS),
    ));
    sc
}

fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(result.consumer_pids[0])
        .expect("consumer");
    let sink = (cp.sink_as::<MonitoredSink>().expect("monitored").inner() as &dyn Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting");
    let mut counts = BTreeMap::new();
    for (_, _, rec) in &sink.deliveries {
        let e = Event::from_bytes(&rec.value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

fn main() {
    let mut truth = BTreeMap::new();
    for w in word_stream(WORDS, SEED) {
        *truth.entry(w).or_insert(0i64) += 1;
    }

    println!(
        "broker 0 crashes at {CRASH_AT_MS} ms and restarts {DOWN_FOR_MS} ms later;\n\
         the exactly-once word-count pipeline keeps running throughout.\n"
    );

    for (label, durability) in [
        ("volatile (no log backend)", Durability::Volatile),
        ("recoverable (in-memory disk)", Durability::Recoverable),
        ("durable (store-backed)", Durability::DurableStore),
    ] {
        let result = scenario(durability).run().expect("scenario is valid");
        let counts = final_counts(&result);
        let exact = counts == truth;
        let missing: i64 = truth.values().sum::<i64>() - counts.values().sum::<i64>();
        let b = &result.report.brokers[0];
        println!("== {label} ==");
        let broker = result
            .sim
            .process_ref::<Broker>(result.broker_pids[0])
            .expect("broker");
        let words_end = broker
            .log(&TopicPartition::new("words", 0))
            .map(|l| l.log_end().value())
            .unwrap_or(0);
        println!(
            "  words log at end: {words_end}/{WORDS} records | output exact: {exact} | count deficit: {missing}"
        );
        if let Some(rec) = &b.recovery {
            println!(
                "  replayed {} records / {} segments / {} B",
                rec.replayed_records, rec.replayed_segments, rec.replayed_bytes
            );
            match (rec.replay_latency(), rec.unavailability()) {
                (Some(replay), Some(outage)) => {
                    println!("  replay latency: {replay} | unavailability window: {outage}")
                }
                _ => println!("  no replay (nothing durable to recover)"),
            }
        }
        println!(
            "  broker flushes: {} | flushed bytes: {} | duplicate retries filtered: {}\n",
            b.stats.log_flushes, b.stats.log_flushed_bytes, b.stats.duplicates_filtered
        );
    }
    println!(
        "takeaway: a durable (or recoverable) broker log turns a broker bounce\n\
         into a bounded unavailability window instead of data loss — the\n\
         exactly-once pipeline's output matches the no-fault baseline."
    );
}
