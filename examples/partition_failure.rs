//! The Fig. 6 network-partition experiment, narrated — plus the broker
//! *crash* path the partition experiment cannot show.
//!
//! Part 1: ten broker sites in a star, two replicated topics, producers and
//! consumers on every site. The host carrying topic A's leader is
//! disconnected for two minutes. Under ZooKeeper-mode coordination,
//! acknowledged messages silently disappear; the delivery matrix shows the
//! dark band. (A partitioned broker keeps its state — the loss comes from
//! divergence truncation when the network heals.)
//!
//! Part 2: the same topology, but instead of cutting links the fault plan
//! *crashes* the leader's broker process (`FaultPlan::crash_restart_broker`)
//! and restarts it. With a durable broker log
//! (`Scenario::with_recoverable_broker` / `with_durable_broker`) the
//! restarted broker replays its segments and re-registers with the
//! controller: a bounded unavailability window, no loss. See
//! `examples/broker_recovery.rs` for the volatile-vs-durable contrast.
//!
//! Run with: `cargo run --release --example partition_failure`

use stream2gym::broker::{CoordinationMode, TopicSpec};
use stream2gym::core::{ascii_matrix, Scenario, SourceSpec};
use stream2gym::net::{FaultPlan, LinkSpec};
use stream2gym::sim::{SimDuration, SimTime};

const SITES: u32 = 6; // scaled-down default so the example runs quickly
const RUN: u64 = 240;
const CUT_AT: u64 = 80;
const CUT_FOR: u64 = 60;

fn main() {
    network_partition();
    broker_crash();
}

/// Part 1 — the Fig. 6 network partition (links cut, process survives).
fn network_partition() {
    let mut sc = Scenario::new("partition-failure");
    sc.seed(1)
        .duration(SimTime::from_secs(RUN))
        .coordination(CoordinationMode::Zk)
        .default_link(LinkSpec::new().latency_ms(2))
        .topic(TopicSpec::new("topic-a").replication(3).primary(0))
        .topic(TopicSpec::new("topic-b").replication(3).primary(1));
    for i in 0..SITES {
        let host = format!("h{}", i + 1);
        sc.broker(&host);
        sc.producer(
            &host,
            SourceSpec::RandomTopics {
                topics: vec!["topic-a".into(), "topic-b".into()],
                kbps: 30,
                payload: 500,
                until: SimTime::from_secs(RUN - 40),
            },
            Default::default(),
        );
        sc.consumer(&host, Default::default(), &["topic-a", "topic-b"]);
    }
    sc.faults(FaultPlan::new().transient_disconnect(
        "h1",
        SimTime::from_secs(CUT_AT),
        SimDuration::from_secs(CUT_FOR),
    ));
    sc.watch_throughput(&["h1", "h2", "h3"]);

    println!(
        "running {SITES} sites for {RUN}s; disconnecting h1 (topic-a leader) at {CUT_AT}s for {CUT_FOR}s..."
    );
    let result = sc.run().expect("scenario is valid");

    // The delivery matrix for the producer co-located with the failed broker.
    let matrix = result.delivery_matrix(0);
    let rows: Vec<(String, &[bool])> = matrix
        .received
        .iter()
        .enumerate()
        .map(|(i, r)| (format!("consumer {i}"), r.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_matrix("delivery matrix: producer on h1", &rows, 72)
    );

    let lost = matrix.total_losses();
    println!(
        "{} of {} messages from the co-located producer were never delivered to anyone",
        lost.len(),
        matrix.messages.len()
    );
    let lost_topics: std::collections::BTreeSet<&str> =
        lost.iter().map(|(t, _, _)| t.as_str()).collect();
    println!("lost messages came from: {lost_topics:?} (the disconnected leader's topic)");

    let b0 = &result.report.brokers[0];
    println!(
        "broker 0: {} records truncated on heal, {} leadership events",
        b0.stats.records_truncated,
        b0.leadership_events.len()
    );
    for s in &result.report.tx_series {
        println!(
            "  {}: peak tx {:.2} Mbps, mean {:.3} Mbps",
            s.node,
            s.peak_tx_mbps(),
            s.mean_tx_mbps()
        );
    }
    println!("re-run with CoordinationMode::Kraft and acks=all to see zero loss.");
}

/// Part 2 — the broker-crash path: the same leader dies outright (process
/// fault, not a link fault) and comes back with its durable log replayed.
fn broker_crash() {
    println!("\n== part 2: crashing the topic-a leader's broker process ==");
    let mut sc = Scenario::new("broker-crash");
    sc.seed(1)
        .duration(SimTime::from_secs(RUN))
        .coordination(CoordinationMode::Zk)
        .default_link(LinkSpec::new().latency_ms(2))
        .topic(TopicSpec::new("topic-a").replication(3).primary(0))
        .topic(TopicSpec::new("topic-b").replication(3).primary(1))
        .with_recoverable_broker();
    for i in 0..SITES {
        let host = format!("h{}", i + 1);
        sc.broker(&host);
        sc.producer(
            &host,
            SourceSpec::RandomTopics {
                topics: vec!["topic-a".into(), "topic-b".into()],
                kbps: 30,
                payload: 500,
                until: SimTime::from_secs(RUN - 40),
            },
            Default::default(),
        );
        sc.consumer(&host, Default::default(), &["topic-a", "topic-b"]);
    }
    // Crash broker 0 (topic-a's preferred leader) instead of cutting links.
    sc.faults(FaultPlan::new().crash_restart_broker(
        0,
        SimTime::from_secs(CUT_AT),
        SimDuration::from_secs(CUT_FOR),
    ));
    let result = sc.run().expect("scenario is valid");
    let b0 = &result.report.brokers[0];
    let rec = b0.recovery.expect("broker 0 was crashed by the plan");
    let fmt = |t: Option<SimTime>| t.map_or("never".to_string(), |t| t.to_string());
    println!(
        "broker 0 crashed at {}, restarted at {}, serving again at {}",
        rec.crashed_at,
        fmt(rec.restarted_at),
        fmt(rec.recovered_at)
    );
    println!(
        "  replayed {} records in {} segments; unavailability window {}",
        rec.replayed_records,
        rec.replayed_segments,
        rec.unavailability()
            .map_or("n/a".to_string(), |d| d.to_string())
    );
    let matrix = result.delivery_matrix(0);
    println!(
        "  messages from the co-located producer lost to everyone: {} of {}",
        matrix.total_losses().len(),
        matrix.messages.len()
    );
    println!(
        "  (crash + durable replay loses nothing — unlike the partition's\n   divergence truncation above, downtime here is latency, not loss)"
    );
}
