//! The Fig. 6 network-partition experiment, narrated.
//!
//! Ten broker sites in a star, two replicated topics, producers and
//! consumers on every site. The host carrying topic A's leader is
//! disconnected for two minutes. Under ZooKeeper-mode coordination,
//! acknowledged messages silently disappear; the delivery matrix shows the
//! dark band.
//!
//! Run with: `cargo run --release --example partition_failure`

use stream2gym::broker::{CoordinationMode, TopicSpec};
use stream2gym::core::{ascii_matrix, Scenario, SourceSpec};
use stream2gym::net::{FaultPlan, LinkSpec};
use stream2gym::sim::{SimDuration, SimTime};

const SITES: u32 = 6; // scaled-down default so the example runs quickly
const RUN: u64 = 240;
const CUT_AT: u64 = 80;
const CUT_FOR: u64 = 60;

fn main() {
    let mut sc = Scenario::new("partition-failure");
    sc.seed(1)
        .duration(SimTime::from_secs(RUN))
        .coordination(CoordinationMode::Zk)
        .default_link(LinkSpec::new().latency_ms(2))
        .topic(TopicSpec::new("topic-a").replication(3).primary(0))
        .topic(TopicSpec::new("topic-b").replication(3).primary(1));
    for i in 0..SITES {
        let host = format!("h{}", i + 1);
        sc.broker(&host);
        sc.producer(
            &host,
            SourceSpec::RandomTopics {
                topics: vec!["topic-a".into(), "topic-b".into()],
                kbps: 30,
                payload: 500,
                until: SimTime::from_secs(RUN - 40),
            },
            Default::default(),
        );
        sc.consumer(&host, Default::default(), &["topic-a", "topic-b"]);
    }
    sc.faults(FaultPlan::new().transient_disconnect(
        "h1",
        SimTime::from_secs(CUT_AT),
        SimDuration::from_secs(CUT_FOR),
    ));
    sc.watch_throughput(&["h1", "h2", "h3"]);

    println!(
        "running {SITES} sites for {RUN}s; disconnecting h1 (topic-a leader) at {CUT_AT}s for {CUT_FOR}s..."
    );
    let result = sc.run().expect("scenario is valid");

    // The delivery matrix for the producer co-located with the failed broker.
    let matrix = result.delivery_matrix(0);
    let rows: Vec<(String, &[bool])> = matrix
        .received
        .iter()
        .enumerate()
        .map(|(i, r)| (format!("consumer {i}"), r.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_matrix("delivery matrix: producer on h1", &rows, 72)
    );

    let lost = matrix.total_losses();
    println!(
        "{} of {} messages from the co-located producer were never delivered to anyone",
        lost.len(),
        matrix.messages.len()
    );
    let lost_topics: std::collections::BTreeSet<&str> =
        lost.iter().map(|(t, _, _)| t.as_str()).collect();
    println!("lost messages came from: {lost_topics:?} (the disconnected leader's topic)");

    let b0 = &result.report.brokers[0];
    println!(
        "broker 0: {} records truncated on heal, {} leadership events",
        b0.stats.records_truncated,
        b0.leadership_events.len()
    );
    for s in &result.report.tx_series {
        println!(
            "  {}: peak tx {:.2} Mbps, mean {:.3} Mbps",
            s.node,
            s.peak_tx_mbps(),
            s.mean_tx_mbps()
        );
    }
    println!("re-run with CoordinationMode::Kraft and acks=all to see zero loss.");
}
