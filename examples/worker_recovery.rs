//! Worker crash and recovery, narrated: at-least-once vs exactly-once.
//!
//! A producer streams single-word records through a broker into a stateful
//! running-count job; mid-stream the fault plan kills the SPE worker and
//! restarts it one second later. The example runs the same scenario three
//! ways — no fault, exactly-once checkpointing, at-least-once
//! checkpointing — and prints the per-word counts side by side, plus the
//! recovery metrics (latency, snapshot bytes, committed-offset resume).
//!
//! Run with: `cargo run --release --example worker_recovery`

use std::any::Any;
use std::collections::BTreeMap;

use stream2gym::apps::word_count::recovery_scenario;
use stream2gym::broker::{CollectingSink, ConsumerProcess};
use stream2gym::core::{MonitoredSink, RunResult, Scenario};
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::{CheckpointCfg, CheckpointMode, Event};

const WORDS: usize = 160;
const WORD_EVERY_MS: u64 = 40;
const CRASH_AT_MS: u64 = 4_500;
const DOWN_FOR_MS: u64 = 1_000;
const SEED: u64 = 42;

fn scenario(mode: Option<CheckpointMode>, crash: bool) -> Scenario {
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_EVERY_MS),
        SimTime::from_secs(30),
        SEED,
    );
    if let Some(mode) = mode {
        sc.with_checkpointing(CheckpointCfg::new(SimDuration::from_secs(1), mode));
    }
    if crash {
        sc.faults(FaultPlan::new().crash_restart(
            "wordcount",
            SimTime::from_millis(CRASH_AT_MS),
            SimDuration::from_millis(DOWN_FOR_MS),
        ));
    }
    sc
}

fn final_counts(result: &RunResult) -> BTreeMap<String, i64> {
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(result.consumer_pids[0])
        .expect("consumer");
    let sink = (cp.sink_as::<MonitoredSink>().expect("monitored").inner() as &dyn Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting");
    let mut counts = BTreeMap::new();
    for (_, _, rec) in &sink.deliveries {
        if let Ok(e) = Event::from_bytes(&rec.value) {
            if let (Some(w), Some(n)) = (e.key.clone(), e.value.as_int()) {
                let entry = counts.entry(w).or_insert(0);
                *entry = (*entry).max(n);
            }
        }
    }
    counts
}

fn main() {
    println!(
        "word count over {WORDS} records; crashing the worker at {:.1}s, restarting {:.1}s later\n",
        CRASH_AT_MS as f64 / 1e3,
        DOWN_FOR_MS as f64 / 1e3,
    );

    let baseline = scenario(Some(CheckpointMode::ExactlyOnce), false)
        .run()
        .expect("baseline");
    let exactly = scenario(Some(CheckpointMode::ExactlyOnce), true)
        .run()
        .expect("exactly-once");
    let at_least = scenario(Some(CheckpointMode::AtLeastOnce), true)
        .run()
        .expect("at-least-once");

    let base = final_counts(&baseline);
    let eo = final_counts(&exactly);
    let alo = final_counts(&at_least);

    println!(
        "{:<10} {:>9} {:>13} {:>15}",
        "word", "baseline", "exactly-once", "at-least-once"
    );
    let mut dup_total = 0;
    for (word, b) in &base {
        let e = eo.get(word).copied().unwrap_or(0);
        let a = alo.get(word).copied().unwrap_or(0);
        let marker = if a > *b {
            format!("  (+{} dup)", a - b)
        } else {
            String::new()
        };
        println!("{word:<10} {b:>9} {e:>13} {a:>15}{marker}");
        dup_total += a - b;
    }
    println!();

    let eo_ok = eo == base;
    println!(
        "exactly-once output {} the no-fault baseline",
        if eo_ok { "MATCHES" } else { "DIVERGES FROM" }
    );
    println!("at-least-once replayed {dup_total} duplicate increments (bounded by the interval)\n");

    for (label, result) in [("exactly-once", &exactly), ("at-least-once", &at_least)] {
        let spe = &result.report.spe["wordcount"];
        let rec = spe.recovery.expect("crash was scheduled");
        println!("{label} recovery:");
        println!(
            "  checkpoints taken      {} ({} snapshot bytes total)",
            spe.checkpoints.checkpoints, spe.checkpoints.snapshot_bytes
        );
        println!("  restored snapshot      {} bytes", rec.snapshot_bytes);
        if let Some(l) = rec.recovery_latency() {
            println!("  recovery latency       {l} (crash -> first processed batch)");
        }
        println!(
            "  offset resets          {} (0 = resumed from committed offsets)",
            spe.consumer_stats.offset_resets
        );
    }
}
