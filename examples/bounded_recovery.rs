//! Bounded recovery: incremental checkpoints + broker log compaction.
//!
//! The same fault-heavy word-count pipeline runs twice — once with full
//! snapshots on a raw broker log, once with incremental (delta)
//! checkpointing and keyed log compaction — and both the worker and the
//! broker are crashed and restarted mid-run. The output is identical in
//! both runs (exactly-once recovery holds either way); what changes is the
//! *cost*: broker replay is bounded by live data instead of history, and
//! checkpoint captures ship deltas instead of full state. (Word count keeps
//! an 8-word vocabulary, so full snapshots are tiny here — the state-growth
//! effect that makes deltas pay shows in the `--fig compaction` sweep,
//! whose key space grows with history.)
//!
//! ```text
//! cargo run --release --example bounded_recovery
//! ```

use stream2gym::apps::word_count::{recovery_scenario, word_stream};
use stream2gym::core::{RunResult, Scenario};
use stream2gym::net::FaultPlan;
use stream2gym::sim::{SimDuration, SimTime};
use stream2gym::spe::CheckpointCfg;

const WORDS: usize = 400;
const WORD_EVERY_MS: u64 = 25;
const SEED: u64 = 77;

fn base_scenario() -> Scenario {
    let mut sc = recovery_scenario(
        WORDS,
        SimDuration::from_millis(WORD_EVERY_MS),
        SimTime::from_secs(30),
        SEED,
    );
    sc.with_recoverable_broker();
    sc.faults(
        FaultPlan::new()
            .crash_restart(
                "wordcount",
                SimTime::from_millis(4_300),
                SimDuration::from_millis(1_000),
            )
            .crash_restart_broker(0, SimTime::from_millis(12_000), SimDuration::from_secs(1)),
    );
    sc
}

fn report(label: &str, result: &RunResult) {
    let spe = &result.report.spe["wordcount"];
    let ck = spe.checkpoints;
    let rec = spe.recovery.expect("worker crash recorded");
    let brec = result.report.brokers[0]
        .recovery
        .expect("broker crash recorded");
    println!("== {label} ==");
    println!(
        "  checkpoints: {} full + {} delta | last full {} B | max delta {} B",
        ck.full_checkpoints, ck.delta_checkpoints, ck.last_full_bytes, ck.max_delta_bytes
    );
    println!(
        "  worker restore: {} B read, {} deltas applied, latency {:?}",
        rec.snapshot_bytes,
        rec.delta_chain_len,
        rec.restore_latency().unwrap_or_default()
    );
    println!(
        "  broker replay: {} records / {} B in {:?} (cleaning saved {} B)",
        brec.replayed_records,
        brec.replayed_bytes,
        brec.replay_latency().unwrap_or_default(),
        brec.replay_saved_bytes
    );
}

/// The consumer's view: highest count seen per word on the `counts` topic.
fn final_counts(result: &RunResult) -> std::collections::BTreeMap<String, i64> {
    use std::any::Any;
    use stream2gym::broker::{CollectingSink, ConsumerProcess};
    use stream2gym::core::MonitoredSink;
    let pid = result.consumer_pids[0];
    let cp = result
        .sim
        .process_ref::<ConsumerProcess>(pid)
        .expect("consumer");
    let monitored = cp.sink_as::<MonitoredSink>().expect("monitored sink");
    let sink = (monitored.inner() as &dyn Any)
        .downcast_ref::<CollectingSink>()
        .expect("collecting sink");
    let mut counts = std::collections::BTreeMap::new();
    for (_, _, rec) in &sink.deliveries {
        let e = stream2gym::spe::Event::from_bytes(&rec.value).expect("SPE output decodes");
        let word = e.key.clone().expect("keyed by word");
        let n = e.value.as_int().expect("count value");
        let entry = counts.entry(word).or_insert(0);
        *entry = (*entry).max(n);
    }
    counts
}

fn main() {
    // Baseline: full snapshots, raw log.
    let mut baseline = base_scenario();
    baseline.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)));
    let baseline = baseline.run().expect("baseline runs");

    // Bounded: delta chains (cap 4) + keyed compaction.
    let mut bounded = base_scenario();
    bounded
        .with_incremental_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_secs(1)), 4);
    bounded.with_log_compaction();
    let bounded = bounded.run().expect("bounded runs");

    report("full snapshots + raw log", &baseline);
    report("incremental + compaction", &bounded);

    // Both modes recover to the exact no-fault output.
    let truth: std::collections::BTreeMap<String, i64> = {
        let mut tally = std::collections::BTreeMap::new();
        for w in word_stream(WORDS, SEED) {
            *tally.entry(w).or_insert(0) += 1;
        }
        tally
    };
    for (label, result) in [("baseline", &baseline), ("bounded", &bounded)] {
        assert_eq!(
            final_counts(result),
            truth,
            "{label} must match the ground truth"
        );
    }
    println!("\nboth runs reproduce the exact no-fault output — only the recovery bill differs");
}
