//! Fraud detection: an embedded SVM scores a transaction stream.
//!
//! Run with: `cargo run --example fraud_detection`

use stream2gym::apps::fraud;
use stream2gym::sim::SimTime;

fn main() {
    let scenario = fraud::scenario(600, 2_000, SimTime::from_secs(45), 11);
    println!("training the SVM and running the fraud-detection pipeline...");
    let result = scenario.run().expect("scenario is valid");

    let monitor = result.monitor.borrow();
    let alerts: Vec<_> = monitor.for_topic("fraud-alerts").collect();
    println!(
        "{} transactions streamed, {} alerts raised ({:.1}%)",
        result.report.producers[0].stats.acked,
        alerts.len(),
        alerts.len() as f64 / result.report.producers[0].stats.acked.max(1) as f64 * 100.0
    );
    if let Some(mean) = monitor.mean_latency("fraud-alerts") {
        println!("mean detection latency (produce → alert delivery): {mean}");
    }
}
