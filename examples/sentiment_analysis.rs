//! Sentiment analysis: polarity/subjectivity over an unstructured stream.
//!
//! Run with: `cargo run --example sentiment_analysis`

use stream2gym::core::ascii_table;
use stream2gym::sim::SimTime;
use stream2gym::spe::Value;

fn main() {
    let scenario = stream2gym::apps::sentiment::scenario(120, SimTime::from_secs(40), 9);
    println!("running the sentiment-analysis pipeline...");
    let result = scenario.run().expect("scenario is valid");
    let report = &result.report.spe["sentiment"];

    let mut pos = 0;
    let mut neg = 0;
    let mut neutral = 0;
    for e in &report.collected {
        let p = e
            .value
            .field("polarity")
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        if p > 0.1 {
            pos += 1;
        } else if p < -0.1 {
            neg += 1;
        } else {
            neutral += 1;
        }
    }
    println!(
        "{}",
        ascii_table(
            "tweet stream sentiment",
            &["class", "tweets"],
            &[
                vec!["positive".into(), pos.to_string()],
                vec!["negative".into(), neg.to_string()],
                vec!["neutral".into(), neutral.to_string()],
            ],
        )
    );
    // Show a few scored samples.
    for e in report.collected.iter().take(4) {
        let text = e.value.field("text").and_then(Value::as_str).unwrap_or("");
        let p = e
            .value
            .field("polarity")
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        let s = e
            .value
            .field("subjectivity")
            .and_then(Value::as_float)
            .unwrap_or(0.0);
        println!("  [pol {p:+.2} subj {s:.2}] {text}");
    }
}
