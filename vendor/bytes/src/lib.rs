//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the `bytes` 1.x API this workspace uses: an
//! immutable, cheaply cloneable byte buffer that dereferences to `[u8]`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable sequence of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes(Arc::from(&v[..]))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn conversions_and_deref() {
        let b = Bytes::from("hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..2], b"he");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::from(&[1u8, 2]));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(&[b'a', 0x00, b'"']);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\\\"\"");
    }
}
