//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — backed
//! by xoshiro256++ seeded through SplitMix64. Determinism is the only
//! contract that matters here: the same seed always yields the same stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from `Standard` (the `rng.gen()` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `rng.gen_range(..)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(10..20);
            assert!((10..20).contains(&i));
            let j = rng.gen_range(5..=8);
            assert!((5..=8).contains(&j));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(0..3usize);
            assert!(n < 3);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
