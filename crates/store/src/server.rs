//! The data-store server process (`storeType` node attribute).
//!
//! Hosts a [`KvStore`] and a [`TableStore`] behind an RPC interface, charges
//! CPU per operation, and reports resident bytes to the memory ledger —
//! exactly the role MySQL plays on its own node in the paper's pipelines.
//!
//! Beyond application sinks, the KV half doubles as the durability tier for
//! the fault-tolerance subsystems: SPE checkpoints persist snapshots under
//! `ckpt/<job>` keys (`s2g_spe`'s `DurableBackend`), and durable broker
//! logs persist segments and meta blobs under `brokerlog/<broker>/...`
//! keys (`s2g_broker`'s `DurableLogBackend`) — both paying this server's
//! CPU cost and the network path to reach it.
//!
//! # Replication
//!
//! A standalone store is a single point of failure: crash it and every
//! checkpoint and broker-log blob is gone, silently voiding the guarantees
//! built on top. [`StoreServer::set_group`] turns N servers into a
//! **store group**: one primary quorum-replicates every mutation
//! (`Put`/`Delete`/`Insert`) to its replicas and acknowledges the client
//! only once a majority has applied it, so an acknowledged write survives
//! any minority of store crashes. Members heartbeat each other; when the
//! primary dies, the lowest-indexed live member catches up to the most
//! advanced surviving replica and claims the primary role under a bumped
//! group epoch. A restarted member rejoins in a recovering state, pulls the
//! full operation log from a ready peer (paying wire cost for every byte),
//! and only then serves again. Non-primary members proxy client requests to
//! the primary, so a [`BlobClient`](crate::BlobClient) that rotates
//! endpoints on timeout reaches the group through any live member.

use s2g_sim::{
    downcast, Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime,
};
use s2g_telemetry::Telemetry;

use crate::kv::KvStore;
use crate::table::{TableError, TableStore};

/// One replicated store mutation — the unit of the group's operation log.
#[derive(Debug, Clone)]
pub enum StoreOp {
    /// Write a KV pair.
    Put {
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// Key.
        key: String,
    },
    /// Insert a row (auto-creating the table on first insert).
    Insert {
        /// Table name.
        table: String,
        /// Row cells.
        row: Vec<String>,
    },
}

impl StoreOp {
    /// Approximate wire size of the op when replicated or synced.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            StoreOp::Put { key, value } => key.len() + value.len(),
            StoreOp::Delete { key } => key.len(),
            StoreOp::Insert { table, row } => {
                table.len() + row.iter().map(String::len).sum::<usize>()
            }
        }
    }
}

/// RPCs understood by the store server.
#[derive(Debug, Clone)]
pub enum StoreRpc {
    /// Write a KV pair.
    Put {
        /// Request id for the ack.
        corr: u64,
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Ack for a put.
    PutAck {
        /// Request id.
        corr: u64,
    },
    /// Read a key.
    Get {
        /// Request id.
        corr: u64,
        /// Key.
        key: String,
    },
    /// Reply to a get.
    GetResult {
        /// Request id.
        corr: u64,
        /// The value, if present.
        value: Option<Vec<u8>>,
    },
    /// Remove a key (dead log segments, superseded checkpoint blobs).
    Delete {
        /// Request id.
        corr: u64,
        /// Key.
        key: String,
    },
    /// Ack for a delete.
    DeleteAck {
        /// Request id.
        corr: u64,
        /// Whether the key existed.
        existed: bool,
    },
    /// Insert a row into a table (auto-creates the table with generic
    /// column names on first insert).
    Insert {
        /// Request id.
        corr: u64,
        /// Table name.
        table: String,
        /// Row cells.
        row: Vec<String>,
    },
    /// Ack for an insert.
    InsertAck {
        /// Request id.
        corr: u64,
        /// Whether the insert succeeded.
        ok: bool,
    },
    /// A non-primary group member proxies a client request to the primary,
    /// which replies directly to the original requester.
    Forward {
        /// The client the primary should answer.
        origin: ProcessId,
        /// The proxied request.
        rpc: Box<StoreRpc>,
    },
    /// Primary → replica: apply one op of the group's operation log.
    Replicate {
        /// The primary's group epoch (stale primaries are ignored).
        epoch: u64,
        /// Index of the primary member sending this.
        primary: u32,
        /// Sequence of the op in the group log (1-based).
        seq: u64,
        /// The mutation.
        op: StoreOp,
    },
    /// Replica → primary: cumulative acknowledgement of applied ops.
    ReplicateAck {
        /// Member index of the acking replica.
        from: u32,
        /// The replica's highest contiguously applied sequence.
        applied_seq: u64,
        /// The epoch the replica is following.
        epoch: u64,
    },
    /// Member ↔ member liveness + progress gossip.
    GroupHeartbeat {
        /// Sender's member index.
        from: u32,
        /// Sender's group epoch.
        epoch: u64,
        /// Who the sender believes is primary.
        primary: u32,
        /// Sender's highest applied sequence.
        applied_seq: u64,
        /// Whether the sender has caught up and serves requests.
        ready: bool,
    },
    /// A recovering (or claiming) member asks a peer for the op log suffix
    /// after `from_seq`.
    SyncRequest {
        /// Request id.
        corr: u64,
        /// The requester's highest applied sequence.
        from_seq: u64,
    },
    /// Op-log suffix transfer; `entries[i]` carries seq `from_seq + 1 + i`.
    SyncResponse {
        /// Request id.
        corr: u64,
        /// Responder's group epoch.
        epoch: u64,
        /// Responder's view of the primary index.
        primary: u32,
        /// The sequence the suffix starts after.
        from_seq: u64,
        /// The ops after `from_seq`, in sequence order.
        entries: Vec<StoreOp>,
        /// Full-state bootstrap, sent when the requester's needed suffix
        /// was truncated by peer-acked op-log cleaning: the responder's
        /// complete state as of `from_seq`. The receiver installs it,
        /// adopts `from_seq` as both its applied sequence and its log
        /// start, and applies `entries` (normally empty) on top.
        snapshot: Option<StateTransfer>,
    },
}

/// A full-state transfer for group resync below the truncated log start.
#[derive(Debug, Clone, Default)]
pub struct StateTransfer {
    /// Every KV pair.
    pub kv: Vec<(String, Vec<u8>)>,
    /// Every table as `(name, columns, rows)`.
    pub tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
}

impl StateTransfer {
    /// Approximate wire size of the transfer.
    pub fn wire_size(&self) -> usize {
        self.kv
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>()
            + self
                .tables
                .iter()
                .map(|(n, cols, rows)| {
                    n.len()
                        + cols.iter().map(String::len).sum::<usize>()
                        + rows
                            .iter()
                            .map(|r| r.iter().map(String::len).sum::<usize>() + 4)
                            .sum::<usize>()
                })
                .sum::<usize>()
    }
}

impl Message for StoreRpc {
    fn wire_size(&self) -> usize {
        38 + match self {
            StoreRpc::Put { key, value, .. } => key.len() + value.len(),
            StoreRpc::PutAck { .. } => 8,
            StoreRpc::Get { key, .. } => key.len(),
            StoreRpc::GetResult { value, .. } => 8 + value.as_ref().map_or(0, Vec::len),
            StoreRpc::Delete { key, .. } => key.len(),
            StoreRpc::DeleteAck { .. } => 9,
            StoreRpc::Insert { table, row, .. } => {
                table.len() + row.iter().map(String::len).sum::<usize>()
            }
            StoreRpc::InsertAck { .. } => 9,
            StoreRpc::Forward { rpc, .. } => 8 + rpc.wire_size(),
            StoreRpc::Replicate { op, .. } => 24 + op.wire_size(),
            StoreRpc::ReplicateAck { .. } => 20,
            StoreRpc::GroupHeartbeat { .. } => 29,
            StoreRpc::SyncRequest { .. } => 16,
            StoreRpc::SyncResponse {
                entries, snapshot, ..
            } => {
                28 + entries.iter().map(StoreOp::wire_size).sum::<usize>()
                    + snapshot.as_ref().map_or(0, StateTransfer::wire_size)
            }
        }
    }
}

/// Store server tunables (the `storeCfg` YAML file).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// CPU cost per operation.
    pub cpu_per_op: SimDuration,
    /// One-time startup CPU cost.
    pub startup_cpu: SimDuration,
    /// Background churn per interval.
    pub background_cpu: SimDuration,
    /// Background churn period.
    pub background_interval: SimDuration,
    /// Heartbeat period between store-group members.
    pub group_heartbeat_interval: SimDuration,
    /// A member silent for longer than this is considered dead; the lowest
    /// surviving member then claims the primary role.
    pub group_session_timeout: SimDuration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            cpu_per_op: SimDuration::from_micros(40),
            startup_cpu: SimDuration::from_millis(800),
            background_cpu: SimDuration::from_millis(3),
            background_interval: SimDuration::from_millis(100),
            group_heartbeat_interval: SimDuration::from_millis(250),
            group_session_timeout: SimDuration::from_millis(1_200),
        }
    }
}

mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const BACKGROUND_TICK: u64 = 1;
    pub const BACKGROUND_DONE: u64 = 2;
    pub const GROUP_HB_TICK: u64 = 3;
    pub const SYNC_RETRY: u64 = 4;
    pub const CPU_BASE: u64 = 1 << 50;
}

/// How long a recovering member waits for a sync response before re-asking
/// its peers (the request or the response was lost).
const SYNC_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(700);

/// Max op-log entries the primary re-sends to one lagging replica per
/// heartbeat round (repair for lost `Replicate` messages).
const REPAIR_BATCH: u64 = 128;

/// Recovery metrics for one restarted store-group member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRecoveryInfo {
    /// When the respawned member started.
    pub restarted_at: SimTime,
    /// When the member finished syncing the op log and resumed serving.
    pub resynced_at: Option<SimTime>,
    /// Ops pulled from a peer during catch-up.
    pub sync_ops: u64,
    /// Approximate bytes transferred during catch-up.
    pub sync_bytes: u64,
}

/// Quorum tracking for one mutation awaiting majority application.
#[derive(Debug)]
struct PendingWrite {
    client: ProcessId,
    ack: StoreRpc,
    acked_by: Vec<bool>,
}

/// Group-membership state of one replicated store member.
#[derive(Debug)]
struct GroupState {
    members: Vec<ProcessId>,
    index: usize,
    epoch: u64,
    primary: usize,
    applied_seq: u64,
    /// The retained operation log: `oplog[i]` holds seq `log_start + i + 1`.
    /// The prefix every live member has acked is truncated away
    /// (`log_start` advances); members needing older history are brought
    /// back by a full [`StateTransfer`] instead of replay.
    oplog: Vec<StoreOp>,
    /// Sequences discarded from the front of `oplog` (0 = nothing
    /// truncated yet).
    log_start: u64,
    /// Lifetime count of ops this member truncated as primary.
    truncated_ops: u64,
    ready: bool,
    peer_last_seen: Vec<SimTime>,
    peer_seq: Vec<u64>,
    peer_ready: Vec<bool>,
    /// Replicated ops that arrived ahead of a gap, keyed by seq.
    ooo: std::collections::BTreeMap<u64, StoreOp>,
    /// Writes awaiting quorum, keyed by seq.
    pending_writes: std::collections::BTreeMap<u64, PendingWrite>,
    next_sync_corr: u64,
    sync_inflight: Option<u64>,
    /// A failover claim is waiting for catch-up from a more advanced peer.
    claim_pending: bool,
    recovery: Option<StoreRecoveryInfo>,
}

impl GroupState {
    fn quorum(&self) -> usize {
        self.members.len() / 2 + 1
    }

    fn peer_alive(&self, i: usize, now: SimTime, timeout: SimDuration) -> bool {
        i == self.index || now.saturating_since(self.peer_last_seen[i]) <= timeout
    }
}

/// The store server process.
pub struct StoreServer {
    cfg: StoreConfig,
    kv: KvStore,
    tables: TableStore,
    pending: std::collections::HashMap<u64, (ProcessId, StoreRpc)>,
    next_tag: u64,
    mem: Option<(LedgerHandle, MemSlot)>,
    group: Option<GroupState>,
    name: String,
    /// Telemetry sink (an unshared default until the orchestrator attaches
    /// the run-wide one).
    tele: Telemetry,
}

impl StoreServer {
    /// Creates a store server.
    pub fn new(cfg: StoreConfig) -> Self {
        StoreServer {
            cfg,
            kv: KvStore::new(),
            tables: TableStore::new(),
            pending: std::collections::HashMap::new(),
            next_tag: 0,
            mem: None,
            group: None,
            name: "store".to_string(),
            tele: Telemetry::new(),
        }
    }

    /// Names the server (distinguishes group replicas in traces).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Attaches the run-wide telemetry sink. The server records its op-log
    /// length and applied sequence as gauges under its own name.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.tele = tele;
    }

    /// Refreshes the op-log gauges after message/timer handling.
    fn telemetry_gauges(&self) {
        if self.group.is_some() {
            self.tele
                .gauge_set(&self.name, "oplog_len", self.oplog_len() as f64);
            self.tele
                .gauge_set(&self.name, "applied_seq", self.applied_seq() as f64);
        }
    }

    /// Attaches a memory-ledger slot.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// Joins this server to a replication group. `members` lists every
    /// member's process id in index order (identical on every member);
    /// `index` is this member's slot. With `recovering` set (the respawn
    /// path) the member starts unready and pulls the op log from a peer
    /// before serving.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_group(&mut self, members: Vec<ProcessId>, index: usize, recovering: bool) {
        assert!(index < members.len(), "group index out of range");
        let n = members.len();
        self.group = Some(GroupState {
            members,
            index,
            epoch: 0,
            primary: 0,
            applied_seq: 0,
            oplog: Vec::new(),
            log_start: 0,
            truncated_ops: 0,
            ready: !recovering,
            peer_last_seen: vec![SimTime::ZERO; n],
            peer_seq: vec![0; n],
            peer_ready: vec![false; n],
            ooo: std::collections::BTreeMap::new(),
            pending_writes: std::collections::BTreeMap::new(),
            next_sync_corr: 0,
            sync_inflight: None,
            claim_pending: false,
            recovery: None,
        });
    }

    /// True when this server is its group's acting primary (or standalone).
    pub fn is_primary(&self) -> bool {
        match &self.group {
            None => true,
            Some(g) => g.ready && g.primary == g.index,
        }
    }

    /// The group epoch (0 when standalone).
    pub fn group_epoch(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.epoch)
    }

    /// The highest contiguously applied group-log sequence (0 standalone).
    pub fn applied_seq(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.applied_seq)
    }

    /// Op-log entries currently retained (0 standalone) — bounded by
    /// peer-acked truncation instead of growing with run length.
    pub fn oplog_len(&self) -> usize {
        self.group.as_ref().map_or(0, |g| g.oplog.len())
    }

    /// Ops this member discarded as primary via peer-acked truncation.
    pub fn oplog_truncated(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.truncated_ops)
    }

    /// Recovery details when this member incarnation rejoined its group.
    pub fn recovery_info(&self) -> Option<StoreRecoveryInfo> {
        self.group.as_ref().and_then(|g| g.recovery)
    }

    /// The KV store (post-run inspection).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The table store (post-run inspection).
    pub fn tables(&self) -> &TableStore {
        &self.tables
    }

    /// Mutable table access (e.g. pre-creating schemas before a run).
    pub fn tables_mut(&mut self) -> &mut TableStore {
        &mut self.tables
    }

    fn update_mem(&mut self) {
        if let Some((ledger, slot)) = &self.mem {
            let bytes = (self.kv.resident_bytes() + self.tables.resident_bytes()) as u64;
            ledger.borrow_mut().set_dynamic(*slot, bytes);
        }
    }

    fn respond_after_cpu(&mut self, ctx: &mut Ctx<'_>, to: ProcessId, rpc: StoreRpc) {
        let tag = tags::CPU_BASE + self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, (to, rpc));
        ctx.exec(self.cfg.cpu_per_op, tag);
    }

    /// Applies one mutation to the local stores. `Insert` races (a duplicate
    /// `CreateTable` behind a lost-RPC retry, or a replicated op re-applied
    /// during repair) are tolerated: an already-existing table is simply
    /// inserted into instead of panicking.
    fn apply_op(&mut self, op: &StoreOp) -> StoreRpcOutcomeBits {
        let mut bits = StoreRpcOutcomeBits {
            existed: false,
            ok: true,
        };
        match op {
            StoreOp::Put { key, value } => {
                self.kv.put(key.clone(), value.clone());
            }
            StoreOp::Delete { key } => {
                bits.existed = self.kv.delete(key).is_some();
            }
            StoreOp::Insert { table, row } => {
                if self.tables.table_names().iter().all(|t| t != table) {
                    let cols: Vec<String> = (0..row.len()).map(|i| format!("c{i}")).collect();
                    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                    match self.tables.create_table(table, &col_refs) {
                        // `AlreadyExists` is not a bug: a duplicate
                        // `CreateTable` can race a lost-RPC retry (or a
                        // repair re-send in a replication group); fall
                        // through to the insert either way.
                        Ok(()) | Err(TableError::TableExists(_)) => {}
                        Err(_) => {
                            bits.ok = false;
                            return bits;
                        }
                    }
                }
                bits.ok = self.tables.insert(table, row.clone()).is_ok();
            }
        }
        self.update_mem();
        bits
    }

    /// Builds the client-facing ack for a mutation.
    fn ack_for(rpc: &StoreRpc, bits: StoreRpcOutcomeBits) -> StoreRpc {
        match rpc {
            StoreRpc::Put { corr, .. } => StoreRpc::PutAck { corr: *corr },
            StoreRpc::Delete { corr, .. } => StoreRpc::DeleteAck {
                corr: *corr,
                existed: bits.existed,
            },
            StoreRpc::Insert { corr, .. } => StoreRpc::InsertAck {
                corr: *corr,
                ok: bits.ok,
            },
            _ => unreachable!("ack_for only takes mutations"),
        }
    }

    fn op_of(rpc: &StoreRpc) -> Option<StoreOp> {
        match rpc {
            StoreRpc::Put { key, value, .. } => Some(StoreOp::Put {
                key: key.clone(),
                value: value.clone(),
            }),
            StoreRpc::Delete { key, .. } => Some(StoreOp::Delete { key: key.clone() }),
            StoreRpc::Insert { table, row, .. } => Some(StoreOp::Insert {
                table: table.clone(),
                row: row.clone(),
            }),
            _ => None,
        }
    }

    /// Primary path for a client mutation: apply locally, append to the
    /// group log, replicate to peers, and ack once a majority applied.
    fn primary_mutate(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, rpc: StoreRpc) {
        let op = Self::op_of(&rpc).expect("mutation");
        let bits = self.apply_op(&op);
        let ack = Self::ack_for(&rpc, bits);
        let Some(g) = self.group.as_mut() else {
            // Standalone: ack immediately (the original single-server path).
            self.respond_after_cpu(ctx, from, ack);
            return;
        };
        g.applied_seq += 1;
        let seq = g.applied_seq;
        g.oplog.push(op.clone());
        let mut acked_by = vec![false; g.members.len()];
        acked_by[g.index] = true;
        let quorum = g.quorum();
        let epoch = g.epoch;
        let primary = g.index as u32;
        let peers: Vec<ProcessId> = g
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != g.index)
            .map(|(_, p)| *p)
            .collect();
        if acked_by.iter().filter(|b| **b).count() >= quorum {
            // Single-member group: durable by definition.
            self.respond_after_cpu(ctx, from, ack);
        } else {
            g.pending_writes.insert(
                seq,
                PendingWrite {
                    client: from,
                    ack,
                    acked_by,
                },
            );
        }
        for p in peers {
            ctx.send(
                p,
                StoreRpc::Replicate {
                    epoch,
                    primary,
                    seq,
                    op: op.clone(),
                },
            );
        }
    }

    /// Acks every pending write newly covered by a quorum.
    fn pump_quorum(&mut self, ctx: &mut Ctx<'_>) {
        let Some(g) = self.group.as_mut() else { return };
        let quorum = g.quorum();
        let ready: Vec<u64> = g
            .pending_writes
            .iter()
            .filter(|(_, w)| w.acked_by.iter().filter(|b| **b).count() >= quorum)
            .map(|(s, _)| *s)
            .collect();
        let mut acks = Vec::new();
        for s in ready {
            if let Some(w) = g.pending_writes.remove(&s) {
                acks.push((w.client, w.ack));
            }
        }
        for (client, ack) in acks {
            self.respond_after_cpu(ctx, client, ack);
        }
    }

    /// Handles a client-facing RPC (possibly proxied). `origin` is who gets
    /// the answer.
    fn handle_client_rpc(&mut self, ctx: &mut Ctx<'_>, origin: ProcessId, rpc: StoreRpc) {
        let grouped = self.group.is_some();
        if grouped && !self.group.as_ref().is_some_and(|g| g.ready) {
            // Recovering member: not serving. Client retries rotate onward.
            return;
        }
        if grouped && !self.is_primary() {
            // Proxy to the primary, which answers the origin directly.
            let primary_pid = {
                let g = self.group.as_ref().expect("grouped");
                g.members[g.primary]
            };
            ctx.send(
                primary_pid,
                StoreRpc::Forward {
                    origin,
                    rpc: Box::new(rpc),
                },
            );
            return;
        }
        match rpc {
            StoreRpc::Get { corr, key } => {
                let value = self.kv.get_counted(&key).map(|b| b.to_vec());
                self.respond_after_cpu(ctx, origin, StoreRpc::GetResult { corr, value });
            }
            m @ (StoreRpc::Put { .. } | StoreRpc::Delete { .. } | StoreRpc::Insert { .. }) => {
                self.primary_mutate(ctx, origin, m);
            }
            _ => {}
        }
    }

    /// Adopts a newer group epoch (and its primary). A member that was
    /// itself the *acting primary* of an older epoch may hold a divergent,
    /// never-quorum-acked tail it applied while isolated; counting its
    /// inflated `applied_seq` toward the new primary's quorums would fake
    /// durability. Such a member steps down hard: it discards its local
    /// state and op log, drops its pending writes (their clients retry
    /// through the group), and rebuilds from a full sync off the new
    /// regime — after which it is byte-identical to replay of the
    /// canonical log.
    fn follow_epoch(&mut self, ctx: &mut Ctx<'_>, epoch: u64, primary: u32) {
        let deposed = {
            let Some(g) = self.group.as_mut() else { return };
            if epoch <= g.epoch {
                if epoch == g.epoch && g.primary != primary as usize {
                    g.primary = primary as usize;
                }
                return;
            }
            let was_acting_primary = g.ready && g.primary == g.index && g.index != primary as usize;
            g.epoch = epoch;
            g.primary = primary as usize;
            g.claim_pending = false;
            if was_acting_primary {
                g.ready = false;
                g.applied_seq = 0;
                g.oplog.clear();
                g.log_start = 0;
                g.ooo.clear();
                g.pending_writes.clear();
            }
            was_acting_primary
        };
        if deposed {
            self.kv = KvStore::new();
            self.tables = TableStore::new();
            self.update_mem();
            ctx.trace_with("store", || {
                format!(
                    "{} deposed by a newer primary; rebuilding from the group",
                    self.name
                )
            });
            self.start_sync(ctx, None);
        }
    }

    /// Replica path: apply a replicated op in sequence order, buffering
    /// out-of-order arrivals, and cumulatively ack progress.
    fn handle_replicate(
        &mut self,
        ctx: &mut Ctx<'_>,
        epoch: u64,
        primary: u32,
        seq: u64,
        op: StoreOp,
    ) {
        {
            let Some(g) = self.group.as_ref() else { return };
            if epoch < g.epoch {
                return; // stale primary
            }
        }
        self.follow_epoch(ctx, epoch, primary);
        {
            let Some(g) = self.group.as_mut() else { return };
            if !g.ready {
                return; // rebuilding: the sync brings these ops instead
            }
            if g.primary != primary as usize {
                g.primary = primary as usize;
            }
            if seq > g.applied_seq {
                g.ooo.insert(seq, op);
            }
        }
        // Drain in-order ops.
        loop {
            let next = {
                let g = self.group.as_ref().expect("grouped");
                let next_seq = g.applied_seq + 1;
                g.ooo.contains_key(&next_seq).then_some(next_seq)
            };
            let Some(next_seq) = next else { break };
            let op = self
                .group
                .as_mut()
                .expect("grouped")
                .ooo
                .remove(&next_seq)
                .expect("just checked");
            self.apply_op(&op);
            let g = self.group.as_mut().expect("grouped");
            g.applied_seq = next_seq;
            g.oplog.push(op);
        }
        let g = self.group.as_ref().expect("grouped");
        let (from, applied_seq, epoch) = (g.index as u32, g.applied_seq, g.epoch);
        let primary_pid = g.members[g.primary];
        ctx.send(
            primary_pid,
            StoreRpc::ReplicateAck {
                from,
                applied_seq,
                epoch,
            },
        );
    }

    fn handle_replicate_ack(&mut self, ctx: &mut Ctx<'_>, from: u32, applied_seq: u64, epoch: u64) {
        {
            let Some(g) = self.group.as_mut() else { return };
            if epoch != g.epoch {
                return;
            }
            let i = from as usize;
            if i >= g.members.len() {
                return;
            }
            g.peer_seq[i] = g.peer_seq[i].max(applied_seq);
            for (s, w) in g.pending_writes.iter_mut() {
                if *s <= applied_seq {
                    w.acked_by[i] = true;
                }
            }
        }
        self.pump_quorum(ctx);
    }

    fn handle_heartbeat(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: u32,
        epoch: u64,
        primary: u32,
        applied_seq: u64,
        ready: bool,
    ) {
        let now = ctx.now();
        {
            let Some(g) = self.group.as_mut() else { return };
            let i = from as usize;
            if i >= g.members.len() {
                return;
            }
            g.peer_last_seen[i] = now;
            g.peer_seq[i] = g.peer_seq[i].max(applied_seq);
            g.peer_ready[i] = ready;
        }
        // A newer primary claimed; follow it (a deposed acting primary
        // rebuilds, see `follow_epoch`).
        self.follow_epoch(ctx, epoch, primary);
        // The heartbeat's applied_seq doubles as a cumulative ack: a lost
        // ReplicateAck heals here instead of stalling the quorum until the
        // client re-sends the whole blob.
        let ack_progress = {
            let Some(g) = self.group.as_mut() else { return };
            let i = from as usize;
            if g.primary == g.index && g.ready {
                let mut any = false;
                for (seq, w) in g.pending_writes.iter_mut() {
                    if *seq <= applied_seq && !w.acked_by[i] {
                        w.acked_by[i] = true;
                        any = true;
                    }
                }
                any
            } else {
                false
            }
        };
        if ack_progress {
            self.pump_quorum(ctx);
        }
        let mut repair: Vec<(ProcessId, StoreRpc)> = Vec::new();
        {
            let Some(g) = self.group.as_mut() else { return };
            let i = from as usize;
            // Primary-side repair: re-send the op-log suffix a lagging ready
            // replica is missing (lost Replicate messages heal here).
            if g.primary == g.index && g.ready && ready && applied_seq < g.applied_seq {
                let peer = g.members[i];
                // Truncated prefix cannot be repaired record-by-record; a
                // peer that far behind resyncs via the snapshot path when
                // it asks. (A live ready peer is never behind `log_start` —
                // truncation only discards what every live member acked.)
                let start = applied_seq.max(g.log_start);
                let upto = (start + REPAIR_BATCH).min(g.applied_seq);
                for seq in (start + 1)..=upto {
                    repair.push((
                        peer,
                        StoreRpc::Replicate {
                            epoch: g.epoch,
                            primary: g.index as u32,
                            seq,
                            op: g.oplog[(seq - 1 - g.log_start) as usize].clone(),
                        },
                    ));
                }
            }
        }
        for (to, rpc) in repair {
            ctx.send(to, rpc);
        }
    }

    fn handle_sync_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: ProcessId,
        corr: u64,
        from_seq: u64,
    ) {
        let (epoch, primary, log_start, applied) = {
            let Some(g) = self.group.as_ref() else { return };
            if !g.ready {
                return; // cannot seed others while recovering ourselves
            }
            (g.epoch, g.primary as u32, g.log_start, g.applied_seq)
        };
        if from_seq < log_start {
            // The suffix the requester needs was truncated away by
            // peer-acked cleaning: ship a full state snapshot instead. The
            // receiver adopts our applied sequence wholesale.
            let snapshot = StateTransfer {
                kv: self
                    .kv
                    .entries()
                    .map(|(k, v)| (k.clone(), v.to_vec()))
                    .collect(),
                tables: self.tables.dump(),
            };
            ctx.send(
                from,
                StoreRpc::SyncResponse {
                    corr,
                    epoch,
                    primary,
                    from_seq: applied,
                    entries: Vec::new(),
                    snapshot: Some(snapshot),
                },
            );
            return;
        }
        let g = self.group.as_ref().expect("checked above");
        let start = from_seq.min(applied);
        let entries: Vec<StoreOp> = g.oplog[(start - log_start) as usize..].to_vec();
        ctx.send(
            from,
            StoreRpc::SyncResponse {
                corr,
                epoch,
                primary,
                from_seq: start,
                entries,
                snapshot: None,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_sync_response(
        &mut self,
        ctx: &mut Ctx<'_>,
        corr: u64,
        epoch: u64,
        primary: u32,
        from_seq: u64,
        entries: Vec<StoreOp>,
        snapshot: Option<StateTransfer>,
    ) {
        {
            let Some(g) = self.group.as_ref() else { return };
            if g.sync_inflight != Some(corr) {
                return; // stale or duplicate response
            }
        }
        let mut sync_ops = 0u64;
        let mut sync_bytes = 0u64;
        if let Some(snap) = snapshot {
            // Bootstrap from the full state transfer: install it, adopt the
            // responder's applied sequence, and start an empty log there.
            sync_bytes += snap.wire_size() as u64;
            sync_ops += (snap.kv.len()
                + snap
                    .tables
                    .iter()
                    .map(|(_, _, rows)| rows.len())
                    .sum::<usize>()) as u64;
            self.kv = KvStore::new();
            self.tables = TableStore::new();
            for (k, v) in snap.kv {
                self.kv.put(k, v);
            }
            for (name, cols, rows) in snap.tables {
                let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                let _ = self.tables.create_table(&name, &col_refs);
                for row in rows {
                    let _ = self.tables.insert(&name, row);
                }
            }
            self.update_mem();
            let g = self.group.as_mut().expect("grouped");
            g.oplog.clear();
            g.ooo.clear();
            g.applied_seq = from_seq;
            g.log_start = from_seq;
        }
        for (i, op) in entries.iter().enumerate() {
            let seq = from_seq + 1 + i as u64;
            let applied = self.group.as_ref().expect("grouped").applied_seq;
            if seq != applied + 1 {
                continue; // already have it (duplicate retry overlap)
            }
            self.apply_op(op);
            let g = self.group.as_mut().expect("grouped");
            g.applied_seq = seq;
            g.oplog.push(op.clone());
            sync_ops += 1;
            sync_bytes += op.wire_size() as u64;
        }
        let was_claiming;
        {
            let g = self.group.as_mut().expect("grouped");
            g.sync_inflight = None;
            if epoch > g.epoch {
                g.epoch = epoch;
                g.primary = primary as usize;
            }
            was_claiming = g.claim_pending;
            if !g.ready {
                g.ready = true;
                if let Some(r) = g.recovery.as_mut() {
                    r.resynced_at = Some(ctx.now());
                    r.sync_ops += sync_ops;
                    r.sync_bytes += sync_bytes;
                }
                self.tele
                    .trace_end(ctx.now(), &self.name, "recovery:resync", "recovery");
                ctx.trace_with("store", || {
                    format!("{} resynced {} ops from its group", self.name, sync_ops)
                });
            }
        }
        if was_claiming {
            self.try_claim_primary(ctx);
        }
    }

    /// Starts (or retries) a sync. A rejoin broadcasts to every peer (any
    /// ready member's full log will do; the first answer wins); a failover
    /// catch-up passes the single most-advanced live peer as `targets`, so
    /// a less-advanced peer's earlier (useless) answer can never consume
    /// the one response that matters.
    fn start_sync(&mut self, ctx: &mut Ctx<'_>, targets: Option<Vec<ProcessId>>) {
        let Some(g) = self.group.as_mut() else { return };
        g.next_sync_corr += 1;
        let corr = g.next_sync_corr;
        g.sync_inflight = Some(corr);
        let from_seq = g.applied_seq;
        let peers: Vec<ProcessId> = targets.unwrap_or_else(|| {
            g.members
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != g.index)
                .map(|(_, p)| *p)
                .collect()
        });
        for p in peers {
            ctx.send(p, StoreRpc::SyncRequest { corr, from_seq });
        }
        ctx.set_timer(SYNC_RETRY_INTERVAL, tags::SYNC_RETRY);
    }

    /// Claims the primary role if this member is the lowest-indexed live
    /// candidate and is at least as advanced as every live peer; otherwise
    /// first pulls the missing suffix from the most advanced live peer.
    fn try_claim_primary(&mut self, ctx: &mut Ctx<'_>) {
        let needs_catchup: Option<ProcessId> = {
            let Some(g) = self.group.as_ref() else { return };
            if !g.ready {
                return;
            }
            let now = ctx.now();
            let timeout = self.cfg.group_session_timeout;
            // The current primary must be dead, and no live ready member may
            // be ordered before us.
            if g.primary == g.index || g.peer_alive(g.primary, now, timeout) {
                return;
            }
            // A claim needs a live majority in sight: a partitioned
            // minority member that merely stopped *hearing* the others must
            // never crown itself — on heal it would depose the true
            // primary and quorum-acked writes with it.
            let alive = (0..g.members.len())
                .filter(|i| g.peer_alive(*i, now, timeout))
                .count();
            if alive < g.quorum() {
                return;
            }
            let lowest_live = (0..g.members.len())
                .find(|i| *i == g.index || (g.peer_alive(*i, now, timeout) && g.peer_ready[*i]));
            if lowest_live != Some(g.index) {
                return;
            }
            let ahead = (0..g.members.len())
                .filter(|i| *i != g.index && *i != g.primary && g.peer_alive(*i, now, timeout))
                .max_by_key(|i| g.peer_seq[*i])
                .filter(|i| g.peer_seq[*i] > g.applied_seq);
            ahead.map(|i| g.members[i])
        };
        if let Some(ahead_pid) = needs_catchup {
            // Catch up from the most advanced live peer first, so an acked
            // write on a surviving majority is never lost to the failover.
            // The sync is targeted: only that peer is asked, so no
            // less-advanced peer can answer first with nothing.
            let g = self.group.as_mut().expect("grouped");
            g.claim_pending = true;
            if g.sync_inflight.is_none() {
                self.start_sync(ctx, Some(vec![ahead_pid]));
            }
            return;
        }
        let g = self.group.as_mut().expect("grouped");
        g.claim_pending = false;
        g.epoch += 1;
        g.primary = g.index;
        let name = self.name.clone();
        let epoch = self.group.as_ref().expect("grouped").epoch;
        ctx.trace_with("store", || {
            format!("{name} claimed store-group primary (epoch {epoch})")
        });
        self.send_heartbeats(ctx);
    }

    /// Primary-side op-log truncation: discards the prefix every *live*
    /// member has acknowledged applying (their heartbeat/ack sequences are
    /// cumulative state snapshots of their progress), so long runs stop
    /// growing the log — and the resync cost of the next rejoin. A member
    /// that was dead past the truncation point is brought back by a full
    /// [`StateTransfer`] instead of replay.
    fn truncate_acked_oplog(&mut self, now: SimTime) {
        let timeout = self.cfg.group_session_timeout;
        let Some(g) = self.group.as_mut() else { return };
        if g.primary != g.index || !g.ready || g.members.len() < 2 {
            return;
        }
        let mut floor = g.applied_seq;
        for i in 0..g.members.len() {
            if i == g.index {
                continue;
            }
            if g.peer_alive(i, now, timeout) {
                // A live recovering member reports 0 until its sync lands,
                // which (correctly) freezes truncation meanwhile.
                floor = floor.min(g.peer_seq[i]);
            }
        }
        if floor <= g.log_start {
            return;
        }
        let drop = (floor - g.log_start) as usize;
        g.oplog.drain(..drop);
        g.truncated_ops += drop as u64;
        g.log_start = floor;
    }

    fn send_heartbeats(&mut self, ctx: &mut Ctx<'_>) {
        let Some(g) = self.group.as_ref() else { return };
        let hb = StoreRpc::GroupHeartbeat {
            from: g.index as u32,
            epoch: g.epoch,
            primary: g.primary as u32,
            applied_seq: g.applied_seq,
            ready: g.ready,
        };
        let peers: Vec<ProcessId> = g
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != g.index)
            .map(|(_, p)| *p)
            .collect();
        for p in peers {
            ctx.send(p, hb.clone());
        }
    }
}

/// Per-op outcome bits threaded into client acks.
#[derive(Debug, Clone, Copy)]
struct StoreRpcOutcomeBits {
    existed: bool,
    ok: bool,
}

impl Process for StoreServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
        let recovering = self.group.as_ref().is_some_and(|g| !g.ready);
        if let Some(g) = self.group.as_mut() {
            // Until real heartbeats land, assume peers were alive "now" so a
            // fresh start does not immediately declare everyone dead.
            let now = ctx.now();
            for t in g.peer_last_seen.iter_mut() {
                *t = now;
            }
            if recovering {
                g.recovery = Some(StoreRecoveryInfo {
                    restarted_at: now,
                    resynced_at: None,
                    sync_ops: 0,
                    sync_bytes: 0,
                });
                self.tele
                    .trace_begin(now, &self.name, "recovery:resync", "recovery");
            }
            ctx.set_timer(self.cfg.group_heartbeat_interval, tags::GROUP_HB_TICK);
        }
        if recovering {
            self.start_sync(ctx, None);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let Ok(rpc) = downcast::<StoreRpc>(msg) else {
            return;
        };
        match *rpc {
            StoreRpc::Forward { origin, rpc } => {
                // Only the acting primary serves proxied requests; anything
                // else drops them (the client's retry rotates onward).
                if self.is_primary() && self.group.is_some() {
                    self.handle_client_rpc(ctx, origin, *rpc);
                }
            }
            StoreRpc::Replicate {
                epoch,
                primary,
                seq,
                op,
            } => self.handle_replicate(ctx, epoch, primary, seq, op),
            StoreRpc::ReplicateAck {
                from: idx,
                applied_seq,
                epoch,
            } => self.handle_replicate_ack(ctx, idx, applied_seq, epoch),
            StoreRpc::GroupHeartbeat {
                from: idx,
                epoch,
                primary,
                applied_seq,
                ready,
            } => self.handle_heartbeat(ctx, idx, epoch, primary, applied_seq, ready),
            StoreRpc::SyncRequest { corr, from_seq } => {
                self.handle_sync_request(ctx, from, corr, from_seq)
            }
            StoreRpc::SyncResponse {
                corr,
                epoch,
                primary,
                from_seq,
                entries,
                snapshot,
            } => self.handle_sync_response(ctx, corr, epoch, primary, from_seq, entries, snapshot),
            client_rpc @ (StoreRpc::Put { .. }
            | StoreRpc::Get { .. }
            | StoreRpc::Delete { .. }
            | StoreRpc::Insert { .. }) => {
                self.handle_client_rpc(ctx, from, client_rpc);
            }
            // Responses are never received by the server.
            StoreRpc::PutAck { .. }
            | StoreRpc::GetResult { .. }
            | StoreRpc::DeleteAck { .. }
            | StoreRpc::InsertAck { .. } => {}
        }
        self.telemetry_gauges();
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        match tag {
            tags::BACKGROUND_TICK => {
                if !self.cfg.background_cpu.is_zero() {
                    ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
                }
                ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
            }
            tags::GROUP_HB_TICK => {
                self.send_heartbeats(ctx);
                self.try_claim_primary(ctx);
                self.truncate_acked_oplog(ctx.now());
                self.telemetry_gauges();
                ctx.set_timer(self.cfg.group_heartbeat_interval, tags::GROUP_HB_TICK);
            }
            tags::SYNC_RETRY => {
                let (retry, claiming) = self.group.as_ref().map_or((false, false), |g| {
                    (g.sync_inflight.is_some(), g.claim_pending)
                });
                if retry {
                    if claiming {
                        // Re-evaluate the catch-up target: the previously
                        // chosen peer may itself have died.
                        if let Some(g) = self.group.as_mut() {
                            g.sync_inflight = None;
                        }
                        self.try_claim_primary(ctx);
                    } else {
                        self.start_sync(ctx, None);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= tags::CPU_BASE {
            if let Some((to, rpc)) = self.pending.remove(&tag) {
                ctx.send(to, rpc);
            }
        }
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("kv_keys", &self.kv.len())
            .field("table_rows", &self.tables.total_rows())
            .field("primary", &self.is_primary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::{Sim, SimTime};

    struct TestClient {
        store: ProcessId,
        acks: u32,
        got: Option<Option<Vec<u8>>>,
    }

    impl Process for TestClient {
        fn name(&self) -> &str {
            "client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(
                self.store,
                StoreRpc::Put {
                    corr: 1,
                    key: "k".into(),
                    value: b"v".to_vec(),
                },
            );
            ctx.send(
                self.store,
                StoreRpc::Insert {
                    corr: 2,
                    table: "t".into(),
                    row: vec!["a".into(), "b".into()],
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
            let Ok(rpc) = downcast::<StoreRpc>(msg) else {
                return;
            };
            match *rpc {
                StoreRpc::PutAck { .. } | StoreRpc::InsertAck { .. } => {
                    self.acks += 1;
                    if self.acks == 2 {
                        ctx.send(
                            self.store,
                            StoreRpc::Get {
                                corr: 3,
                                key: "k".into(),
                            },
                        );
                    }
                }
                StoreRpc::GetResult { value, .. } => self.got = Some(value),
                _ => {}
            }
        }
    }

    #[test]
    fn put_insert_get_round_trip() {
        let mut sim = Sim::new(0);
        let store = sim.spawn(Box::new(StoreServer::new(StoreConfig::default())));
        let client = sim.spawn(Box::new(TestClient {
            store,
            acks: 0,
            got: None,
        }));
        sim.run_until(SimTime::from_secs(5));
        let c = sim.process_ref::<TestClient>(client).unwrap();
        assert_eq!(c.acks, 2);
        assert_eq!(c.got, Some(Some(b"v".to_vec())));
        let s = sim.process_ref::<StoreServer>(store).unwrap();
        assert_eq!(s.kv().len(), 1);
        assert_eq!(s.tables().total_rows(), 1);
    }

    /// A retried `Insert` whose first copy already auto-created the table
    /// (the lost-ack retry path) must not panic and must keep inserting.
    struct DuplicateInsertClient {
        store: ProcessId,
        acks_ok: u32,
    }

    impl Process for DuplicateInsertClient {
        fn name(&self) -> &str {
            "dup-client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Two identical creates-via-insert in flight at once: the second
            // arrives after the first created the table.
            for corr in [1, 2] {
                ctx.send(
                    self.store,
                    StoreRpc::Insert {
                        corr,
                        table: "races".into(),
                        row: vec!["x".into()],
                    },
                );
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
            if let Ok(rpc) = downcast::<StoreRpc>(msg) {
                if let StoreRpc::InsertAck { ok: true, .. } = *rpc {
                    self.acks_ok += 1;
                }
            }
        }
    }

    #[test]
    fn duplicate_create_table_race_returns_ok_instead_of_panicking() {
        let mut sim = Sim::new(0);
        let mut server = StoreServer::new(StoreConfig::default());
        // Pre-create the table, as a raced duplicate CreateTable would: the
        // insert handler must treat AlreadyExists as success.
        server
            .tables_mut()
            .create_table("races", &["c0"])
            .expect("fresh table");
        let store = sim.spawn(Box::new(server));
        let client = sim.spawn(Box::new(DuplicateInsertClient { store, acks_ok: 0 }));
        sim.run_until(SimTime::from_secs(5));
        let c = sim.process_ref::<DuplicateInsertClient>(client).unwrap();
        assert_eq!(c.acks_ok, 2, "both retried inserts succeed");
        let s = sim.process_ref::<StoreServer>(store).unwrap();
        assert_eq!(s.tables().total_rows(), 2);
    }

    /// Spawns an n-member group plus a client writing through member 0.
    fn spawn_group(sim: &mut Sim, n: usize) -> Vec<ProcessId> {
        let pids: Vec<ProcessId> = (0..n)
            .map(|i| {
                let mut s = StoreServer::new(StoreConfig::default());
                s.set_name(format!("store-{i}"));
                sim.spawn(Box::new(s))
            })
            .collect();
        for (i, pid) in pids.iter().enumerate() {
            sim.process_mut::<StoreServer>(*pid)
                .unwrap()
                .set_group(pids.clone(), i, false);
        }
        pids
    }

    #[test]
    fn group_replicates_writes_to_every_member() {
        let mut sim = Sim::new(0);
        let pids = spawn_group(&mut sim, 3);
        let client = sim.spawn(Box::new(TestClient {
            store: pids[0],
            acks: 0,
            got: None,
        }));
        sim.run_until(SimTime::from_secs(10));
        let c = sim.process_ref::<TestClient>(client).unwrap();
        assert_eq!(c.acks, 2, "quorum acks arrived");
        assert_eq!(c.got, Some(Some(b"v".to_vec())));
        for pid in &pids {
            let s = sim.process_ref::<StoreServer>(*pid).unwrap();
            assert_eq!(s.kv().len(), 1, "replicated to every member");
            assert_eq!(s.tables().total_rows(), 1);
            assert_eq!(s.applied_seq(), 2);
        }
        assert!(sim
            .process_ref::<StoreServer>(pids[0])
            .unwrap()
            .is_primary());
        assert!(!sim
            .process_ref::<StoreServer>(pids[1])
            .unwrap()
            .is_primary());
    }

    #[test]
    fn replica_proxies_client_requests_to_the_primary() {
        let mut sim = Sim::new(0);
        let pids = spawn_group(&mut sim, 3);
        // Talk to member 2 (a replica): it must forward to the primary and
        // the client must still get its acks.
        let client = sim.spawn(Box::new(TestClient {
            store: pids[2],
            acks: 0,
            got: None,
        }));
        sim.run_until(SimTime::from_secs(10));
        let c = sim.process_ref::<TestClient>(client).unwrap();
        assert_eq!(c.acks, 2, "proxied writes are acknowledged");
        assert_eq!(c.got, Some(Some(b"v".to_vec())));
    }

    #[test]
    fn failover_promotes_the_next_member() {
        let mut sim = Sim::new(0);
        let pids = spawn_group(&mut sim, 3);
        let client = sim.spawn(Box::new(TestClient {
            store: pids[0],
            acks: 0,
            got: None,
        }));
        sim.run_until(SimTime::from_secs(5));
        // Kill the primary; member 1 must claim within the session timeout.
        sim.kill(pids[0]);
        sim.run_until(SimTime::from_secs(10));
        let s1 = sim.process_ref::<StoreServer>(pids[1]).unwrap();
        assert!(s1.is_primary(), "member 1 claimed after the primary died");
        assert!(s1.group_epoch() > 0, "claim bumped the group epoch");
        let s2 = sim.process_ref::<StoreServer>(pids[2]).unwrap();
        assert!(!s2.is_primary());
        assert_eq!(s2.group_epoch(), s1.group_epoch(), "epoch propagated");
        let _ = client;
    }
}
