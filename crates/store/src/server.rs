//! The data-store server process (`storeType` node attribute).
//!
//! Hosts a [`KvStore`] and a [`TableStore`] behind an RPC interface, charges
//! CPU per operation, and reports resident bytes to the memory ledger —
//! exactly the role MySQL plays on its own node in the paper's pipelines.
//!
//! Beyond application sinks, the KV half doubles as the durability tier for
//! the fault-tolerance subsystems: SPE checkpoints persist snapshots under
//! `ckpt/<job>` keys (`s2g_spe`'s `DurableBackend`), and durable broker
//! logs persist segments and meta blobs under `brokerlog/<broker>/...`
//! keys (`s2g_broker`'s `DurableLogBackend`) — both paying this server's
//! CPU cost and the network path to reach it.

use s2g_sim::{downcast, Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration};

use crate::kv::KvStore;
use crate::table::TableStore;

/// RPCs understood by the store server.
#[derive(Debug, Clone)]
pub enum StoreRpc {
    /// Write a KV pair.
    Put {
        /// Request id for the ack.
        corr: u64,
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Ack for a put.
    PutAck {
        /// Request id.
        corr: u64,
    },
    /// Read a key.
    Get {
        /// Request id.
        corr: u64,
        /// Key.
        key: String,
    },
    /// Reply to a get.
    GetResult {
        /// Request id.
        corr: u64,
        /// The value, if present.
        value: Option<Vec<u8>>,
    },
    /// Remove a key (dead log segments, superseded checkpoint blobs).
    Delete {
        /// Request id.
        corr: u64,
        /// Key.
        key: String,
    },
    /// Ack for a delete.
    DeleteAck {
        /// Request id.
        corr: u64,
        /// Whether the key existed.
        existed: bool,
    },
    /// Insert a row into a table (auto-creates the table with generic
    /// column names on first insert).
    Insert {
        /// Request id.
        corr: u64,
        /// Table name.
        table: String,
        /// Row cells.
        row: Vec<String>,
    },
    /// Ack for an insert.
    InsertAck {
        /// Request id.
        corr: u64,
        /// Whether the insert succeeded.
        ok: bool,
    },
}

impl Message for StoreRpc {
    fn wire_size(&self) -> usize {
        38 + match self {
            StoreRpc::Put { key, value, .. } => key.len() + value.len(),
            StoreRpc::PutAck { .. } => 8,
            StoreRpc::Get { key, .. } => key.len(),
            StoreRpc::GetResult { value, .. } => 8 + value.as_ref().map_or(0, Vec::len),
            StoreRpc::Delete { key, .. } => key.len(),
            StoreRpc::DeleteAck { .. } => 9,
            StoreRpc::Insert { table, row, .. } => {
                table.len() + row.iter().map(String::len).sum::<usize>()
            }
            StoreRpc::InsertAck { .. } => 9,
        }
    }
}

/// Store server tunables (the `storeCfg` YAML file).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// CPU cost per operation.
    pub cpu_per_op: SimDuration,
    /// One-time startup CPU cost.
    pub startup_cpu: SimDuration,
    /// Background churn per interval.
    pub background_cpu: SimDuration,
    /// Background churn period.
    pub background_interval: SimDuration,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            cpu_per_op: SimDuration::from_micros(40),
            startup_cpu: SimDuration::from_millis(800),
            background_cpu: SimDuration::from_millis(3),
            background_interval: SimDuration::from_millis(100),
        }
    }
}

mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const BACKGROUND_TICK: u64 = 1;
    pub const BACKGROUND_DONE: u64 = 2;
    pub const CPU_BASE: u64 = 1 << 50;
}

/// The store server process.
pub struct StoreServer {
    cfg: StoreConfig,
    kv: KvStore,
    tables: TableStore,
    pending: std::collections::HashMap<u64, (ProcessId, StoreRpc)>,
    next_tag: u64,
    mem: Option<(LedgerHandle, MemSlot)>,
    name: String,
}

impl StoreServer {
    /// Creates a store server.
    pub fn new(cfg: StoreConfig) -> Self {
        StoreServer {
            cfg,
            kv: KvStore::new(),
            tables: TableStore::new(),
            pending: std::collections::HashMap::new(),
            next_tag: 0,
            mem: None,
            name: "store".to_string(),
        }
    }

    /// Attaches a memory-ledger slot.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// The KV store (post-run inspection).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The table store (post-run inspection).
    pub fn tables(&self) -> &TableStore {
        &self.tables
    }

    /// Mutable table access (e.g. pre-creating schemas before a run).
    pub fn tables_mut(&mut self) -> &mut TableStore {
        &mut self.tables
    }

    fn update_mem(&mut self) {
        if let Some((ledger, slot)) = &self.mem {
            let bytes = (self.kv.resident_bytes() + self.tables.resident_bytes()) as u64;
            ledger.borrow_mut().set_dynamic(*slot, bytes);
        }
    }

    fn respond_after_cpu(&mut self, ctx: &mut Ctx<'_>, to: ProcessId, rpc: StoreRpc) {
        let tag = tags::CPU_BASE + self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, (to, rpc));
        ctx.exec(self.cfg.cpu_per_op, tag);
    }
}

impl Process for StoreServer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let Ok(rpc) = downcast::<StoreRpc>(msg) else {
            return;
        };
        match *rpc {
            StoreRpc::Put { corr, key, value } => {
                self.kv.put(key, value);
                self.update_mem();
                self.respond_after_cpu(ctx, from, StoreRpc::PutAck { corr });
            }
            StoreRpc::Get { corr, key } => {
                let value = self.kv.get_counted(&key).map(|b| b.to_vec());
                self.respond_after_cpu(ctx, from, StoreRpc::GetResult { corr, value });
            }
            StoreRpc::Delete { corr, key } => {
                let existed = self.kv.delete(&key).is_some();
                self.update_mem();
                self.respond_after_cpu(ctx, from, StoreRpc::DeleteAck { corr, existed });
            }
            StoreRpc::Insert { corr, table, row } => {
                if self.tables.table_names().iter().all(|t| *t != table) {
                    let cols: Vec<String> = (0..row.len()).map(|i| format!("c{i}")).collect();
                    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                    self.tables
                        .create_table(&table, &col_refs)
                        .expect("table absence just checked");
                }
                let ok = self.tables.insert(&table, row).is_ok();
                self.update_mem();
                self.respond_after_cpu(ctx, from, StoreRpc::InsertAck { corr, ok });
            }
            // Responses are never received by the server.
            StoreRpc::PutAck { .. }
            | StoreRpc::GetResult { .. }
            | StoreRpc::DeleteAck { .. }
            | StoreRpc::InsertAck { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == tags::BACKGROUND_TICK {
            if !self.cfg.background_cpu.is_zero() {
                ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
            }
            ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag >= tags::CPU_BASE {
            if let Some((to, rpc)) = self.pending.remove(&tag) {
                ctx.send(to, rpc);
            }
        }
    }
}

impl std::fmt::Debug for StoreServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreServer")
            .field("kv_keys", &self.kv.len())
            .field("table_rows", &self.tables.total_rows())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::{Sim, SimTime};

    struct TestClient {
        store: ProcessId,
        acks: u32,
        got: Option<Option<Vec<u8>>>,
    }

    impl Process for TestClient {
        fn name(&self) -> &str {
            "client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(
                self.store,
                StoreRpc::Put {
                    corr: 1,
                    key: "k".into(),
                    value: b"v".to_vec(),
                },
            );
            ctx.send(
                self.store,
                StoreRpc::Insert {
                    corr: 2,
                    table: "t".into(),
                    row: vec!["a".into(), "b".into()],
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
            let Ok(rpc) = downcast::<StoreRpc>(msg) else {
                return;
            };
            match *rpc {
                StoreRpc::PutAck { .. } | StoreRpc::InsertAck { .. } => {
                    self.acks += 1;
                    if self.acks == 2 {
                        ctx.send(
                            self.store,
                            StoreRpc::Get {
                                corr: 3,
                                key: "k".into(),
                            },
                        );
                    }
                }
                StoreRpc::GetResult { value, .. } => self.got = Some(value),
                _ => {}
            }
        }
    }

    #[test]
    fn put_insert_get_round_trip() {
        let mut sim = Sim::new(0);
        let store = sim.spawn(Box::new(StoreServer::new(StoreConfig::default())));
        let client = sim.spawn(Box::new(TestClient {
            store,
            acks: 0,
            got: None,
        }));
        sim.run_until(SimTime::from_secs(5));
        let c = sim.process_ref::<TestClient>(client).unwrap();
        assert_eq!(c.acks, 2);
        assert_eq!(c.got, Some(Some(b"v".to_vec())));
        let s = sim.process_ref::<StoreServer>(store).unwrap();
        assert_eq!(s.kv().len(), 1);
        assert_eq!(s.tables().total_rows(), 1);
    }
}
