//! # s2g-store — data stores
//!
//! The data-store substrates stream2gym pipelines persist into:
//!
//! * [`KvStore`] — embedded key-value store with a write-ahead log and
//!   crash recovery (the RocksDB stand-in),
//! * [`TableStore`] — minimal relational tables (the MySQL stand-in),
//! * [`StoreServer`] — a simulated process serving both over [`StoreRpc`],
//!   the `storeType`/`storeCfg` node from Table I.

#![warn(missing_docs)]

mod blob;
mod kv;
mod server;
mod table;

pub use blob::BlobClient;
pub use kv::KvStore;
pub use server::{StateTransfer, StoreConfig, StoreOp, StoreRecoveryInfo, StoreRpc, StoreServer};
pub use table::{TableError, TableStore};
