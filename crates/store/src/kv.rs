//! An embedded key-value store with a write-ahead log.
//!
//! The RocksDB/embedded-state-store stand-in. Writes append to a WAL before
//! touching the memtable, so a crash (dropping the memtable) loses nothing
//! that was acknowledged — `recover` replays the log. Fault-tolerance tests
//! for stateful pipelines rely on exactly that behavior.

use std::collections::BTreeMap;

use bytes::Bytes;

/// One WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WalOp {
    Put { key: String, value: Bytes },
    Delete { key: String },
}

/// An embedded KV store.
///
/// # Examples
///
/// ```
/// use s2g_store::KvStore;
///
/// let mut kv = KvStore::new();
/// kv.put("k1", "v1");
/// assert_eq!(kv.get("k1").map(|b| b.to_vec()), Some(b"v1".to_vec()));
/// // Crash and recover: acknowledged writes survive.
/// let recovered = kv.simulate_crash_and_recover();
/// assert_eq!(recovered.get("k1").map(|b| b.to_vec()), Some(b"v1".to_vec()));
/// ```
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    mem: BTreeMap<String, Bytes>,
    wal: Vec<WalOp>,
    puts: u64,
    deletes: u64,
    gets: u64,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a key; the WAL records it first.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) {
        let key = key.into();
        let value = value.into();
        self.wal.push(WalOp::Put {
            key: key.clone(),
            value: value.clone(),
        });
        self.mem.insert(key, value);
        self.puts += 1;
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&Bytes> {
        self.mem.get(key)
    }

    /// Reads a key, counting the access (server-side use).
    pub fn get_counted(&mut self, key: &str) -> Option<Bytes> {
        self.gets += 1;
        self.mem.get(key).cloned()
    }

    /// Deletes a key, returning the previous value.
    pub fn delete(&mut self, key: &str) -> Option<Bytes> {
        self.wal.push(WalOp::Delete {
            key: key.to_string(),
        });
        self.deletes += 1;
        self.mem.remove(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Iterates every resident key/value pair in key order (state-snapshot
    /// transfers for group resync).
    pub fn entries(&self) -> impl Iterator<Item = (&String, &Bytes)> {
        self.mem.iter()
    }

    /// Iterates keys in `[from, to)` lexicographic order.
    pub fn scan<'a>(
        &'a self,
        from: &str,
        to: &str,
    ) -> impl Iterator<Item = (&'a String, &'a Bytes)> {
        self.mem.range(from.to_string()..to.to_string())
    }

    /// Total bytes resident in the memtable (for the memory model).
    pub fn resident_bytes(&self) -> usize {
        self.mem.iter().map(|(k, v)| k.len() + v.len()).sum()
    }

    /// `(puts, gets, deletes)` counters.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.puts, self.gets, self.deletes)
    }

    /// WAL length (entries since the last compaction).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Compacts the WAL into a snapshot of the current memtable.
    pub fn compact(&mut self) {
        self.wal = self
            .mem
            .iter()
            .map(|(k, v)| WalOp::Put {
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
    }

    /// Drops the memtable and rebuilds it from the WAL — the crash-recovery
    /// path. Returns the recovered store (counters reset).
    pub fn simulate_crash_and_recover(&self) -> KvStore {
        let mut fresh = KvStore {
            wal: self.wal.clone(),
            ..KvStore::default()
        };
        let ops = fresh.wal.clone();
        for op in ops {
            match op {
                WalOp::Put { key, value } => {
                    fresh.mem.insert(key, value);
                }
                WalOp::Delete { key } => {
                    fresh.mem.remove(&key);
                }
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::new();
        kv.put("a", "1");
        kv.put("b", "2");
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get("a").unwrap().as_ref(), b"1");
        assert_eq!(kv.delete("a").unwrap().as_ref(), b"1");
        assert!(kv.get("a").is_none());
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.op_counts(), (2, 0, 1));
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut kv = KvStore::new();
        kv.put("k", "old");
        kv.put("k", "new");
        assert_eq!(kv.get("k").unwrap().as_ref(), b"new");
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn scan_range() {
        let mut kv = KvStore::new();
        for k in ["apple", "banana", "cherry", "date"] {
            kv.put(k, "x");
        }
        let keys: Vec<&String> = kv.scan("b", "d").map(|(k, _)| k).collect();
        assert_eq!(keys, ["banana", "cherry"]);
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let mut kv = KvStore::new();
        kv.put("a", "1");
        kv.put("b", "2");
        kv.delete("a");
        kv.put("c", "3");
        let recovered = kv.simulate_crash_and_recover();
        assert!(recovered.get("a").is_none());
        assert_eq!(recovered.get("b").unwrap().as_ref(), b"2");
        assert_eq!(recovered.get("c").unwrap().as_ref(), b"3");
        assert_eq!(recovered.len(), 2);
    }

    #[test]
    fn compaction_shrinks_wal_preserving_state() {
        let mut kv = KvStore::new();
        for i in 0..100 {
            kv.put("hot", format!("v{i}"));
        }
        assert_eq!(kv.wal_len(), 100);
        kv.compact();
        assert_eq!(kv.wal_len(), 1);
        let recovered = kv.simulate_crash_and_recover();
        assert_eq!(recovered.get("hot").unwrap().as_ref(), b"v99");
    }

    #[test]
    fn resident_bytes_tracks_content() {
        let mut kv = KvStore::new();
        assert_eq!(kv.resident_bytes(), 0);
        kv.put("key", "value");
        assert_eq!(kv.resident_bytes(), 8);
        kv.delete("key");
        assert_eq!(kv.resident_bytes(), 0);
    }
}
