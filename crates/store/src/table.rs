//! A minimal relational table store — the MySQL stand-in.
//!
//! Supports typed-ish tables of string cells with insert, filtered select,
//! count, and group-by-count. Enough surface for the paper's pipelines that
//! persist query results into an external database (e.g. the maritime
//! monitoring application).

use std::collections::BTreeMap;
use std::fmt;

/// A table-store error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The table does not exist.
    NoSuchTable(String),
    /// The table already exists.
    TableExists(String),
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// A row had the wrong number of cells.
    ArityMismatch {
        /// Columns expected.
        expected: usize,
        /// Cells provided.
        got: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            TableError::TableExists(t) => write!(f, "table `{t}` already exists"),
            TableError::NoSuchColumn(c) => write!(f, "no such column `{c}`"),
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} cells, table has {expected} columns")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug, Clone, Default)]
struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

/// A named collection of tables.
///
/// # Examples
///
/// ```
/// use s2g_store::TableStore;
///
/// let mut db = TableStore::new();
/// db.create_table("ships", &["port", "name"])?;
/// db.insert("ships", vec!["halifax".into(), "neptune".into()])?;
/// db.insert("ships", vec!["halifax".into(), "aurora".into()])?;
/// db.insert("ships", vec!["boston".into(), "wave".into()])?;
/// assert_eq!(db.count("ships", Some(("port", "halifax")))?, 2);
/// # Ok::<(), s2g_store::TableError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TableStore {
    tables: BTreeMap<String, Table>,
    inserts: u64,
    selects: u64,
}

impl TableStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table with the given columns.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::TableExists`] if the name is taken.
    pub fn create_table(&mut self, name: &str, columns: &[&str]) -> Result<(), TableError> {
        if self.tables.contains_key(name) {
            return Err(TableError::TableExists(name.to_string()));
        }
        self.tables.insert(
            name.to_string(),
            Table {
                columns: columns.iter().map(|c| c.to_string()).collect(),
                rows: Vec::new(),
            },
        );
        Ok(())
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or wrong arity.
    pub fn insert(&mut self, table: &str, row: Vec<String>) -> Result<(), TableError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| TableError::NoSuchTable(table.to_string()))?;
        if row.len() != t.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: t.columns.len(),
                got: row.len(),
            });
        }
        t.rows.push(row);
        self.inserts += 1;
        Ok(())
    }

    fn col_index(t: &Table, col: &str) -> Result<usize, TableError> {
        t.columns
            .iter()
            .position(|c| c == col)
            .ok_or_else(|| TableError::NoSuchColumn(col.to_string()))
    }

    /// Selects rows, optionally filtered by `column == value`.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or column.
    pub fn select(
        &mut self,
        table: &str,
        filter: Option<(&str, &str)>,
    ) -> Result<Vec<Vec<String>>, TableError> {
        self.selects += 1;
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| TableError::NoSuchTable(table.to_string()))?;
        match filter {
            None => Ok(t.rows.clone()),
            Some((col, val)) => {
                let idx = Self::col_index(t, col)?;
                Ok(t.rows.iter().filter(|r| r[idx] == val).cloned().collect())
            }
        }
    }

    /// Counts rows, optionally filtered by `column == value`.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or column.
    pub fn count(
        &mut self,
        table: &str,
        filter: Option<(&str, &str)>,
    ) -> Result<usize, TableError> {
        Ok(self.select(table, filter)?.len())
    }

    /// Group-by-count over one column, sorted by group.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or column.
    pub fn group_count(
        &mut self,
        table: &str,
        col: &str,
    ) -> Result<Vec<(String, usize)>, TableError> {
        self.selects += 1;
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| TableError::NoSuchTable(table.to_string()))?;
        let idx = Self::col_index(t, col)?;
        let mut groups: BTreeMap<String, usize> = BTreeMap::new();
        for r in &t.rows {
            *groups.entry(r[idx].clone()).or_insert(0) += 1;
        }
        Ok(groups.into_iter().collect())
    }

    /// Dumps every table as `(name, columns, rows)` — the table half of a
    /// state-snapshot transfer for group resync.
    pub fn dump(&self) -> Vec<(String, Vec<String>, Vec<Vec<String>>)> {
        self.tables
            .iter()
            .map(|(name, t)| (name.clone(), t.columns.clone(), t.rows.clone()))
            .collect()
    }

    /// Names of existing tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows.len()).sum()
    }

    /// Approximate resident bytes (for the memory model).
    pub fn resident_bytes(&self) -> usize {
        self.tables
            .values()
            .map(|t| {
                t.rows
                    .iter()
                    .map(|r| r.iter().map(String::len).sum::<usize>())
                    .sum::<usize>()
            })
            .sum()
    }

    /// `(inserts, selects)` counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.inserts, self.selects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableStore {
        let mut db = TableStore::new();
        db.create_table("t", &["a", "b"]).unwrap();
        db.insert("t", vec!["1".into(), "x".into()]).unwrap();
        db.insert("t", vec!["2".into(), "y".into()]).unwrap();
        db.insert("t", vec!["1".into(), "z".into()]).unwrap();
        db
    }

    #[test]
    fn insert_and_select_all() {
        let mut db = sample();
        assert_eq!(db.select("t", None).unwrap().len(), 3);
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn filtered_select() {
        let mut db = sample();
        let rows = db.select("t", Some(("a", "1"))).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[0] == "1"));
    }

    #[test]
    fn group_count_sorted() {
        let mut db = sample();
        assert_eq!(
            db.group_count("t", "a").unwrap(),
            vec![("1".into(), 2), ("2".into(), 1)]
        );
    }

    #[test]
    fn errors_are_specific() {
        let mut db = sample();
        assert_eq!(
            db.select("zz", None),
            Err(TableError::NoSuchTable("zz".into()))
        );
        assert_eq!(
            db.select("t", Some(("zz", "1"))),
            Err(TableError::NoSuchColumn("zz".into()))
        );
        assert_eq!(
            db.insert("t", vec!["only-one".into()]),
            Err(TableError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            db.create_table("t", &["a"]),
            Err(TableError::TableExists("t".into()))
        );
    }

    #[test]
    fn counters_track_ops() {
        let mut db = sample();
        db.count("t", None).unwrap();
        let (ins, sel) = db.op_counts();
        assert_eq!(ins, 3);
        assert_eq!(sel, 1);
    }
}
