//! A small client for durable blob traffic against a [`StoreServer`].
//!
//! Both remote durability tiers in the workspace — the SPE checkpoint
//! backend (`s2g_spe::DurableBackend`) and the broker log backend
//! (`s2g_broker::DurableLogBackend`) — speak the same pattern to a
//! [`StoreServer`]: allocate a correlation id from a private namespace
//! (salted with the owning process's incarnation so replies delayed across
//! a crash/restart can never collide with the respawn's requests), send a
//! [`StoreRpc`], and pay the store's simulated CPU plus the network path
//! for every flush and every replayed blob. [`BlobClient`] is that shared
//! machinery, deduplicated here so the two tiers cannot drift apart.
//!
//! # Replicated store groups
//!
//! A client built with [`BlobClient::replicated`] knows every member of a
//! store group. Requests go to one current endpoint; when the owner's retry
//! machinery fires (a request went unanswered — the endpoint crashed, or
//! the network ate the RPC), calling [`rotate`](BlobClient::rotate) before
//! re-issuing moves the client to the next member. Non-primary members
//! proxy to the primary, so any live endpoint eventually serves the
//! request — which is how `DurableBackend` and `DurableLogBackend` survive
//! a store crash with zero code changes above this client.
//!
//! [`StoreServer`]: crate::StoreServer

use s2g_sim::{Ctx, ProcessId};

use crate::server::StoreRpc;

/// Issues `Put`/`Get`/`Delete` RPCs to one store server (or, for a
/// replicated group, to its current endpoint) under a private
/// correlation-id namespace.
#[derive(Debug)]
pub struct BlobClient {
    servers: Vec<ProcessId>,
    current: usize,
    corr_base: u64,
    next: u64,
}

impl BlobClient {
    /// Creates a client whose correlation ids start at `corr_base`
    /// (a namespace disjoint from other store users in the same process).
    pub fn new(server: ProcessId, corr_base: u64) -> Self {
        Self::for_incarnation(server, corr_base, 0)
    }

    /// Creates a client whose correlation ids are additionally salted with
    /// the owning process's `incarnation` (shifted into the high half of
    /// the per-namespace counter), so a store reply delayed across a
    /// process bounce can never be mistaken for an answer to the respawned
    /// incarnation's requests.
    pub fn for_incarnation(server: ProcessId, corr_base: u64, incarnation: u64) -> Self {
        Self::replicated(vec![server], corr_base, incarnation)
    }

    /// Creates a client over every member of a replicated store group, in
    /// member-index order. Requests start at member 0 (the initial
    /// primary); [`rotate`](BlobClient::rotate) advances on timeout.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn replicated(servers: Vec<ProcessId>, corr_base: u64, incarnation: u64) -> Self {
        assert!(!servers.is_empty(), "a blob client needs an endpoint");
        BlobClient {
            servers,
            current: 0,
            corr_base,
            next: incarnation << 32,
        }
    }

    /// The store endpoint this client currently writes to.
    pub fn server(&self) -> ProcessId {
        self.servers[self.current]
    }

    /// Every endpoint this client can rotate through.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Advances to the next store-group member. Call right before
    /// re-issuing a request that went unanswered: the current endpoint may
    /// be down, and the group's surviving members proxy to whichever member
    /// is primary now. A single-endpoint client is unaffected.
    pub fn rotate(&mut self) {
        if self.servers.len() > 1 {
            self.current = (self.current + 1) % self.servers.len();
        }
    }

    fn corr(&mut self) -> u64 {
        let c = self.corr_base + self.next;
        self.next += 1;
        c
    }

    /// Sends a `Put` for `key`, returning the correlation id its
    /// [`StoreRpc::PutAck`] will carry.
    pub fn put(&mut self, ctx: &mut Ctx<'_>, key: &str, value: Vec<u8>) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server(),
            StoreRpc::Put {
                corr,
                key: key.to_string(),
                value,
            },
        );
        corr
    }

    /// Sends a `Get` for `key`, returning the correlation id its
    /// [`StoreRpc::GetResult`] will carry.
    pub fn get(&mut self, ctx: &mut Ctx<'_>, key: &str) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server(),
            StoreRpc::Get {
                corr,
                key: key.to_string(),
            },
        );
        corr
    }

    /// Sends a `Delete` for `key`, returning the correlation id its
    /// [`StoreRpc::DeleteAck`] will carry. Callers that treat deletes as
    /// fire-and-forget (dead log segments, superseded checkpoints) may
    /// ignore the returned id.
    pub fn delete(&mut self, ctx: &mut Ctx<'_>, key: &str) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server(),
            StoreRpc::Delete {
                corr,
                key: key.to_string(),
            },
        );
        corr
    }
}
