//! A small client for durable blob traffic against a [`StoreServer`].
//!
//! Both remote durability tiers in the workspace — the SPE checkpoint
//! backend (`s2g_spe::DurableBackend`) and the broker log backend
//! (`s2g_broker::DurableLogBackend`) — speak the same pattern to a
//! [`StoreServer`]: allocate a correlation id from a private namespace
//! (salted with the owning process's incarnation so replies delayed across
//! a crash/restart can never collide with the respawn's requests), send a
//! [`StoreRpc`], and pay the store's simulated CPU plus the network path
//! for every flush and every replayed blob. [`BlobClient`] is that shared
//! machinery, deduplicated here so the two tiers cannot drift apart.
//!
//! [`StoreServer`]: crate::StoreServer

use s2g_sim::{Ctx, ProcessId};

use crate::server::StoreRpc;

/// Issues `Put`/`Get`/`Delete` RPCs to one store server under a private
/// correlation-id namespace.
#[derive(Debug)]
pub struct BlobClient {
    server: ProcessId,
    corr_base: u64,
    next: u64,
}

impl BlobClient {
    /// Creates a client whose correlation ids start at `corr_base`
    /// (a namespace disjoint from other store users in the same process).
    pub fn new(server: ProcessId, corr_base: u64) -> Self {
        Self::for_incarnation(server, corr_base, 0)
    }

    /// Creates a client whose correlation ids are additionally salted with
    /// the owning process's `incarnation` (shifted into the high half of
    /// the per-namespace counter), so a store reply delayed across a
    /// process bounce can never be mistaken for an answer to the respawned
    /// incarnation's requests.
    pub fn for_incarnation(server: ProcessId, corr_base: u64, incarnation: u64) -> Self {
        BlobClient {
            server,
            corr_base,
            next: incarnation << 32,
        }
    }

    /// The store server this client writes to.
    pub fn server(&self) -> ProcessId {
        self.server
    }

    fn corr(&mut self) -> u64 {
        let c = self.corr_base + self.next;
        self.next += 1;
        c
    }

    /// Sends a `Put` for `key`, returning the correlation id its
    /// [`StoreRpc::PutAck`] will carry.
    pub fn put(&mut self, ctx: &mut Ctx<'_>, key: &str, value: Vec<u8>) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server,
            StoreRpc::Put {
                corr,
                key: key.to_string(),
                value,
            },
        );
        corr
    }

    /// Sends a `Get` for `key`, returning the correlation id its
    /// [`StoreRpc::GetResult`] will carry.
    pub fn get(&mut self, ctx: &mut Ctx<'_>, key: &str) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server,
            StoreRpc::Get {
                corr,
                key: key.to_string(),
            },
        );
        corr
    }

    /// Sends a `Delete` for `key`, returning the correlation id its
    /// [`StoreRpc::DeleteAck`] will carry. Callers that treat deletes as
    /// fire-and-forget (dead log segments, superseded checkpoints) may
    /// ignore the returned id.
    pub fn delete(&mut self, ctx: &mut Ctx<'_>, key: &str) -> u64 {
        let corr = self.corr();
        ctx.send(
            self.server,
            StoreRpc::Delete {
                corr,
                key: key.to_string(),
            },
        );
        corr
    }
}
