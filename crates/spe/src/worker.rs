//! The stream-processing worker process (the Spark node stand-in).
//!
//! A [`SpeWorker`] consumes one or more source topics through an embedded
//! [`ConsumerClient`], collects records into micro-batches on a fixed batch
//! interval, charges each batch's scheduling overhead plus per-record CPU on
//! its host, runs the job's [`Plan`], and emits results to a sink: another
//! topic (chained jobs, like the word-count pipeline's two stages), an
//! external [`StoreServer`](s2g_store::StoreServer), or a local collection.
//!
//! Per-batch runtimes are recorded in [`BatchMetric`]s — the quantity the
//! Ocampo et al. reproduction (Fig. 7b) reports as "Spark mean execution
//! time per one-second slot".

use std::collections::HashMap;

use s2g_proto::{ProducerId, Record, TopicPartition};
use s2g_sim::{
    Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime,
};

use s2g_broker::{ConsumerClient, ConsumerConfig, DataSink, ProducerClient, ProducerConfig};
use s2g_store::StoreRpc;

use crate::event::{Event, Value};
use crate::plan::Plan;

/// SPE tunables (the `streamProcCfg` YAML file, Fig. 3b).
#[derive(Debug, Clone)]
pub struct SpeConfig {
    /// Micro-batch interval (1 s in the traffic-monitoring reproduction).
    pub batch_interval: SimDuration,
    /// Fixed per-batch scheduling/dispatch CPU cost (driver overhead).
    pub scheduling_overhead: SimDuration,
    /// CPU cost per input record.
    pub cpu_per_record: SimDuration,
    /// One-time startup CPU cost (JVM + context bring-up).
    pub startup_cpu: SimDuration,
    /// Background churn per interval.
    pub background_cpu: SimDuration,
    /// Background churn period.
    pub background_interval: SimDuration,
    /// After this many consecutive empty batches, flush windowed state
    /// downstream (end-of-stream heuristic); 0 disables flushing.
    pub idle_flush_batches: u32,
    /// Consumer settings for source topics.
    pub consumer: ConsumerConfig,
    /// Producer settings for the sink topic.
    pub producer: ProducerConfig,
}

impl Default for SpeConfig {
    fn default() -> Self {
        SpeConfig {
            batch_interval: SimDuration::from_secs(1),
            scheduling_overhead: SimDuration::from_millis(120),
            cpu_per_record: SimDuration::from_micros(200),
            startup_cpu: SimDuration::from_secs(2),
            background_cpu: SimDuration::from_millis(4),
            background_interval: SimDuration::from_millis(100),
            idle_flush_batches: 3,
            consumer: ConsumerConfig::default(),
            producer: ProducerConfig::default(),
        }
    }
}

/// Where a job's results go.
#[derive(Debug, Clone)]
pub enum SpeSink {
    /// Produce encoded events to a topic (chained jobs).
    Topic(String),
    /// Keep results in the worker (inspection, tests).
    Collect,
    /// Insert rows into an external store: `(store process, table name)`.
    /// Map-valued events become one row of stringified fields (sorted by
    /// field name); other values become single-cell rows.
    Store {
        /// The store server process.
        store: ProcessId,
        /// Target table.
        table: String,
    },
}

/// Metrics for one executed micro-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetric {
    /// When the batch was scheduled.
    pub start: SimTime,
    /// When processing (CPU + emit) finished.
    pub end: SimTime,
    /// Input records.
    pub records_in: usize,
    /// Output events.
    pub records_out: usize,
}

impl BatchMetric {
    /// Wall-clock runtime of the batch (includes CPU queueing delay).
    pub fn runtime(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Buffers records delivered by the embedded consumer until the next batch.
#[derive(Default)]
struct EventBuffer {
    topic_source: HashMap<String, u8>,
    events: Vec<Event>,
}

impl DataSink for EventBuffer {
    fn on_records(&mut self, _now: SimTime, tp: &TopicPartition, records: &[Record]) {
        let source = self.topic_source.get(&tp.topic).copied().unwrap_or(0);
        for r in records {
            let mut event = match Event::from_bytes(&r.value) {
                Ok(e) => e,
                // Raw payload from a producer stub: wrap as a string event
                // whose origin is the record's produce time.
                Err(_) => Event::new(Value::Str(r.value_utf8()), r.timestamp),
            };
            event.source = source;
            if let (None, Some(k)) = (&event.key, &r.key) {
                event.key = Some(String::from_utf8_lossy(k).into_owned());
            }
            self.events.push(event);
        }
    }
}

mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const BATCH_TICK: u64 = 1;
    pub const BATCH_DONE: u64 = 2;
    pub const BACKGROUND_TICK: u64 = 3;
    pub const BACKGROUND_DONE: u64 = 4;
}

/// The stream-processing worker process.
pub struct SpeWorker {
    name: String,
    cfg: SpeConfig,
    plan: Plan,
    sink: SpeSink,
    consumer: ConsumerClient,
    producer: Option<ProducerClient>,
    buffer: EventBuffer,
    collected: Vec<Event>,
    metrics: Vec<BatchMetric>,
    inflight: Option<(SimTime, Vec<Event>)>,
    empty_streak: u32,
    flushed: bool,
    store_corr: u64,
    store_inserts: u64,
    mem: Option<(LedgerHandle, MemSlot)>,
}

impl SpeWorker {
    /// Creates a worker running `plan` over `sources` (topics, in source-
    /// index order for joins) into `sink`.
    ///
    /// `bootstrap` and `brokers` configure the embedded clients exactly like
    /// standalone producer/consumer stubs.
    pub fn new(
        name: impl Into<String>,
        cfg: SpeConfig,
        sources: Vec<String>,
        plan: Plan,
        sink: SpeSink,
        bootstrap: ProcessId,
        brokers: HashMap<s2g_proto::BrokerId, ProcessId>,
        producer_id: ProducerId,
    ) -> Self {
        let consumer =
            ConsumerClient::new(cfg.consumer.clone(), bootstrap, brokers.clone(), sources.clone());
        let producer = match &sink {
            SpeSink::Topic(_) => Some(ProducerClient::new(
                producer_id,
                cfg.producer.clone(),
                bootstrap,
                brokers,
                0,
            )),
            _ => None,
        };
        let mut buffer = EventBuffer::default();
        for (i, topic) in sources.iter().enumerate() {
            buffer.topic_source.insert(topic.clone(), i as u8);
        }
        SpeWorker {
            name: name.into(),
            cfg,
            plan,
            sink,
            consumer,
            producer,
            buffer,
            collected: Vec::new(),
            metrics: Vec::new(),
            inflight: None,
            empty_streak: 0,
            flushed: false,
            store_corr: 0,
            store_inserts: 0,
            mem: None,
        }
    }

    /// Attaches a memory-ledger slot.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// Per-batch metrics, in execution order.
    pub fn metrics(&self) -> &[BatchMetric] {
        &self.metrics
    }

    /// Mean batch runtime over batches that had input.
    pub fn mean_busy_runtime(&self) -> SimDuration {
        let busy: Vec<&BatchMetric> = self.metrics.iter().filter(|m| m.records_in > 0).collect();
        if busy.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = busy.iter().map(|m| m.runtime().as_nanos()).sum();
        SimDuration::from_nanos(total / busy.len() as u64)
    }

    /// Results collected locally (only for [`SpeSink::Collect`]).
    pub fn collected(&self) -> &[Event] {
        &self.collected
    }

    /// Rows sent to the external store so far.
    pub fn store_inserts(&self) -> u64 {
        self.store_inserts
    }

    /// The job's plan (record counters, operator names).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    fn start_batch(&mut self, ctx: &mut Ctx<'_>) {
        if self.inflight.is_some() {
            return; // previous batch still executing; records keep buffering
        }
        let events = std::mem::take(&mut self.buffer.events);
        if events.is_empty() {
            self.empty_streak += 1;
            if self.cfg.idle_flush_batches > 0
                && self.empty_streak >= self.cfg.idle_flush_batches
                && !self.flushed
            {
                self.flushed = true;
                let now = ctx.now();
                let out = self.plan.flush(now);
                self.emit(ctx, out);
            }
            return;
        }
        self.empty_streak = 0;
        self.flushed = false;
        let cost = self.cfg.scheduling_overhead + self.cfg.cpu_per_record * events.len() as u64;
        self.inflight = Some((ctx.now(), events));
        ctx.exec(cost, tags::BATCH_DONE);
    }

    fn finish_batch(&mut self, ctx: &mut Ctx<'_>) {
        let Some((start, events)) = self.inflight.take() else { return };
        let now = ctx.now();
        let n_in = events.len();
        let out = self.plan.run_batch(now, events);
        let n_out = out.len();
        self.emit(ctx, out);
        self.metrics.push(BatchMetric { start, end: now, records_in: n_in, records_out: n_out });
        if let Some((ledger, slot)) = &self.mem {
            // Model executor heap pressure as proportional to live state.
            let state_bytes = (self.collected.len() * 128) as u64;
            ledger.borrow_mut().set_dynamic(*slot, state_bytes);
        }
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        match self.sink.clone() {
            SpeSink::Collect => self.collected.extend(events),
            SpeSink::Topic(topic) => {
                let producer = self.producer.as_mut().expect("topic sink has a producer");
                for e in events {
                    let key = e.key.clone().map(String::into_bytes);
                    producer.send(ctx, &topic, key, e.to_bytes());
                }
            }
            SpeSink::Store { store, table } => {
                for e in events {
                    let mut row: Vec<String> = Vec::new();
                    if let Some(k) = &e.key {
                        row.push(k.clone());
                    }
                    match &e.value {
                        Value::Map(m) => row.extend(m.values().map(|v| v.to_string())),
                        other => row.push(other.to_string()),
                    }
                    self.store_corr += 1;
                    self.store_inserts += 1;
                    ctx.send(
                        store,
                        StoreRpc::Insert { corr: self.store_corr, table: table.clone(), row },
                    );
                }
            }
        }
    }
}

impl Process for SpeWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        self.consumer.start(ctx);
        if let Some(p) = self.producer.as_mut() {
            p.start(ctx);
        }
        ctx.set_timer(self.cfg.batch_interval, tags::BATCH_TICK);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let msg = match self.consumer.handle_message(ctx, msg) {
            None => return,
            Some(m) => m,
        };
        if let Some(p) = self.producer.as_mut() {
            p.handle_message(ctx, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.consumer.handle_timer(ctx, tag) {
            return;
        }
        if let Some(p) = self.producer.as_mut() {
            if p.handle_timer(ctx, tag) {
                return;
            }
        }
        match tag {
            tags::BATCH_TICK => {
                self.start_batch(ctx);
                ctx.set_timer(self.cfg.batch_interval, tags::BATCH_TICK);
            }
            tags::BACKGROUND_TICK => {
                if !self.cfg.background_cpu.is_zero() {
                    ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
                }
                ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.consumer.handle_cpu_done(ctx, tag, &mut self.buffer) {
            return;
        }
        if tag == tags::BATCH_DONE {
            self.finish_batch(ctx);
        }
    }
}

impl std::fmt::Debug for SpeWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeWorker")
            .field("name", &self.name)
            .field("batches", &self.metrics.len())
            .field("plan", &self.plan)
            .finish()
    }
}
