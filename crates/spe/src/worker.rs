//! The stream-processing worker process (the Spark node stand-in).
//!
//! A [`SpeWorker`] consumes one or more source topics through an embedded
//! [`ConsumerClient`], collects records into micro-batches on a fixed batch
//! interval, charges each batch's scheduling overhead plus per-record CPU on
//! its host, runs the job's [`Plan`], and emits results to a sink: another
//! topic (chained jobs, like the word-count pipeline's two stages), an
//! external [`StoreServer`](s2g_store::StoreServer), or a local collection.
//!
//! Per-batch runtimes are recorded in [`BatchMetric`]s — the quantity the
//! Ocampo et al. reproduction (Fig. 7b) reports as "Spark mean execution
//! time per one-second slot".

use std::collections::{BTreeMap, HashMap};

use s2g_proto::{Offset, ProducerId, Record, TopicPartition};
use s2g_sim::{Ctx, LedgerHandle, MemSlot, Message, Process, ProcessId, SimDuration, SimTime};

use s2g_broker::{ConsumerClient, ConsumerConfig, DataSink, ProducerClient, ProducerConfig};
use s2g_store::StoreRpc;
use s2g_telemetry::Telemetry;

use crate::checkpoint::{
    snapshot_store, CaptureKind, CheckpointCfg, CheckpointCoordinator, CheckpointMode,
    CheckpointPayload, CheckpointStats, InMemoryBackend, MultiRecoverOutcome, RecoverOutcome,
    RecoveryInfo, SnapshotChain, StateBackend, StateDelta, StateSnapshot, StoreRpcOutcome,
};
use crate::event::{Event, Value};
use crate::plan::Plan;

/// Identity and rescale context of one parallel stage instance.
///
/// A parallel job is split at its `KeyBy` boundaries into stages; each
/// stage runs `parallelism` instances. Instance `i` statically owns the
/// contiguous range of its input partitions (and, equivalently, key
/// groups) given by [`s2g_proto::owner_of_group`], and its keyed operator
/// state covers exactly the keys hashing into its owned groups.
#[derive(Debug, Clone)]
pub struct StageInstanceCfg {
    /// Stage index within the job (0 = reads the job's source topics).
    pub stage: usize,
    /// This instance's index within the stage.
    pub instance: u32,
    /// The stage's current parallelism.
    pub parallelism: u32,
    /// The job's fixed key-group count (shuffle topics have exactly this
    /// many partitions, so `partition == key group`).
    pub key_groups: u32,
    /// On a respawn: the *previous* run's instance names of this stage, in
    /// old-instance order. The restore reads every chain and keeps only the
    /// key groups this instance owns under the new parallelism — which is
    /// what makes an N→M rescale redistribute state correctly.
    pub restore_from: Vec<String>,
    /// Producer ids of the old instances, aligned with `restore_from` —
    /// instance 0 resolves the open transactions of old instances that
    /// have no successor after a shrink.
    pub old_producers: Vec<ProducerId>,
}

impl StageInstanceCfg {
    /// True when this instance owns `key` under the key-group formula.
    pub fn owns_key(&self, key: &str) -> bool {
        let group = s2g_proto::key_group(key.as_bytes(), self.key_groups);
        s2g_proto::owner_of_group(group, self.parallelism, self.key_groups) == self.instance
    }
}

/// SPE tunables (the `streamProcCfg` YAML file, Fig. 3b).
#[derive(Debug, Clone)]
pub struct SpeConfig {
    /// Micro-batch interval (1 s in the traffic-monitoring reproduction).
    pub batch_interval: SimDuration,
    /// Fixed per-batch scheduling/dispatch CPU cost (driver overhead).
    pub scheduling_overhead: SimDuration,
    /// CPU cost per input record.
    pub cpu_per_record: SimDuration,
    /// One-time startup CPU cost (JVM + context bring-up).
    pub startup_cpu: SimDuration,
    /// Background churn per interval.
    pub background_cpu: SimDuration,
    /// Background churn period.
    pub background_interval: SimDuration,
    /// After this many consecutive empty batches, flush windowed state
    /// downstream (end-of-stream heuristic); 0 disables flushing.
    pub idle_flush_batches: u32,
    /// Cap on records per micro-batch (Spark's max-rate backpressure knob).
    /// A backlogged worker otherwise forms ever-larger batches whose CPU
    /// cost can exceed the remaining run. `usize::MAX` (the default)
    /// disables the cap.
    pub max_batch_records: usize,
    /// Consumer settings for source topics.
    pub consumer: ConsumerConfig,
    /// Producer settings for the sink topic.
    pub producer: ProducerConfig,
    /// Checkpointing schedule and mode; `None` (the default) disables
    /// checkpointing, so a crashed worker restarts empty at offset zero.
    pub checkpoint: Option<CheckpointCfg>,
    /// Checkpoint-aligned transactional sink: topic-sink output is staged
    /// under a transaction marker per checkpoint epoch and only committed
    /// (made visible to read-committed consumers) once the covering
    /// checkpoint is durable — end-to-end exactly-once into the sink topic.
    /// Requires a topic sink and exactly-once checkpointing; ignored
    /// otherwise.
    pub transactional_sink: bool,
}

impl Default for SpeConfig {
    fn default() -> Self {
        SpeConfig {
            batch_interval: SimDuration::from_secs(1),
            scheduling_overhead: SimDuration::from_millis(120),
            cpu_per_record: SimDuration::from_micros(200),
            startup_cpu: SimDuration::from_secs(2),
            background_cpu: SimDuration::from_millis(4),
            background_interval: SimDuration::from_millis(100),
            idle_flush_batches: 3,
            max_batch_records: usize::MAX,
            consumer: ConsumerConfig::default(),
            producer: ProducerConfig::default(),
            checkpoint: None,
            transactional_sink: false,
        }
    }
}

/// Where a job's results go.
#[derive(Debug, Clone)]
pub enum SpeSink {
    /// Produce encoded events to a topic (chained jobs).
    Topic(String),
    /// Keep results in the worker (inspection, tests).
    Collect,
    /// Insert rows into an external store: `(store process, table name)`.
    /// Map-valued events become one row of stringified fields (sorted by
    /// field name); other values become single-cell rows.
    Store {
        /// The store server process.
        store: ProcessId,
        /// Target table.
        table: String,
    },
}

/// Metrics for one executed micro-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetric {
    /// When the batch was scheduled.
    pub start: SimTime,
    /// When processing (CPU + emit) finished.
    pub end: SimTime,
    /// Input records.
    pub records_in: usize,
    /// Output events.
    pub records_out: usize,
}

impl BatchMetric {
    /// Wall-clock runtime of the batch (includes CPU queueing delay).
    pub fn runtime(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Buffers records delivered by the embedded consumer until the next batch.
#[derive(Default)]
struct EventBuffer {
    topic_source: HashMap<String, u8>,
    /// Keep the source index carried in the event encoding instead of
    /// overriding it with the topic index — set on shuffle-topic consumers,
    /// where all inputs arrive over one topic but a downstream join still
    /// needs to know which original source each event came from.
    preserve_source: bool,
    events: Vec<Event>,
}

impl DataSink for EventBuffer {
    fn on_records(&mut self, _now: SimTime, tp: &TopicPartition, records: &[Record]) {
        let source = self.topic_source.get(&tp.topic).copied().unwrap_or(0);
        for r in records {
            let mut event = match Event::from_bytes(&r.value) {
                Ok(e) => e,
                // Raw payload from a producer stub: wrap as a string event
                // whose origin is the record's produce time.
                Err(_) => Event::new(Value::Str(r.value_utf8()), r.timestamp),
            };
            if !self.preserve_source {
                event.source = source;
            }
            if let (None, Some(k)) = (&event.key, &r.key) {
                event.key = Some(String::from_utf8_lossy(k).into_owned());
            }
            self.events.push(event);
        }
    }
}

mod tags {
    pub const STARTUP_DONE: u64 = 0;
    pub const BATCH_TICK: u64 = 1;
    pub const BATCH_DONE: u64 = 2;
    pub const BACKGROUND_TICK: u64 = 3;
    pub const BACKGROUND_DONE: u64 = 4;
    pub const CHECKPOINT_TICK: u64 = 5;
    pub const CKPT_IO_RETRY: u64 = 6;
}

/// How long the worker waits for a durable-backend store response before
/// re-issuing the RPC (a lossy network can drop either direction).
const CKPT_IO_RETRY_INTERVAL: SimDuration = SimDuration::from_secs(2);

/// The stream-processing worker process.
pub struct SpeWorker {
    name: String,
    cfg: SpeConfig,
    plan: Plan,
    sink: SpeSink,
    consumer: ConsumerClient,
    producer: Option<ProducerClient>,
    buffer: EventBuffer,
    collected: Vec<Event>,
    metrics: Vec<BatchMetric>,
    inflight: Option<(SimTime, Vec<Event>)>,
    empty_streak: u32,
    flushed: bool,
    store_corr: u64,
    store_inserts: u64,
    mem: Option<(LedgerHandle, MemSlot)>,
    coordinator: Option<CheckpointCoordinator>,
    recovery: Option<RecoveryInfo>,
    /// The open sink transaction (the next capture closes it); 0 when the
    /// sink is not transactional.
    txn_seq: u64,
    /// A capture whose closing transaction still has staged records in
    /// flight: the persist is withheld until the broker acknowledged every
    /// one, because a durable snapshot is the *prepared* marker — rolling
    /// its transaction forward on recovery is only sound once the whole
    /// staged batch provably reached the broker.
    staged_capture: Option<(CheckpointPayload, u64)>,
    /// A durable-backend restore round trip is in flight; consuming and
    /// batching are held until it completes.
    awaiting_restore: bool,
    /// Set by the orchestrator on a respawned worker so restart metrics are
    /// recorded even when checkpointing is disabled.
    restarted: bool,
    /// Parallel-stage identity; `None` for the classic one-worker-per-job
    /// layout.
    instance: Option<StageInstanceCfg>,
    /// Telemetry sink (an unshared default until the orchestrator attaches
    /// the run-wide one).
    tele: Telemetry,
}

impl SpeWorker {
    /// Creates a worker running `plan` over `sources` (topics, in source-
    /// index order for joins) into `sink`.
    ///
    /// `bootstrap` and `brokers` configure the embedded clients exactly like
    /// standalone producer/consumer stubs.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        cfg: SpeConfig,
        sources: Vec<String>,
        plan: Plan,
        sink: SpeSink,
        bootstrap: ProcessId,
        brokers: BTreeMap<s2g_proto::BrokerId, ProcessId>,
        producer_id: ProducerId,
    ) -> Self {
        let name = name.into();
        let mut cfg = cfg;
        if cfg.checkpoint.is_some() && cfg.consumer.group.is_none() {
            // Checkpointed workers are implicitly group members: their
            // offsets are committed broker-side so a respawn resumes there.
            cfg.consumer.group = Some(format!("spe-{name}"));
        }
        let consumer = ConsumerClient::new(
            cfg.consumer.clone(),
            bootstrap,
            brokers.clone(),
            sources.clone(),
        );
        let producer = match &sink {
            SpeSink::Topic(_) => Some(ProducerClient::new(
                producer_id,
                cfg.producer.clone(),
                bootstrap,
                brokers,
                0,
            )),
            _ => None,
        };
        let mut buffer = EventBuffer::default();
        for (i, topic) in sources.iter().enumerate() {
            buffer.topic_source.insert(topic.clone(), i as u8);
        }
        SpeWorker {
            name,
            cfg,
            plan,
            sink,
            consumer,
            producer,
            buffer,
            collected: Vec::new(),
            metrics: Vec::new(),
            inflight: None,
            empty_streak: 0,
            flushed: false,
            store_corr: 0,
            store_inserts: 0,
            mem: None,
            coordinator: None,
            recovery: None,
            txn_seq: 0,
            staged_capture: None,
            awaiting_restore: false,
            restarted: false,
            instance: None,
            tele: Telemetry::new(),
        }
    }

    /// Attaches the run-wide telemetry sink under this worker's name
    /// (`job` or `job/stage/instance`): per-batch record counters, the
    /// shuffle-buffer depth gauge, checkpoint duration/size histograms,
    /// and batch/checkpoint/txn/recovery trace events. The embedded
    /// consumer and producer clients share the sink and scope, which is
    /// where per-instance consumer lag comes from.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        let scope = self.name.clone();
        self.consumer.set_telemetry(tele.clone(), scope.clone());
        if let Some(p) = self.producer.as_mut() {
            p.set_telemetry(tele.clone(), scope.clone());
        }
        if let Some(c) = self.coordinator.as_mut() {
            c.set_telemetry(tele.clone(), scope);
        }
        self.tele = tele;
    }

    /// Declares this worker a parallel stage instance: its embedded
    /// consumer fetches only the contiguous partition range the instance
    /// owns, and (for stages past the first) the shuffle input's encoded
    /// source index is preserved for joins. Respawns with a non-empty
    /// `restore_from` reassemble the instance's key groups from every old
    /// instance's chain — the rescale path.
    pub fn set_instance(&mut self, cfg: StageInstanceCfg) {
        self.consumer
            .set_static_assignment(cfg.instance, cfg.parallelism);
        if cfg.stage > 0 {
            self.buffer.preserve_source = true;
        }
        self.instance = Some(cfg);
    }

    /// Attaches a memory-ledger slot.
    pub fn set_mem_slot(&mut self, ledger: LedgerHandle, slot: MemSlot) {
        self.mem = Some((ledger, slot));
    }

    /// Attaches a checkpoint backend. `recover` makes the worker restore
    /// the latest snapshot before consuming (the respawn path). Requires
    /// `cfg.checkpoint` to be set; without an explicit attachment a
    /// checkpointed worker falls back to a private in-memory backend at
    /// start (self-contained, but lost with the worker on a crash).
    ///
    /// # Panics
    ///
    /// Panics if the worker's config has no checkpoint schedule.
    pub fn attach_checkpointing(&mut self, backend: Box<dyn StateBackend>, recover: bool) {
        let cfg = self
            .cfg
            .checkpoint
            .expect("attach_checkpointing requires cfg.checkpoint to be set");
        let mut coord = CheckpointCoordinator::new(cfg, backend, recover);
        coord.set_telemetry(self.tele.clone(), self.name.clone());
        self.coordinator = Some(coord);
    }

    /// Marks this worker instance as a post-crash respawn, so restart and
    /// first-batch times are reported even without checkpointing.
    pub fn mark_restarted(&mut self) {
        self.restarted = true;
    }

    /// Sets the sink producer's epoch (Kafka's producer epoch). The
    /// orchestrator bumps it per respawn so the broker's idempotent dedup
    /// does not mistake the fresh incarnation's sequence-zero records for
    /// retries of the crashed one's.
    pub fn set_producer_epoch(&mut self, epoch: u32) {
        if let Some(p) = self.producer.as_mut() {
            p.set_epoch(epoch);
        }
    }

    /// Checkpoint counters (zero when checkpointing is disabled).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.coordinator
            .as_ref()
            .map(CheckpointCoordinator::stats)
            .unwrap_or_default()
    }

    /// `(accepted, durable)` instants of every persisted capture — the
    /// checkpoint-latency series (empty without checkpointing).
    pub fn checkpoint_persist_log(&self) -> Vec<(SimTime, SimTime)> {
        self.coordinator
            .as_ref()
            .map(|c| c.persist_log().to_vec())
            .unwrap_or_default()
    }

    /// True when this worker stages its sink output transactionally: a
    /// configured transactional sink over a topic, under exactly-once
    /// checkpointing.
    fn txn_mode(&self) -> bool {
        self.cfg.transactional_sink
            && self.producer.is_some()
            && self
                .cfg
                .checkpoint
                .is_some_and(|c| c.mode == CheckpointMode::ExactlyOnce)
    }

    /// Recovery details when this worker incarnation was restored.
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    /// The embedded consumer (positions, stats).
    pub fn consumer(&self) -> &ConsumerClient {
        &self.consumer
    }

    /// The embedded sink producer, when the sink is a topic.
    pub fn producer(&self) -> Option<&ProducerClient> {
        self.producer.as_ref()
    }

    /// Per-batch metrics, in execution order.
    pub fn metrics(&self) -> &[BatchMetric] {
        &self.metrics
    }

    /// Mean batch runtime over batches that had input.
    pub fn mean_busy_runtime(&self) -> SimDuration {
        let busy: Vec<&BatchMetric> = self.metrics.iter().filter(|m| m.records_in > 0).collect();
        if busy.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = busy.iter().map(|m| m.runtime().as_nanos()).sum();
        SimDuration::from_nanos(total / busy.len() as u64)
    }

    /// Results collected locally (only for [`SpeSink::Collect`]).
    pub fn collected(&self) -> &[Event] {
        &self.collected
    }

    /// Rows sent to the external store so far.
    pub fn store_inserts(&self) -> u64 {
        self.store_inserts
    }

    /// The job's plan (record counters, operator names).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    fn start_batch(&mut self, ctx: &mut Ctx<'_>) {
        if self.inflight.is_some() {
            return; // previous batch still executing; records keep buffering
        }
        let events = if self.buffer.events.len() > self.cfg.max_batch_records {
            self.buffer
                .events
                .drain(..self.cfg.max_batch_records)
                .collect()
        } else {
            std::mem::take(&mut self.buffer.events)
        };
        if events.is_empty() {
            self.empty_streak += 1;
            if self.cfg.idle_flush_batches > 0
                && self.empty_streak >= self.cfg.idle_flush_batches
                && !self.flushed
            {
                self.flushed = true;
                let now = ctx.now();
                let out = self.plan.flush(now);
                self.emit(ctx, out);
            }
            return;
        }
        self.empty_streak = 0;
        self.flushed = false;
        let cost = self.cfg.scheduling_overhead + self.cfg.cpu_per_record * events.len() as u64;
        self.inflight = Some((ctx.now(), events));
        ctx.exec(cost, tags::BATCH_DONE);
    }

    fn finish_batch(&mut self, ctx: &mut Ctx<'_>) {
        let Some((start, events)) = self.inflight.take() else {
            return;
        };
        let now = ctx.now();
        let n_in = events.len();
        let out = self.plan.run_batch(now, events);
        let n_out = out.len();
        self.emit(ctx, out);
        self.metrics.push(BatchMetric {
            start,
            end: now,
            records_in: n_in,
            records_out: n_out,
        });
        self.tele.counter_add(&self.name, "records_in", n_in as u64);
        self.tele
            .counter_add(&self.name, "records_out", n_out as u64);
        self.tele
            .gauge_set(&self.name, "buffer_depth", self.buffer.events.len() as f64);
        self.tele.trace_complete(
            start,
            now.saturating_since(start),
            &self.name,
            "batch",
            "spe",
        );
        if let Some(r) = self.recovery.as_mut() {
            if r.first_batch_at.is_none() {
                r.first_batch_at = Some(now);
                self.tele
                    .trace_instant(now, &self.name, "recovery:first_batch", "recovery");
            }
        }
        if let Some((ledger, slot)) = &self.mem {
            // Model executor heap pressure as proportional to live state.
            let state_bytes = (self.collected.len() * 128) as u64;
            ledger.borrow_mut().set_dynamic(*slot, state_bytes);
        }
        // A checkpoint due mid-batch waits for the batch boundary: capture
        // now that the plan state is consistent with the consumed offsets.
        self.try_capture(ctx);
    }

    fn try_capture(&mut self, ctx: &mut Ctx<'_>) {
        let due = self
            .coordinator
            .as_ref()
            .is_some_and(|c| c.should_capture());
        if !due || self.inflight.is_some() || self.awaiting_restore || self.staged_capture.is_some()
        {
            return;
        }
        let kind = self
            .coordinator
            .as_ref()
            .map(CheckpointCoordinator::capture_kind)
            .expect("checked above");
        self.tele
            .trace_instant(ctx.now(), &self.name, "checkpoint:barrier", "checkpoint");
        let txn_mode = self.txn_mode();
        if txn_mode {
            // Close the transaction at the capture boundary: everything
            // accumulated so far is staged under the closing transaction
            // before the bump below opens the next one.
            if let Some(p) = self.producer.as_mut() {
                p.flush_all(ctx);
            }
        }
        let txn_seq = self.txn_seq;
        let payload = match kind {
            CaptureKind::Full => {
                let (plan_state, records_in, records_out) = self.plan.snapshot_state();
                // The full snapshot covers every pending change: reset the
                // operators' dirty tracking so the next delta starts clean.
                self.plan.mark_clean();
                CheckpointPayload::Full(StateSnapshot {
                    taken_at: ctx.now(),
                    plan_state,
                    records_in,
                    records_out,
                    buffer: self.buffer.events.clone(),
                    offsets: self.consumer.positions(),
                    txn_seq,
                })
            }
            CaptureKind::Delta => {
                let seq = self
                    .coordinator
                    .as_ref()
                    .map(CheckpointCoordinator::next_delta_seq)
                    .expect("checked above");
                let plan_delta = self.plan.snapshot_delta();
                let (records_in, records_out) = self.plan.record_counts();
                CheckpointPayload::Delta(StateDelta {
                    taken_at: ctx.now(),
                    seq,
                    plan_delta,
                    records_in,
                    records_out,
                    buffer: self.buffer.events.clone(),
                    offsets: self.consumer.positions(),
                    txn_seq,
                })
            }
        };
        let producer_sent = self.producer.as_ref().map_or(0, |p| p.stats().sent);
        if txn_mode {
            // Open the next transaction: output emitted after this capture
            // belongs to the next checkpoint epoch and only commits with it.
            self.txn_seq += 1;
            if let Some(p) = self.producer.as_mut() {
                p.set_transactional(Some(self.txn_seq));
            }
        }
        let outstanding = txn_mode
            && self
                .producer
                .as_ref()
                .is_some_and(|p| p.txn_outstanding(txn_seq) > 0);
        if outstanding {
            // Prepare ordering: the staged batch must be fully acknowledged
            // *before* the snapshot persists. If the snapshot became
            // durable first and the worker crashed with part of the batch
            // unsent, recovery would roll the transaction forward and the
            // missing records — whose inputs lie before the captured
            // offsets — would never be replayed.
            self.tele
                .trace_instant(ctx.now(), &self.name, "txn:prepare", "txn");
            self.staged_capture = Some((payload, producer_sent));
            return;
        }
        self.accept_capture(ctx, payload, producer_sent);
        self.pump_commit(ctx);
    }

    /// Hands a capture to the coordinator's persist machinery.
    fn accept_capture(&mut self, ctx: &mut Ctx<'_>, payload: CheckpointPayload, sent: u64) {
        let name = self.name.clone();
        let coord = self
            .coordinator
            .as_mut()
            .expect("capture implies coordinator");
        coord.accept(ctx, &name, payload, sent);
        if coord.has_pending_io() {
            ctx.set_timer(CKPT_IO_RETRY_INTERVAL, tags::CKPT_IO_RETRY);
        }
    }

    /// Persists a staged capture once its transaction's last staged record
    /// is acknowledged (the prepare's first half completing).
    fn try_accept_staged(&mut self, ctx: &mut Ctx<'_>) {
        let ready = match &self.staged_capture {
            Some((payload, _)) => self
                .producer
                .as_ref()
                .is_none_or(|p| p.txn_outstanding(payload.txn_seq()) == 0),
            None => return,
        };
        if ready {
            let (payload, sent) = self.staged_capture.take().expect("just checked");
            self.accept_capture(ctx, payload, sent);
        }
    }

    /// Flushes an offset commit whose persist and output barrier are both
    /// satisfied. Called after any event that can make progress: producer
    /// acks, store acks, and captures. Under a transactional sink the
    /// barrier is stricter — every record of the closing transaction must
    /// be completed — and the commit additionally flips the transaction
    /// marker on the brokers (the second phase of the checkpoint-aligned
    /// two-phase commit).
    fn pump_commit(&mut self, ctx: &mut Ctx<'_>) {
        let txn_mode = self.txn_mode();
        // Producer acks may have completed a staged capture's batch.
        self.try_accept_staged(ctx);
        let Some(coord) = self.coordinator.as_ref() else {
            return;
        };
        let completed = if txn_mode {
            match coord.pending_commit_txn() {
                // The commit barrier for transaction t: zero outstanding
                // records of t (cumulative outcome counts would let later
                // transactions' acks mask an unacked staged record).
                Some(t) if t > 0 => {
                    let clear = self
                        .producer
                        .as_ref()
                        .is_some_and(|p| p.txn_outstanding(t) == 0);
                    if clear {
                        u64::MAX
                    } else {
                        0
                    }
                }
                _ => 0,
            }
        } else {
            self.producer
                .as_ref()
                .map_or(u64::MAX, |p| p.outcomes().len() as u64)
        };
        let txn = coord.pending_commit_txn().unwrap_or(0);
        let coord = self.coordinator.as_mut().expect("checked above");
        if let Some(offsets) = coord.take_ready_commit(completed) {
            if txn_mode && txn > 0 {
                coord.note_txn_commit();
                if let Some(p) = self.producer.as_mut() {
                    p.end_txn(ctx, txn, true);
                }
            }
            self.consumer.commit_offsets(ctx, offsets);
        }
    }

    fn normal_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.txn_mode() && self.txn_seq == 0 {
            // Fresh start: open transaction 1 (a restore already seeded the
            // sequence past the recovered chain's).
            self.txn_seq = 1;
        }
        if self.txn_mode() {
            if let Some(p) = self.producer.as_mut() {
                p.set_transactional(Some(self.txn_seq));
            }
        }
        self.consumer.start(ctx);
        if let Some(p) = self.producer.as_mut() {
            p.start(ctx);
        }
        ctx.set_timer(self.cfg.batch_interval, tags::BATCH_TICK);
        ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
        if let Some(c) = &self.coordinator {
            ctx.set_timer(c.interval(), tags::CHECKPOINT_TICK);
        }
    }

    fn apply_restore(
        &mut self,
        ctx: &mut Ctx<'_>,
        chain: Option<SnapshotChain>,
        bytes: Option<u64>,
    ) {
        let now = ctx.now();
        if let Some(r) = self.recovery.as_mut() {
            r.restored_at = Some(now);
            self.tele
                .trace_end(now, &self.name, "recovery:restore", "recovery");
        }
        if self.txn_mode() {
            // Resolve the crashed incarnation's transactions: everything at
            // or below the restored capture's transaction rolls forward
            // (its prepare — snapshot + staged batch — is durable); newer
            // ones abort, and replay from the restored offsets re-stages
            // exactly their records under fresh transactions.
            let committed = chain.as_ref().map_or(0, SnapshotChain::txn_seq);
            self.txn_seq = committed + 1;
            if let Some(p) = self.producer.as_mut() {
                p.recover_txns(ctx, committed);
                p.set_transactional(Some(self.txn_seq));
            }
        }
        let Some(chain) = chain else { return };
        if let Some(r) = self.recovery.as_mut() {
            r.snapshot_taken_at = Some(chain.taken_at());
            r.snapshot_bytes = bytes.unwrap_or_else(|| chain.encoded_len() as u64);
            r.delta_chain = chain.chain_len();
        }
        let mode = self
            .coordinator
            .as_ref()
            .expect("restore implies coordinator")
            .mode();
        // Base first, then every delta in persistence order — the chained
        // restore an incremental checkpoint pays for its smaller captures.
        let base = chain.base;
        self.plan
            .restore_state(base.plan_state, base.records_in, base.records_out);
        let mut tail_buffer = base.buffer;
        let mut tail_offsets = base.offsets;
        let taken_at = chain
            .deltas
            .last()
            .map(|d| d.taken_at)
            .unwrap_or(base.taken_at);
        for delta in chain.deltas {
            self.plan
                .apply_delta(delta.plan_delta, delta.records_in, delta.records_out);
            tail_buffer = delta.buffer;
            tail_offsets = delta.offsets;
        }
        match mode {
            CheckpointMode::ExactlyOnce => {
                // The chain is the source of truth: restore the unbatched
                // input and seek to the offsets captured with the newest
                // element, so the replay boundary matches the state exactly
                // even if the final broker commit raced the crash.
                self.buffer.events = tail_buffer;
                self.consumer.seed_positions(tail_offsets.clone());
            }
            CheckpointMode::AtLeastOnce => {
                // Resume from the broker's committed offsets (which trail
                // the chain): records in between replay into restored
                // state — duplicates, never loss.
            }
        }
        if let Some(c) = self.coordinator.as_mut() {
            c.seed_prev_offsets(tail_offsets);
        }
        ctx.trace_with("spe", || {
            format!("{} restored checkpoint from {}", self.name, taken_at)
        });
    }

    fn handle_store_rpc(&mut self, ctx: &mut Ctx<'_>, rpc: StoreRpc) {
        if self.coordinator.is_none() {
            return;
        }
        let name = self.name.clone();
        let coord = self.coordinator.as_mut().expect("just checked");
        match coord.on_store_rpc(ctx, &name, &rpc) {
            StoreRpcOutcome::PersistCompleted => self.pump_commit(ctx),
            StoreRpcOutcome::Recovered { chain, bytes } => {
                self.awaiting_restore = false;
                self.apply_restore(ctx, chain, Some(bytes));
                self.normal_start(ctx);
            }
            StoreRpcOutcome::RecoveredMulti { chains, bytes } => {
                self.awaiting_restore = false;
                self.apply_restore_multi(ctx, chains, bytes);
                self.normal_start(ctx);
            }
            StoreRpcOutcome::NotMine => {
                // Sink-insert acks and unrelated store traffic: ignored, as
                // before checkpointing existed.
            }
        }
    }

    /// The rescale-aware restore: merges the chains of *every* old instance
    /// of this stage, keeping only the key groups this instance owns under
    /// the new parallelism. Per-key-group consistency holds because a key
    /// group, its shuffle partition, and its captured offsets all lived on
    /// exactly one old instance.
    fn apply_restore_multi(
        &mut self,
        ctx: &mut Ctx<'_>,
        chains: Vec<Option<SnapshotChain>>,
        bytes: u64,
    ) {
        let now = ctx.now();
        if let Some(r) = self.recovery.as_mut() {
            r.restored_at = Some(now);
            self.tele
                .trace_end(now, &self.name, "recovery:restore", "recovery");
        }
        let inst = self
            .instance
            .clone()
            .expect("multi restore implies a stage instance");
        let own_idx = inst.instance as usize;
        if self.txn_mode() {
            // Resolve this producer id's crashed transactions exactly like
            // the single-instance path...
            let committed = chains
                .get(own_idx)
                .and_then(Option::as_ref)
                .map_or(0, SnapshotChain::txn_seq);
            self.txn_seq = committed + 1;
            if let Some(p) = self.producer.as_mut() {
                p.recover_txns(ctx, committed);
                // ...and, from instance 0, the transactions of old
                // instances with no successor under a shrunk parallelism —
                // their staged output would otherwise pin the LSO forever.
                if inst.instance == 0 {
                    for (idx, old_pid) in inst.old_producers.iter().enumerate() {
                        if idx >= inst.parallelism as usize {
                            let upto = chains
                                .get(idx)
                                .and_then(Option::as_ref)
                                .map_or(0, SnapshotChain::txn_seq);
                            p.recover_txns_for(ctx, *old_pid, upto);
                        }
                    }
                }
                p.set_transactional(Some(self.txn_seq));
            }
        }
        let restored_any = chains.iter().any(Option::is_some);
        if let Some(r) = self.recovery.as_mut() {
            r.snapshot_taken_at = chains.iter().flatten().map(SnapshotChain::taken_at).max();
            r.snapshot_bytes = if bytes > 0 {
                bytes
            } else {
                chains
                    .iter()
                    .flatten()
                    .map(|c| c.encoded_len() as u64)
                    .sum()
            };
            r.delta_chain = chains
                .iter()
                .flatten()
                .map(SnapshotChain::chain_len)
                .max()
                .unwrap_or(0);
        }
        if !restored_any {
            return; // cold start: nothing was ever persisted
        }
        let mode = self
            .coordinator
            .as_ref()
            .expect("restore implies coordinator")
            .mode();
        let keep = |k: &str| inst.owns_key(k);
        let mut tail_offsets: BTreeMap<TopicPartition, Offset> = BTreeMap::new();
        let mut buffer: Vec<Event> = Vec::new();
        for (idx, chain) in chains.iter().enumerate() {
            let Some(chain) = chain else { continue };
            // Base first, then its deltas. Chains from different instances
            // interleave safely: each key lived on exactly one of them.
            self.plan
                .merge_restore_state(chain.base.plan_state.clone(), &keep);
            for delta in &chain.deltas {
                self.plan.merge_apply_delta(delta.plan_delta.clone(), &keep);
            }
            for (tp, off) in chain.offsets() {
                let e = tail_offsets.entry(tp.clone()).or_insert(*off);
                *e = (*e).max(*off);
            }
            for ev in chain.buffer() {
                // Keyed buffered input follows its key's owner. Keyless
                // input is pre-KeyBy and therefore stateless here: any one
                // new instance may replay it (the shuffle re-routes by key
                // afterwards), so old chain `k`'s buffer goes to new
                // instance `k mod M` — every chain covered exactly once.
                let keep_ev = match &ev.key {
                    Some(k) => keep(k),
                    None => idx % inst.parallelism as usize == own_idx,
                };
                if keep_ev {
                    buffer.push(ev.clone());
                }
            }
        }
        // Record counters aren't keyed, so exact per-group attribution is
        // impossible after a rescale; adopting old chain `k`'s counters on
        // new instance `k mod M` (the keyless-buffer rule above) keeps the
        // job-level totals equal to what the old layout actually processed.
        let (records_in, records_out) = chains
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % inst.parallelism as usize == own_idx)
            .filter_map(|(_, c)| c.as_ref())
            .map(SnapshotChain::record_counts)
            .fold((0, 0), |(ai, ao), (i, o)| (ai + i, ao + o));
        self.plan.set_record_counts(records_in, records_out);
        let offsets: Vec<(TopicPartition, Offset)> = tail_offsets.into_iter().collect();
        match mode {
            CheckpointMode::ExactlyOnce => {
                // The union of every chain's tail offsets is the replay
                // boundary; the consumer's static assignment restricts
                // actual fetching to the partitions this instance owns.
                self.buffer.events = buffer;
                self.consumer.seed_positions(offsets.clone());
            }
            CheckpointMode::AtLeastOnce => {
                // Resume from the broker's committed offsets (duplicates,
                // never loss — partitions that changed owner replay from
                // their new group's start).
            }
        }
        if let Some(c) = self.coordinator.as_mut() {
            c.seed_prev_offsets(offsets);
        }
        ctx.trace_with("spe", || {
            format!(
                "{} restored {} old-instance chain(s) for its key groups",
                self.name,
                chains.iter().flatten().count()
            )
        });
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        match self.sink.clone() {
            SpeSink::Collect => self.collected.extend(events),
            SpeSink::Topic(topic) => {
                let producer = self.producer.as_mut().expect("topic sink has a producer");
                for e in events {
                    let key = e.key.clone().map(String::into_bytes);
                    producer.send(ctx, &topic, key, e.to_bytes());
                }
            }
            SpeSink::Store { store, table } => {
                self.tele
                    .counter_add(&self.name, "sink_inserts", events.len() as u64);
                self.tele
                    .trace_instant(ctx.now(), &self.name, "sink:insert", "sink");
                for e in events {
                    let mut row: Vec<String> = Vec::new();
                    if let Some(k) = &e.key {
                        row.push(k.clone());
                    }
                    match &e.value {
                        Value::Map(m) => row.extend(m.values().map(|v| v.to_string())),
                        other => row.push(other.to_string()),
                    }
                    self.store_corr += 1;
                    self.store_inserts += 1;
                    ctx.send(
                        store,
                        StoreRpc::Insert {
                            corr: self.store_corr,
                            table: table.clone(),
                            row,
                        },
                    );
                }
            }
        }
    }
}

impl Process for SpeWorker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.exec(self.cfg.startup_cpu, tags::STARTUP_DONE);
        if let (Some(cfg), None) = (self.cfg.checkpoint, self.coordinator.as_ref()) {
            // Self-contained default: a private in-memory backend. It dies
            // with the worker, so orchestrated scenarios attach a shared or
            // durable backend instead.
            let mut coord = CheckpointCoordinator::new(
                cfg,
                Box::new(InMemoryBackend::new(snapshot_store())),
                false,
            );
            coord.set_telemetry(self.tele.clone(), self.name.clone());
            self.coordinator = Some(coord);
        }
        let wants_recovery = self
            .coordinator
            .as_ref()
            .is_some_and(CheckpointCoordinator::wants_recovery);
        if self.restarted || wants_recovery {
            self.recovery = Some(RecoveryInfo {
                restarted_at: ctx.now(),
                restored_at: None,
                snapshot_taken_at: None,
                snapshot_bytes: 0,
                delta_chain: 0,
                first_batch_at: None,
            });
        }
        if wants_recovery {
            self.tele
                .trace_begin(ctx.now(), &self.name, "recovery:restore", "recovery");
            let name = self.name.clone();
            let multi = self
                .instance
                .as_ref()
                .map(|i| i.restore_from.clone())
                .filter(|names| !names.is_empty());
            let coord = self.coordinator.as_mut().expect("checked above");
            match multi {
                Some(names) => match coord.start_recovery_multi(ctx, names) {
                    MultiRecoverOutcome::Done(chains) => {
                        self.apply_restore_multi(ctx, chains, 0);
                        self.normal_start(ctx);
                    }
                    MultiRecoverOutcome::Pending => {
                        self.awaiting_restore = true;
                        ctx.set_timer(CKPT_IO_RETRY_INTERVAL, tags::CKPT_IO_RETRY);
                    }
                },
                None => match coord.start_recovery(ctx, &name) {
                    RecoverOutcome::Done(chain) => {
                        self.apply_restore(ctx, chain, None);
                        self.normal_start(ctx);
                    }
                    RecoverOutcome::Pending => {
                        // Hold consuming and batching until the backend read
                        // round trip completes — the recovery-latency cost of
                        // a durable backend. The retry timer covers a lost
                        // RPC.
                        self.awaiting_restore = true;
                        ctx.set_timer(CKPT_IO_RETRY_INTERVAL, tags::CKPT_IO_RETRY);
                    }
                },
            }
        } else {
            self.normal_start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let msg = match self.consumer.handle_message(ctx, msg) {
            None => return,
            Some(m) => m,
        };
        let msg = match s2g_sim::downcast::<StoreRpc>(msg) {
            Ok(rpc) => return self.handle_store_rpc(ctx, *rpc),
            Err(m) => m,
        };
        if let Some(p) = self.producer.as_mut() {
            p.handle_message(ctx, msg);
        }
        // Producer acks may have satisfied an exactly-once output barrier.
        self.pump_commit(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.consumer.handle_timer(ctx, tag) {
            return;
        }
        if let Some(p) = self.producer.as_mut() {
            if p.handle_timer(ctx, tag) {
                self.pump_commit(ctx);
                return;
            }
        }
        match tag {
            tags::BATCH_TICK => {
                self.start_batch(ctx);
                ctx.set_timer(self.cfg.batch_interval, tags::BATCH_TICK);
            }
            tags::BACKGROUND_TICK => {
                if !self.cfg.background_cpu.is_zero() {
                    ctx.exec(self.cfg.background_cpu, tags::BACKGROUND_DONE);
                }
                ctx.set_timer(self.cfg.background_interval, tags::BACKGROUND_TICK);
            }
            tags::CHECKPOINT_TICK => {
                if let Some(c) = self.coordinator.as_mut() {
                    c.request_capture();
                    let interval = c.interval();
                    self.try_capture(ctx);
                    ctx.set_timer(interval, tags::CHECKPOINT_TICK);
                }
            }
            tags::CKPT_IO_RETRY => {
                let name = self.name.clone();
                if let Some(c) = self.coordinator.as_mut() {
                    // A store RPC (persist or restore) is still unanswered:
                    // the request or its response was lost. Re-issue it and
                    // keep the timer armed until an answer lands.
                    if c.retry_pending_io(ctx, &name) {
                        ctx.set_timer(CKPT_IO_RETRY_INTERVAL, tags::CKPT_IO_RETRY);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if self.consumer.handle_cpu_done(ctx, tag, &mut self.buffer) {
            return;
        }
        if tag == tags::BATCH_DONE {
            self.finish_batch(ctx);
        }
    }
}

impl std::fmt::Debug for SpeWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeWorker")
            .field("name", &self.name)
            .field("batches", &self.metrics.len())
            .field("plan", &self.plan)
            .finish()
    }
}
