//! # s2g-spe — micro-batch stream processing engine
//!
//! The Apache Spark (Streaming) stand-in for stream2gym-rs: dynamically
//! typed [`Event`]s, an operator algebra ([`Map`], [`FlatMap`], [`Filter`],
//! [`KeyBy`], [`StatefulMap`], [`WindowAggregate`], [`WindowJoin`]) composed
//! into [`Plan`]s, executed by [`SpeWorker`] processes that ingest broker
//! topics, pay per-batch CPU on their emulated host, and emit to topics,
//! stores, or local collections.
//!
//! # Example: a word-split job plan
//!
//! ```
//! use s2g_spe::{Event, Plan, Value};
//! use s2g_sim::SimTime;
//!
//! let mut plan = Plan::new().flat_map("split", |e| {
//!     e.value
//!         .as_str()
//!         .unwrap_or("")
//!         .split_whitespace()
//!         .map(|w| Event { value: Value::Str(w.to_string()), ..e.clone() })
//!         .collect()
//! });
//! let out = plan.run_batch(
//!     SimTime::ZERO,
//!     vec![Event::new(Value::Str("tick tock".into()), SimTime::ZERO)],
//! );
//! assert_eq!(out.len(), 2);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod event;
mod ops;
mod plan;
mod worker;

pub use checkpoint::{
    snapshot_store, BackendEvent, CaptureKind, CheckpointCfg, CheckpointCoordinator,
    CheckpointMode, CheckpointPayload, CheckpointStats, DurableBackend, InMemoryBackend,
    MultiRecoverOutcome, PersistOutcome, RecoverOutcome, RecoveryInfo, SnapshotChain,
    SnapshotStoreHandle, StateBackend, StateDelta, StateSnapshot, StoreRpcOutcome, CKPT_CORR_BASE,
    DEFAULT_MAX_DELTA_CHAIN,
};
pub use event::{CodecError, Event, Value};
pub use ops::{
    Filter, FlatMap, KeyBy, Map, Operator, StatefulMap, WindowAggregate, WindowAssigner, WindowJoin,
};
pub use plan::Plan;
pub use worker::{BatchMetric, SpeConfig, SpeSink, SpeWorker, StageInstanceCfg};
