//! Checkpointing and recovery for stream jobs.
//!
//! A crashed [`SpeWorker`](crate::SpeWorker) loses every byte of operator
//! state and its consumer positions. This module makes worker crash →
//! restore → replay an expressible scenario:
//!
//! * [`StateSnapshot`] — a consistent capture of a worker: per-operator
//!   state, buffered-but-unprocessed input, and the embedded consumer's
//!   partition offsets, taken only at batch boundaries;
//! * [`StateDelta`] — an *incremental* capture: only the per-key/per-window
//!   state that changed since the previous capture, chained onto a periodic
//!   full base snapshot. Snapshot bytes scale with churn instead of with
//!   total state, and a configurable chain cap bounds restore work by
//!   forcing a re-base;
//! * [`StateBackend`] — pluggable snapshot storage: [`InMemoryBackend`]
//!   models a job-manager heap outside the worker's failure domain (free,
//!   instant), [`DurableBackend`] persists through an
//!   [`s2g_store::StoreServer`], paying simulated CPU and network cost on
//!   every blob written and read;
//! * [`CheckpointCoordinator`] — drives the interval, full-vs-delta
//!   scheduling, the output barrier, and the offset-commit schedule that
//!   distinguishes [`CheckpointMode::ExactlyOnce`] from
//!   [`CheckpointMode::AtLeastOnce`].
//!
//! # The two delivery modes
//!
//! **Exactly-once**: the capture embeds the consumer offsets taken in the
//! same instant as the operator state (Flink-style "offsets live in the
//! state"), and those offsets are only committed to the broker after (a) the
//! capture is durably persisted and (b) every output emitted before the
//! capture has been acknowledged by the broker. Recovery seeds the consumer
//! from the restored offsets, restores the input buffer, and replays
//! everything after — with an idempotent or keyed sink the post-recovery
//! output equals the no-fault run exactly.
//!
//! **At-least-once**: the capture holds operator state only, and the
//! coordinator commits the *previous* checkpoint's offsets — so the broker's
//! committed position always trails the persisted state. Recovery restores
//! the newer state and resumes from the older committed offsets, replaying
//! up to one checkpoint interval of records into state that already saw
//! them: duplicates, never loss, and bounded by the interval.
//!
//! # Incremental chains
//!
//! ```text
//!   base ──► Δ1 ──► Δ2 ──► ... ──► Δcap ──► base' ──► Δ1 ...
//!    │       │       │
//!    └───────┴───────┴── restore = base + Δ1 + Δ2 (≤ cap deltas)
//! ```
//!
//! Each delta carries the keys/windows touched since the previous capture
//! plus the windows dropped by emission, and absolute copies of the cheap
//! worker-level state (offsets, input buffer, record counters). Restore
//! applies the base then replays the deltas in sequence; the chain cap
//! bounds both restore work and the blob count a durable backend must read.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use s2g_proto::codec::{put_u64, Cursor};
use s2g_proto::{Offset, TopicPartition};
use s2g_sim::{Ctx, ProcessId, SimDuration, SimTime};
use s2g_store::{BlobClient, StoreRpc};
use s2g_telemetry::Telemetry;

use crate::event::{CodecError, Event, Value};

/// Correlation-id base for checkpoint store RPCs, so a worker can tell its
/// snapshot traffic apart from sink inserts sharing the same store server.
pub const CKPT_CORR_BASE: u64 = 1 << 42;

/// Default cap on the delta-chain length before a re-base is forced.
pub const DEFAULT_MAX_DELTA_CHAIN: u32 = 8;

/// When consumer offsets are committed relative to state persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Offsets are captured atomically with the state and committed only
    /// once the capture is persisted and all pre-capture output is acked.
    /// Recovery replays nothing that is already reflected in the state.
    ExactlyOnce,
    /// The previous checkpoint's offsets are committed with each capture;
    /// recovery replays up to one interval of already-processed records.
    AtLeastOnce,
}

/// Checkpoint tunables, carried in [`SpeConfig`](crate::SpeConfig).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointCfg {
    /// Time between checkpoint attempts (a capture waits for the current
    /// micro-batch to finish, so the effective period may be longer).
    pub interval: SimDuration,
    /// Offset-commit discipline.
    pub mode: CheckpointMode,
    /// When set, captures after a base snapshot ship only dirty state
    /// ([`StateDelta`]s); when clear every capture is a full snapshot.
    pub incremental: bool,
    /// Maximum deltas chained onto one base before the next capture is
    /// forced to be a full re-base (bounds restore work).
    pub max_delta_chain: u32,
}

impl CheckpointCfg {
    /// Full-snapshot checkpointing on the given interval and mode.
    pub fn new(interval: SimDuration, mode: CheckpointMode) -> Self {
        CheckpointCfg {
            interval,
            mode,
            incremental: false,
            max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
        }
    }

    /// Exactly-once checkpointing on the given interval (full snapshots).
    pub fn exactly_once(interval: SimDuration) -> Self {
        CheckpointCfg {
            interval,
            mode: CheckpointMode::ExactlyOnce,
            incremental: false,
            max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
        }
    }

    /// At-least-once checkpointing on the given interval (full snapshots).
    pub fn at_least_once(interval: SimDuration) -> Self {
        CheckpointCfg {
            interval,
            mode: CheckpointMode::AtLeastOnce,
            incremental: false,
            max_delta_chain: DEFAULT_MAX_DELTA_CHAIN,
        }
    }

    /// Switches to incremental captures with the given delta-chain cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_delta_chain` is zero (a zero cap is just full
    /// snapshots — ask for that directly).
    pub fn incremental(mut self, max_delta_chain: u32) -> Self {
        assert!(max_delta_chain > 0, "delta-chain cap must be positive");
        self.incremental = true;
        self.max_delta_chain = max_delta_chain;
        self
    }
}

fn event_to_value(e: &Event) -> Value {
    Value::List(vec![
        e.key.clone().map_or(Value::Null, Value::Str),
        e.value.clone(),
        Value::Int(e.ts.as_nanos() as i64),
        Value::Int(e.origin.as_nanos() as i64),
        Value::Int(e.source as i64),
    ])
}

fn event_from_value(v: &Value) -> Option<Event> {
    let Value::List(parts) = v else { return None };
    if parts.len() != 5 {
        return None;
    }
    let key = match &parts[0] {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return None,
    };
    Some(Event {
        key,
        value: parts[1].clone(),
        ts: SimTime::from_nanos(parts[2].as_int()? as u64),
        origin: SimTime::from_nanos(parts[3].as_int()? as u64),
        source: u8::try_from(parts[4].as_int()?).ok()?,
    })
}

/// Encodes an event for inclusion in a snapshot value.
pub(crate) fn encode_event(e: &Event) -> Value {
    event_to_value(e)
}

/// Decodes an event from a snapshot value.
pub(crate) fn decode_event(v: &Value) -> Option<Event> {
    event_from_value(v)
}

fn offsets_to_value(offsets: &[(TopicPartition, Offset)]) -> Value {
    Value::List(
        offsets
            .iter()
            .map(|(tp, off)| {
                Value::List(vec![
                    Value::Str(tp.topic.clone()),
                    Value::Int(tp.partition as i64),
                    Value::Int(off.value() as i64),
                ])
            })
            .collect(),
    )
}

fn offsets_from_value(v: &Value) -> Option<Vec<(TopicPartition, Offset)>> {
    let Value::List(offs) = v else { return None };
    let mut offsets = Vec::with_capacity(offs.len());
    for o in offs {
        let Value::List(parts) = o else { return None };
        if parts.len() != 3 {
            return None;
        }
        offsets.push((
            TopicPartition::new(
                parts[0].as_str()?.to_string(),
                u32::try_from(parts[1].as_int()?).ok()?,
            ),
            Offset(parts[2].as_int()? as u64),
        ));
    }
    Some(offsets)
}

fn buffer_to_value(buffer: &[Event]) -> Value {
    Value::List(buffer.iter().map(event_to_value).collect())
}

fn buffer_from_value(v: &Value) -> Option<Vec<Event>> {
    let Value::List(buf) = v else { return None };
    let buffer: Vec<Event> = buf.iter().filter_map(event_from_value).collect();
    if buffer.len() != buf.len() {
        return None;
    }
    Some(buffer)
}

/// A consistent capture of one worker, taken at a micro-batch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// When the capture happened.
    pub taken_at: SimTime,
    /// Per-operator state, aligned with the plan's operator chain; `None`
    /// for stateless operators.
    pub plan_state: Vec<Option<Value>>,
    /// The plan's cumulative input-record counter at capture time.
    pub records_in: u64,
    /// The plan's cumulative output-record counter at capture time.
    pub records_out: u64,
    /// Records fetched (offsets already advanced past them) but not yet run
    /// through the plan. Restored under exactly-once so nothing between the
    /// offsets and the state is lost.
    pub buffer: Vec<Event>,
    /// The embedded consumer's position per partition at capture time.
    pub offsets: Vec<(TopicPartition, Offset)>,
    /// The sink transaction this capture closes (0 when the sink is not
    /// transactional). On recovery, transactions at or below this sequence
    /// roll forward; newer ones abort and are re-staged by replay.
    pub txn_seq: u64,
}

impl StateSnapshot {
    /// Encodes the snapshot as a single [`Value`] tree.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("taken_at", Value::Int(self.taken_at.as_nanos() as i64)),
            ("records_in", Value::Int(self.records_in as i64)),
            ("records_out", Value::Int(self.records_out as i64)),
            ("txn", Value::Int(self.txn_seq as i64)),
            (
                "plan",
                Value::List(
                    self.plan_state
                        .iter()
                        .map(|s| s.clone().unwrap_or(Value::Null))
                        .collect(),
                ),
            ),
            ("buffer", buffer_to_value(&self.buffer)),
            ("offsets", offsets_to_value(&self.offsets)),
        ])
    }

    /// Decodes a snapshot from its [`Value`] tree.
    pub fn from_value(v: &Value) -> Option<StateSnapshot> {
        let taken_at = SimTime::from_nanos(v.field("taken_at")?.as_int()? as u64);
        let records_in = v.field("records_in")?.as_int()? as u64;
        let records_out = v.field("records_out")?.as_int()? as u64;
        let Value::List(plan) = v.field("plan")? else {
            return None;
        };
        let plan_state = plan
            .iter()
            .map(|s| {
                if *s == Value::Null {
                    None
                } else {
                    Some(s.clone())
                }
            })
            .collect();
        let buffer = buffer_from_value(v.field("buffer")?)?;
        let offsets = offsets_from_value(v.field("offsets")?)?;
        let txn_seq = v.field("txn").and_then(Value::as_int).unwrap_or(0) as u64;
        Some(StateSnapshot {
            taken_at,
            plan_state,
            records_in,
            records_out,
            buffer,
            offsets,
            txn_seq,
        })
    }

    /// Serializes to the compact binary format (the durable-backend payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_value().encode()
    }

    /// Deserializes from [`to_bytes`](StateSnapshot::to_bytes) output.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<StateSnapshot, CodecError> {
        let v = Value::decode(buf)?;
        StateSnapshot::from_value(&v).ok_or(CodecError::Truncated)
    }

    /// Encoded size in bytes — the cost a durable backend pays.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// An incremental capture: per-operator dirty state since the previous
/// capture, plus absolute copies of the cheap worker-level state. Chained
/// onto the [`StateSnapshot`] base persisted before it.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDelta {
    /// When the capture happened.
    pub taken_at: SimTime,
    /// 1-based position in the chain after its base.
    pub seq: u64,
    /// Per-operator dirty-state deltas, aligned with the plan's operator
    /// chain; `None` for stateless operators.
    pub plan_delta: Vec<Option<Value>>,
    /// The plan's cumulative input-record counter at capture time.
    pub records_in: u64,
    /// The plan's cumulative output-record counter at capture time.
    pub records_out: u64,
    /// Buffered-but-unprocessed input at capture time (absolute, usually
    /// tiny).
    pub buffer: Vec<Event>,
    /// The embedded consumer's position per partition at capture time
    /// (absolute).
    pub offsets: Vec<(TopicPartition, Offset)>,
    /// The sink transaction this capture closes (0 when not transactional).
    pub txn_seq: u64,
}

impl StateDelta {
    /// Encodes the delta as a single [`Value`] tree.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("taken_at", Value::Int(self.taken_at.as_nanos() as i64)),
            ("seq", Value::Int(self.seq as i64)),
            ("records_in", Value::Int(self.records_in as i64)),
            ("records_out", Value::Int(self.records_out as i64)),
            ("txn", Value::Int(self.txn_seq as i64)),
            (
                "plan",
                Value::List(
                    self.plan_delta
                        .iter()
                        .map(|s| s.clone().unwrap_or(Value::Null))
                        .collect(),
                ),
            ),
            ("buffer", buffer_to_value(&self.buffer)),
            ("offsets", offsets_to_value(&self.offsets)),
        ])
    }

    /// Decodes a delta from its [`Value`] tree.
    pub fn from_value(v: &Value) -> Option<StateDelta> {
        let taken_at = SimTime::from_nanos(v.field("taken_at")?.as_int()? as u64);
        let seq = v.field("seq")?.as_int()? as u64;
        let records_in = v.field("records_in")?.as_int()? as u64;
        let records_out = v.field("records_out")?.as_int()? as u64;
        let Value::List(plan) = v.field("plan")? else {
            return None;
        };
        let plan_delta = plan
            .iter()
            .map(|s| {
                if *s == Value::Null {
                    None
                } else {
                    Some(s.clone())
                }
            })
            .collect();
        let buffer = buffer_from_value(v.field("buffer")?)?;
        let offsets = offsets_from_value(v.field("offsets")?)?;
        let txn_seq = v.field("txn").and_then(Value::as_int).unwrap_or(0) as u64;
        Some(StateDelta {
            taken_at,
            seq,
            plan_delta,
            records_in,
            records_out,
            buffer,
            offsets,
            txn_seq,
        })
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_value().encode()
    }

    /// Deserializes from [`to_bytes`](StateDelta::to_bytes) output.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<StateDelta, CodecError> {
        let v = Value::decode(buf)?;
        StateDelta::from_value(&v).ok_or(CodecError::Truncated)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// One capture handed to a [`StateBackend`]: a full base snapshot or a
/// delta chained onto the current base.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointPayload {
    /// A full snapshot — starts a fresh chain.
    Full(StateSnapshot),
    /// A delta — extends the current chain.
    Delta(StateDelta),
}

impl CheckpointPayload {
    /// Capture time.
    pub fn taken_at(&self) -> SimTime {
        match self {
            CheckpointPayload::Full(s) => s.taken_at,
            CheckpointPayload::Delta(d) => d.taken_at,
        }
    }

    /// The consumer offsets captured with this payload.
    pub fn offsets(&self) -> &[(TopicPartition, Offset)] {
        match self {
            CheckpointPayload::Full(s) => &s.offsets,
            CheckpointPayload::Delta(d) => &d.offsets,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            CheckpointPayload::Full(s) => s.encoded_len(),
            CheckpointPayload::Delta(d) => d.encoded_len(),
        }
    }

    /// The sink transaction this capture closes (0 when not transactional).
    pub fn txn_seq(&self) -> u64 {
        match self {
            CheckpointPayload::Full(s) => s.txn_seq,
            CheckpointPayload::Delta(d) => d.txn_seq,
        }
    }
}

/// A base snapshot plus the deltas persisted after it — what a backend
/// stores per job and what recovery replays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotChain {
    /// The base snapshot (a default/empty one only in the unused
    /// `Default` value).
    pub base: StateSnapshot,
    /// Deltas in persistence order (`seq` 1, 2, ...).
    pub deltas: Vec<StateDelta>,
}

impl Default for StateSnapshot {
    fn default() -> Self {
        StateSnapshot {
            taken_at: SimTime::ZERO,
            plan_state: Vec::new(),
            records_in: 0,
            records_out: 0,
            buffer: Vec::new(),
            offsets: Vec::new(),
            txn_seq: 0,
        }
    }
}

impl SnapshotChain {
    /// A chain holding only a base.
    pub fn new(base: StateSnapshot) -> Self {
        SnapshotChain {
            base,
            deltas: Vec::new(),
        }
    }

    /// Number of deltas chained onto the base.
    pub fn chain_len(&self) -> u64 {
        self.deltas.len() as u64
    }

    /// Capture time of the newest element.
    pub fn taken_at(&self) -> SimTime {
        self.deltas
            .last()
            .map(|d| d.taken_at)
            .unwrap_or(self.base.taken_at)
    }

    /// Consumer offsets of the newest element.
    pub fn offsets(&self) -> &[(TopicPartition, Offset)] {
        self.deltas
            .last()
            .map(|d| d.offsets.as_slice())
            .unwrap_or(self.base.offsets.as_slice())
    }

    /// Input buffer of the newest element.
    pub fn buffer(&self) -> &[Event] {
        self.deltas
            .last()
            .map(|d| d.buffer.as_slice())
            .unwrap_or(self.base.buffer.as_slice())
    }

    /// Sink transaction of the newest element (0 when not transactional).
    pub fn txn_seq(&self) -> u64 {
        self.deltas
            .last()
            .map(|d| d.txn_seq)
            .unwrap_or(self.base.txn_seq)
    }

    /// Record counters of the newest element.
    pub fn record_counts(&self) -> (u64, u64) {
        self.deltas
            .last()
            .map(|d| (d.records_in, d.records_out))
            .unwrap_or((self.base.records_in, self.base.records_out))
    }

    /// Total encoded bytes across base and deltas — what a restore reads.
    pub fn encoded_len(&self) -> usize {
        self.base.encoded_len()
            + self
                .deltas
                .iter()
                .map(StateDelta::encoded_len)
                .sum::<usize>()
    }
}

/// The outcome of a [`StateBackend::persist`] call. Both variants carry the
/// encoded payload size so stats never need a second serialization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistOutcome {
    /// The payload is durable now; `bytes` is its encoded size.
    Done(u64),
    /// Persistence is in flight; completion arrives through
    /// [`StateBackend::on_store_rpc`] as
    /// [`BackendEvent::PersistCompleted`].
    Pending {
        /// Encoded payload size already on the wire.
        bytes: u64,
    },
}

/// The outcome of a [`StateBackend::recover`] call.
#[derive(Debug)]
pub enum RecoverOutcome {
    /// Recovery finished; the latest chain (or `None` if none exists).
    Done(Option<SnapshotChain>),
    /// Reads are in flight; the chain arrives through
    /// [`StateBackend::on_store_rpc`] as [`BackendEvent::Recovered`].
    Pending,
}

/// What a [`StateBackend`] made of a store RPC routed to it.
#[derive(Debug)]
pub enum BackendEvent {
    /// The message did not belong to this backend's pending IO.
    NotMine,
    /// A pending persist completed.
    PersistCompleted,
    /// A pending recovery completed with this chain (or none on a cold
    /// start); `bytes` is the total encoded size read back.
    Recovered {
        /// The restored chain, if one was persisted.
        chain: Option<SnapshotChain>,
        /// Encoded bytes read (0 on a cold start).
        bytes: u64,
    },
}

/// Pluggable snapshot storage for checkpoints. Backends own their pending
/// IO: an asynchronous backend routes store replies through
/// [`on_store_rpc`](StateBackend::on_store_rpc) and re-issues lost RPCs in
/// [`retry_pending_io`](StateBackend::retry_pending_io).
pub trait StateBackend {
    /// Begins persisting `payload` as the next capture of `job`.
    fn persist(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        payload: &CheckpointPayload,
    ) -> PersistOutcome;

    /// Begins recovering the latest persisted chain of `job`.
    fn recover(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome;

    /// Routes a store RPC to this backend's pending IO. Synchronous
    /// backends never have any.
    fn on_store_rpc(&mut self, _ctx: &mut Ctx<'_>, _job: &str, _rpc: &StoreRpc) -> BackendEvent {
        BackendEvent::NotMine
    }

    /// Re-issues whatever store RPCs are still pending (the request — or
    /// its response — was lost in the network). Returns `true` when
    /// something was retried.
    fn retry_pending_io(&mut self, _ctx: &mut Ctx<'_>, _job: &str) -> bool {
        false
    }

    /// True while a persist or recovery is awaiting store responses.
    fn has_pending_io(&self) -> bool {
        false
    }
}

/// Shared snapshot storage for [`InMemoryBackend`]s. Lives outside the
/// worker process, so it survives worker crashes — the moral equivalent of
/// a job manager's heap. Maps job name → its current [`SnapshotChain`].
pub type SnapshotStoreHandle = Rc<RefCell<BTreeMap<String, SnapshotChain>>>;

/// Creates an empty shared snapshot store.
pub fn snapshot_store() -> SnapshotStoreHandle {
    Rc::new(RefCell::new(BTreeMap::new()))
}

/// Snapshot storage on the coordinator's heap: instant and free, but gone if
/// the whole scenario host were to fail (which the simulation never models).
pub struct InMemoryBackend {
    store: SnapshotStoreHandle,
}

impl InMemoryBackend {
    /// Creates a backend over a shared store handle.
    pub fn new(store: SnapshotStoreHandle) -> Self {
        InMemoryBackend { store }
    }
}

impl StateBackend for InMemoryBackend {
    fn persist(
        &mut self,
        _ctx: &mut Ctx<'_>,
        job: &str,
        payload: &CheckpointPayload,
    ) -> PersistOutcome {
        let bytes = payload.encoded_len() as u64;
        let mut store = self.store.borrow_mut();
        match payload {
            CheckpointPayload::Full(snapshot) => {
                store.insert(job.to_string(), SnapshotChain::new(snapshot.clone()));
            }
            CheckpointPayload::Delta(delta) => {
                // The coordinator always persists a base before any delta.
                if let Some(chain) = store.get_mut(job) {
                    chain.deltas.push(delta.clone());
                } else {
                    debug_assert!(false, "delta persisted before any base");
                }
            }
        }
        PersistOutcome::Done(bytes)
    }

    fn recover(&mut self, _ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        RecoverOutcome::Done(self.store.borrow().get(job).cloned())
    }
}

/// What a pending durable-backend RPC was carrying, kept so a lost request
/// or response can be re-issued verbatim under a fresh correlation id.
enum CkptIo {
    BlobPut { key: String, bytes: Vec<u8> },
    ManifestPut { key: String, bytes: Vec<u8> },
    ManifestGet { key: String },
    BaseGet { key: String },
    DeltaGet { key: String, seq: u64 },
}

/// Blobs gathered while a durable recovery is in flight.
#[derive(Default)]
struct RecoverAssembly {
    chain: u64,
    count: u64,
    base: Option<StateSnapshot>,
    deltas: BTreeMap<u64, StateDelta>,
    bytes: u64,
}

/// Snapshot storage through an [`s2g_store::StoreServer`]: every persist
/// ships the encoded blob plus a tiny chain manifest over the emulated
/// network and pays the store's CPU cost; every recovery pays a manifest
/// read plus one round trip per chained blob before the worker may process
/// its first post-restart batch — which is exactly why the delta-chain cap
/// bounds recovery latency.
pub struct DurableBackend {
    blobs: BlobClient,
    /// Chain counter: bumped per base snapshot so blob keys from superseded
    /// chains are never read again.
    chain: u64,
    /// Deltas persisted on the current chain.
    delta_count: u64,
    /// Outstanding store RPCs by correlation id (ordered so retry re-issues
    /// them deterministically).
    pending: BTreeMap<u64, CkptIo>,
    /// A persist is awaiting its put acks.
    persist_inflight: bool,
    /// The manifest write of the in-flight persist, staged until the blob
    /// put is acknowledged: the manifest is the only pointer to the chain,
    /// so it must never point at a blob that is not durable yet (a lost
    /// blob put plus a delivered manifest put would turn the next recovery
    /// into a cold start even though the previous chain is intact).
    staged_manifest: Option<(String, Vec<u8>)>,
    /// A recovery is assembling its blobs.
    recovering: Option<RecoverAssembly>,
}

impl DurableBackend {
    /// Creates a backend writing to the store server process.
    pub fn new(server: ProcessId) -> Self {
        Self::replicated(vec![server])
    }

    /// Creates a backend over every member of a replicated store group:
    /// unanswered RPCs rotate to the next member on retry, so checkpoints
    /// survive a store crash with no change above this backend.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    pub fn replicated(servers: Vec<ProcessId>) -> Self {
        DurableBackend {
            blobs: BlobClient::replicated(servers, CKPT_CORR_BASE, 0),
            chain: 0,
            delta_count: 0,
            pending: BTreeMap::new(),
            persist_inflight: false,
            staged_manifest: None,
            recovering: None,
        }
    }

    fn manifest_key(job: &str) -> String {
        format!("ckpt/{job}")
    }

    fn base_key(job: &str, chain: u64) -> String {
        format!("ckpt/{job}/{chain}/base")
    }

    fn delta_key(job: &str, chain: u64, seq: u64) -> String {
        format!("ckpt/{job}/{chain}/{seq}")
    }

    fn manifest_bytes(chain: u64, count: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u64(&mut out, chain);
        put_u64(&mut out, count);
        out
    }

    fn parse_manifest(buf: &[u8]) -> Option<(u64, u64)> {
        let mut cur = Cursor::new(buf);
        let chain = cur.u64()?;
        let count = cur.u64()?;
        Some((chain, count))
    }

    fn put_tracked(&mut self, ctx: &mut Ctx<'_>, io: CkptIo) {
        let (key, bytes) = match &io {
            CkptIo::BlobPut { key, bytes } | CkptIo::ManifestPut { key, bytes } => {
                (key.clone(), bytes.clone())
            }
            _ => unreachable!("put_tracked only takes puts"),
        };
        let corr = self.blobs.put(ctx, &key, bytes);
        self.pending.insert(corr, io);
    }

    fn get_tracked(&mut self, ctx: &mut Ctx<'_>, io: CkptIo) {
        let key = match &io {
            CkptIo::ManifestGet { key }
            | CkptIo::BaseGet { key }
            | CkptIo::DeltaGet { key, .. } => key.clone(),
            _ => unreachable!("get_tracked only takes gets"),
        };
        let corr = self.blobs.get(ctx, &key);
        self.pending.insert(corr, io);
    }

    fn puts_left(&self) -> bool {
        self.pending
            .values()
            .any(|io| matches!(io, CkptIo::BlobPut { .. } | CkptIo::ManifestPut { .. }))
    }

    fn gets_left(&self) -> bool {
        self.pending.values().any(|io| {
            matches!(
                io,
                CkptIo::ManifestGet { .. } | CkptIo::BaseGet { .. } | CkptIo::DeltaGet { .. }
            )
        })
    }

    fn finish_recovery(&mut self) -> BackendEvent {
        let asm = self.recovering.take().expect("recovery in flight");
        // Resume chain numbering after the recovered chain so the next base
        // lands on fresh keys. Monotone max: a multi-name rescale recovery
        // reads several manifests through this one backend, and the next
        // base must not collide with *any* chain it saw (a reused chain id
        // could overwrite a blob an old manifest still points at).
        self.chain = self.chain.max(asm.chain);
        self.delta_count = asm.count;
        let Some(base) = asm.base else {
            return BackendEvent::Recovered {
                chain: None,
                bytes: asm.bytes,
            };
        };
        // Apply deltas in seq order; a missing blob (lost before the crash)
        // truncates the usable chain at the gap — later deltas were never
        // covered by a manifest-consistent prefix.
        let mut deltas = Vec::new();
        for seq in 1..=asm.count {
            match asm.deltas.get(&seq) {
                Some(d) => deltas.push(d.clone()),
                None => break,
            }
        }
        BackendEvent::Recovered {
            chain: Some(SnapshotChain { base, deltas }),
            bytes: asm.bytes,
        }
    }
}

impl StateBackend for DurableBackend {
    fn persist(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        payload: &CheckpointPayload,
    ) -> PersistOutcome {
        let (blob_key, blob_bytes) = match payload {
            CheckpointPayload::Full(snapshot) => {
                self.chain += 1;
                self.delta_count = 0;
                (Self::base_key(job, self.chain), snapshot.to_bytes())
            }
            CheckpointPayload::Delta(delta) => {
                self.delta_count = delta.seq;
                (
                    Self::delta_key(job, self.chain, delta.seq),
                    delta.to_bytes(),
                )
            }
        };
        let bytes = blob_bytes.len() as u64;
        self.persist_inflight = true;
        self.put_tracked(
            ctx,
            CkptIo::BlobPut {
                key: blob_key,
                bytes: blob_bytes,
            },
        );
        // The manifest only goes out once the blob it points at is durable
        // (see `staged_manifest`); until then a crash recovers the previous
        // manifest-consistent chain.
        self.staged_manifest = Some((
            Self::manifest_key(job),
            Self::manifest_bytes(self.chain, self.delta_count),
        ));
        PersistOutcome::Pending { bytes }
    }

    fn recover(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        self.recovering = Some(RecoverAssembly::default());
        self.get_tracked(
            ctx,
            CkptIo::ManifestGet {
                key: Self::manifest_key(job),
            },
        );
        RecoverOutcome::Pending
    }

    fn on_store_rpc(&mut self, ctx: &mut Ctx<'_>, job: &str, rpc: &StoreRpc) -> BackendEvent {
        match rpc {
            StoreRpc::PutAck { corr } => {
                let is_put = matches!(
                    self.pending.get(corr),
                    Some(CkptIo::BlobPut { .. } | CkptIo::ManifestPut { .. })
                );
                if !is_put {
                    return BackendEvent::NotMine;
                }
                self.pending.remove(corr);
                if self.puts_left() {
                    return BackendEvent::NotMine;
                }
                // Blob durable: now (and only now) publish the manifest
                // that points at it.
                if let Some((key, bytes)) = self.staged_manifest.take() {
                    self.put_tracked(ctx, CkptIo::ManifestPut { key, bytes });
                    return BackendEvent::NotMine;
                }
                if self.persist_inflight {
                    self.persist_inflight = false;
                    return BackendEvent::PersistCompleted;
                }
                BackendEvent::NotMine
            }
            StoreRpc::GetResult { corr, value } => {
                let Some(io) = self.pending.get(corr) else {
                    return BackendEvent::NotMine;
                };
                let io = match io {
                    CkptIo::ManifestGet { .. }
                    | CkptIo::BaseGet { .. }
                    | CkptIo::DeltaGet { .. } => self.pending.remove(corr).expect("just matched"),
                    _ => return BackendEvent::NotMine,
                };
                let Some(asm) = self.recovering.as_mut() else {
                    return BackendEvent::NotMine;
                };
                asm.bytes += value.as_ref().map_or(0, |b| b.len() as u64);
                match io {
                    CkptIo::ManifestGet { .. } => {
                        let manifest = value.as_deref().and_then(Self::parse_manifest);
                        let Some((chain, count)) = manifest else {
                            // Cold start: nothing persisted yet.
                            return self.finish_recovery();
                        };
                        asm.chain = chain;
                        asm.count = count;
                        self.get_tracked(
                            ctx,
                            CkptIo::BaseGet {
                                key: Self::base_key(job, chain),
                            },
                        );
                        for seq in 1..=count {
                            self.get_tracked(
                                ctx,
                                CkptIo::DeltaGet {
                                    key: Self::delta_key(job, chain, seq),
                                    seq,
                                },
                            );
                        }
                        BackendEvent::NotMine
                    }
                    CkptIo::BaseGet { .. } => {
                        asm.base = value
                            .as_deref()
                            .and_then(|b| StateSnapshot::from_bytes(b).ok());
                        if !self.gets_left() {
                            return self.finish_recovery();
                        }
                        BackendEvent::NotMine
                    }
                    CkptIo::DeltaGet { seq, .. } => {
                        if let Some(d) = value
                            .as_deref()
                            .and_then(|b| StateDelta::from_bytes(b).ok())
                        {
                            asm.deltas.insert(seq, d);
                        }
                        if !self.gets_left() {
                            return self.finish_recovery();
                        }
                        BackendEvent::NotMine
                    }
                    _ => BackendEvent::NotMine,
                }
            }
            _ => BackendEvent::NotMine,
        }
    }

    fn retry_pending_io(&mut self, ctx: &mut Ctx<'_>, _job: &str) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        // The silent endpoint may be a crashed store-group member: rotate
        // to the next one before re-issuing.
        self.blobs.rotate();
        let items: Vec<CkptIo> = std::mem::take(&mut self.pending).into_values().collect();
        for io in items {
            match io {
                put @ (CkptIo::BlobPut { .. } | CkptIo::ManifestPut { .. }) => {
                    self.put_tracked(ctx, put)
                }
                get => self.get_tracked(ctx, get),
            }
        }
        true
    }

    fn has_pending_io(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Checkpoint counters, surfaced per job in the run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Captures successfully persisted (full + delta).
    pub checkpoints: u64,
    /// Full (base) snapshots persisted.
    pub full_checkpoints: u64,
    /// Incremental deltas persisted.
    pub delta_checkpoints: u64,
    /// Total encoded bytes persisted (full + delta).
    pub snapshot_bytes: u64,
    /// Total encoded delta bytes persisted.
    pub delta_bytes: u64,
    /// Encoded size of the most recent capture (full or delta).
    pub last_snapshot_bytes: u64,
    /// Encoded size of the most recent full snapshot.
    pub last_full_bytes: u64,
    /// Encoded size of the most recent delta.
    pub last_delta_bytes: u64,
    /// Largest delta persisted — the per-capture cost ceiling, bounded by
    /// churn per interval rather than by total state.
    pub max_delta_bytes: u64,
    /// Deltas currently chained onto the latest base.
    pub delta_chain_len: u64,
    /// Capture time of the most recent persisted capture.
    pub last_at: SimTime,
    /// Offset-commit batches issued by the coordinator.
    pub offset_commits: u64,
    /// Total accept-to-durable latency across all persisted captures, in
    /// nanoseconds (divide by `checkpoints` for the mean — the figure a
    /// replicated store's quorum round trips inflate).
    pub persist_nanos: u64,
    /// Sink transactions committed by the coordinator's commit phase.
    pub txn_commits: u64,
}

impl CheckpointStats {
    /// Folds another worker's counters into this one — the aggregation a
    /// parallel job's per-instance stats go through for its job-level
    /// report. Totals add; `last_*` follows the newer capture; maxima max.
    pub fn absorb(&mut self, other: &CheckpointStats) {
        self.checkpoints += other.checkpoints;
        self.full_checkpoints += other.full_checkpoints;
        self.delta_checkpoints += other.delta_checkpoints;
        self.snapshot_bytes += other.snapshot_bytes;
        self.delta_bytes += other.delta_bytes;
        if other.last_at >= self.last_at {
            self.last_at = other.last_at;
            self.last_snapshot_bytes = other.last_snapshot_bytes;
            self.last_full_bytes = other.last_full_bytes;
            self.last_delta_bytes = other.last_delta_bytes;
        }
        self.max_delta_bytes = self.max_delta_bytes.max(other.max_delta_bytes);
        self.delta_chain_len = self.delta_chain_len.max(other.delta_chain_len);
        self.offset_commits += other.offset_commits;
        self.persist_nanos += other.persist_nanos;
        self.txn_commits += other.txn_commits;
    }
}

/// How a worker recovered, for the run report's recovery metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// When the respawned worker started.
    pub restarted_at: SimTime,
    /// When state restoration completed (after any backend read round trip).
    pub restored_at: Option<SimTime>,
    /// Capture time of the newest restored chain element, if one existed.
    pub snapshot_taken_at: Option<SimTime>,
    /// Encoded bytes read back during restore (base + deltas).
    pub snapshot_bytes: u64,
    /// Deltas applied on top of the base during restore.
    pub delta_chain: u64,
    /// Completion time of the first post-restart batch with input — the end
    /// point of recovery latency.
    pub first_batch_at: Option<SimTime>,
}

/// Which kind of capture the coordinator wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureKind {
    /// A full base snapshot.
    Full,
    /// An incremental delta chained onto the current base.
    Delta,
}

#[derive(Debug)]
struct PendingCommit {
    offsets: Vec<(TopicPartition, Offset)>,
    /// Producer records that must be completed (acked or failed) before the
    /// commit may go out — the exactly-once output barrier.
    barrier: u64,
    /// The sink transaction to commit alongside the offsets (0 when the
    /// sink is not transactional).
    txn: u64,
}

struct PendingPersist {
    payload: CheckpointPayload,
    producer_sent: u64,
    bytes: u64,
    accepted_at: SimTime,
}

/// A multi-name recovery in flight: the rescale path reads the chain of
/// *every* old instance of the stage, one backend recovery at a time.
struct MultiRecover {
    names: Vec<String>,
    next: usize,
    chains: Vec<Option<SnapshotChain>>,
    bytes: u64,
}

/// The outcome of [`CheckpointCoordinator::start_recovery_multi`].
pub enum MultiRecoverOutcome {
    /// All chains gathered synchronously (in-memory backend), aligned with
    /// the requested names.
    Done(Vec<Option<SnapshotChain>>),
    /// Backend reads are in flight; the chains arrive through
    /// [`CheckpointCoordinator::on_store_rpc`] as
    /// [`StoreRpcOutcome::RecoveredMulti`].
    Pending,
}

/// Drives a worker's checkpoint schedule: interval timing, batch-boundary
/// alignment, full-vs-delta scheduling, the output barrier, persist
/// bookkeeping, and the offset-commit discipline of the configured
/// [`CheckpointMode`].
pub struct CheckpointCoordinator {
    cfg: CheckpointCfg,
    backend: Box<dyn StateBackend>,
    recover: bool,
    capture_requested: bool,
    /// A base snapshot has been persisted (deltas may chain onto it).
    has_base: bool,
    /// Deltas chained onto the current base.
    chain_len: u64,
    /// Offsets committed at the previous completed checkpoint (the lagging
    /// commit used by at-least-once mode).
    prev_offsets: Vec<(TopicPartition, Offset)>,
    pending_persist: Option<PendingPersist>,
    pending_commit: Option<PendingCommit>,
    multi_recover: Option<MultiRecover>,
    stats: CheckpointStats,
    /// `(accepted, durable)` instants of every persisted capture, in order
    /// — the checkpoint-latency series the replication figure plots.
    persist_log: Vec<(SimTime, SimTime)>,
    /// Telemetry sink (an unshared default until attached) and the scope —
    /// the owning worker's name — its samples are recorded under.
    tele: Telemetry,
    tele_scope: String,
}

impl CheckpointCoordinator {
    /// Creates a coordinator. `recover` makes the worker restore the
    /// latest chain before consuming (the respawn path).
    pub fn new(cfg: CheckpointCfg, backend: Box<dyn StateBackend>, recover: bool) -> Self {
        CheckpointCoordinator {
            cfg,
            backend,
            recover,
            capture_requested: false,
            has_base: false,
            chain_len: 0,
            prev_offsets: Vec::new(),
            pending_persist: None,
            pending_commit: None,
            multi_recover: None,
            stats: CheckpointStats::default(),
            persist_log: Vec::new(),
            tele: Telemetry::new(),
            tele_scope: String::new(),
        }
    }

    /// Attaches the run-wide telemetry sink; `scope` is the owning
    /// worker's name. Each persisted capture then records its duration and
    /// size histograms, a `checkpoints` counter, and a `checkpoint:persist`
    /// trace span.
    pub fn set_telemetry(&mut self, tele: Telemetry, scope: String) {
        self.tele = tele;
        self.tele_scope = scope;
    }

    /// The configured interval.
    pub fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    /// The configured mode.
    pub fn mode(&self) -> CheckpointMode {
        self.cfg.mode
    }

    /// Whether the worker must restore before consuming.
    pub fn wants_recovery(&self) -> bool {
        self.recover
    }

    /// Counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Marks that the interval elapsed; the worker calls
    /// [`should_capture`](Self::should_capture) at the next safe point.
    pub fn request_capture(&mut self) {
        self.capture_requested = true;
    }

    /// True when a capture is due and no prior checkpoint is still in
    /// flight (persist or commit pending applies backpressure).
    pub fn should_capture(&self) -> bool {
        self.capture_requested && self.pending_persist.is_none() && self.pending_commit.is_none()
    }

    /// Which kind of capture the next [`accept`](Self::accept) should carry:
    /// full when incremental captures are off, before the first base, and
    /// whenever the chain hit its cap — delta otherwise.
    pub fn capture_kind(&self) -> CaptureKind {
        if !self.cfg.incremental
            || !self.has_base
            || self.chain_len >= self.cfg.max_delta_chain as u64
        {
            CaptureKind::Full
        } else {
            CaptureKind::Delta
        }
    }

    /// The `seq` the next delta capture must carry.
    pub fn next_delta_seq(&self) -> u64 {
        self.chain_len + 1
    }

    /// Accepts a capture built by the worker and begins persisting it.
    /// `producer_sent` is the worker's cumulative count of records handed to
    /// its sink producer before this capture — the exactly-once barrier.
    pub fn accept(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        payload: CheckpointPayload,
        producer_sent: u64,
    ) {
        self.capture_requested = false;
        let accepted_at = ctx.now();
        match self.backend.persist(ctx, job, &payload) {
            PersistOutcome::Done(bytes) => {
                self.finish_persist(payload, producer_sent, bytes, accepted_at, accepted_at)
            }
            PersistOutcome::Pending { bytes } => {
                self.pending_persist = Some(PendingPersist {
                    payload,
                    producer_sent,
                    bytes,
                    accepted_at,
                });
            }
        }
    }

    /// True while a persist or recovery RPC is awaiting its store response.
    pub fn has_pending_io(&self) -> bool {
        self.backend.has_pending_io()
    }

    /// Re-issues whatever store RPCs are still pending (the response — or
    /// the request itself — was lost in the network). Returns `true` when
    /// something was retried.
    pub fn retry_pending_io(&mut self, ctx: &mut Ctx<'_>, job: &str) -> bool {
        self.backend.retry_pending_io(ctx, job)
    }

    fn finish_persist(
        &mut self,
        payload: CheckpointPayload,
        producer_sent: u64,
        bytes: u64,
        accepted_at: SimTime,
        durable_at: SimTime,
    ) {
        self.stats.checkpoints += 1;
        self.stats.snapshot_bytes += bytes;
        self.stats.last_snapshot_bytes = bytes;
        self.stats.last_at = payload.taken_at();
        self.stats.persist_nanos += durable_at.saturating_since(accepted_at).as_nanos();
        self.persist_log.push((accepted_at, durable_at));
        if !self.tele_scope.is_empty() {
            let scope = &self.tele_scope;
            self.tele.counter_add(scope, "checkpoints", 1);
            self.tele.observe_latency(
                scope,
                "checkpoint_duration_s",
                durable_at.saturating_since(accepted_at),
            );
            self.tele.observe_bytes(scope, "checkpoint_bytes", bytes);
            self.tele.trace_complete(
                accepted_at,
                durable_at.saturating_since(accepted_at),
                scope,
                "checkpoint:persist",
                "checkpoint",
            );
        }
        match &payload {
            CheckpointPayload::Full(_) => {
                self.stats.full_checkpoints += 1;
                self.stats.last_full_bytes = bytes;
                self.has_base = true;
                self.chain_len = 0;
            }
            CheckpointPayload::Delta(_) => {
                self.stats.delta_checkpoints += 1;
                self.stats.delta_bytes += bytes;
                self.stats.last_delta_bytes = bytes;
                self.stats.max_delta_bytes = self.stats.max_delta_bytes.max(bytes);
                self.chain_len += 1;
            }
        }
        self.stats.delta_chain_len = self.chain_len;
        let offsets = payload.offsets().to_vec();
        let txn = payload.txn_seq();
        match self.cfg.mode {
            CheckpointMode::ExactlyOnce => {
                // Commit the captured offsets once every pre-capture output
                // is acknowledged.
                self.pending_commit = Some(PendingCommit {
                    offsets: offsets.clone(),
                    barrier: producer_sent,
                    txn,
                });
                self.prev_offsets = offsets;
            }
            CheckpointMode::AtLeastOnce => {
                // Commit the previous checkpoint's offsets: the broker's
                // committed position deliberately trails the state.
                let lagging = std::mem::replace(&mut self.prev_offsets, offsets);
                if !lagging.is_empty() {
                    self.pending_commit = Some(PendingCommit {
                        offsets: lagging,
                        barrier: 0,
                        txn: 0,
                    });
                }
            }
        }
    }

    /// The sink transaction the pending commit would flip, when one is
    /// waiting (0 means the capture was not transactional).
    pub fn pending_commit_txn(&self) -> Option<u64> {
        self.pending_commit.as_ref().map(|p| p.txn)
    }

    /// `(accepted, durable)` instants of every persisted capture so far.
    pub fn persist_log(&self) -> &[(SimTime, SimTime)] {
        &self.persist_log
    }

    /// Counts a sink-transaction commit issued by the worker.
    pub fn note_txn_commit(&mut self) {
        self.stats.txn_commits += 1;
    }

    /// Returns the offsets to commit once `producer_completed` (records
    /// acked or failed by the sink producer) satisfies the barrier.
    pub fn take_ready_commit(
        &mut self,
        producer_completed: u64,
    ) -> Option<Vec<(TopicPartition, Offset)>> {
        if self
            .pending_commit
            .as_ref()
            .is_some_and(|p| producer_completed >= p.barrier)
        {
            let commit = self.pending_commit.take().expect("just checked");
            self.stats.offset_commits += 1;
            Some(commit.offsets)
        } else {
            None
        }
    }

    /// Begins recovery through the backend.
    pub fn start_recovery(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        let outcome = self.backend.recover(ctx, job);
        if let RecoverOutcome::Done(chain) = &outcome {
            self.note_recovered_chain(chain.as_ref());
        }
        outcome
    }

    /// Begins a rescale-aware recovery reading the chains of every name in
    /// `names` (the old instances of this worker's stage), one backend
    /// recovery at a time. The merged restore produces state that matches
    /// no single stored chain, so the schedule is reset: the first capture
    /// after a multi-recovery is always a full re-base.
    pub fn start_recovery_multi(
        &mut self,
        ctx: &mut Ctx<'_>,
        names: Vec<String>,
    ) -> MultiRecoverOutcome {
        assert!(!names.is_empty(), "multi-recovery needs at least one name");
        self.multi_recover = Some(MultiRecover {
            names,
            next: 0,
            chains: Vec::new(),
            bytes: 0,
        });
        self.drive_multi_recover(ctx)
    }

    /// Advances a multi-recovery until it blocks on the backend or
    /// finishes. Synchronous backends complete in one call.
    fn drive_multi_recover(&mut self, ctx: &mut Ctx<'_>) -> MultiRecoverOutcome {
        loop {
            let Some(m) = self.multi_recover.as_ref() else {
                return MultiRecoverOutcome::Pending;
            };
            if m.next >= m.names.len() {
                let m = self.multi_recover.take().expect("checked");
                return MultiRecoverOutcome::Done(m.chains);
            }
            let name = m.names[m.next].clone();
            match self.backend.recover(ctx, &name) {
                RecoverOutcome::Done(chain) => {
                    let m = self.multi_recover.as_mut().expect("checked");
                    m.chains.push(chain);
                    m.next += 1;
                }
                RecoverOutcome::Pending => return MultiRecoverOutcome::Pending,
            }
        }
    }

    fn note_recovered_chain(&mut self, chain: Option<&SnapshotChain>) {
        if let Some(c) = chain {
            // Continue the chain the restore produced: the next capture may
            // extend it (until the cap) instead of forcing a re-base.
            self.has_base = true;
            self.chain_len = c.chain_len();
            self.stats.delta_chain_len = self.chain_len;
        }
    }

    /// Routes a store RPC to the backend's pending persist/recover
    /// bookkeeping. Returns the restored chain when a pending recovery
    /// completed.
    pub fn on_store_rpc(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        rpc: &StoreRpc,
    ) -> StoreRpcOutcome {
        // During a multi-recovery the backend is reading the chain of one
        // *old-run* instance; blob keys derive from that name, not from the
        // restoring worker's own.
        let backend_job = self
            .multi_recover
            .as_ref()
            .and_then(|m| m.names.get(m.next).cloned())
            .unwrap_or_else(|| job.to_string());
        match self.backend.on_store_rpc(ctx, &backend_job, rpc) {
            BackendEvent::NotMine => StoreRpcOutcome::NotMine,
            BackendEvent::PersistCompleted => {
                if let Some(p) = self.pending_persist.take() {
                    self.finish_persist(
                        p.payload,
                        p.producer_sent,
                        p.bytes,
                        p.accepted_at,
                        ctx.now(),
                    );
                }
                StoreRpcOutcome::PersistCompleted
            }
            BackendEvent::Recovered { chain, bytes } => {
                if self.multi_recover.is_some() {
                    {
                        let m = self.multi_recover.as_mut().expect("checked");
                        m.chains.push(chain);
                        m.bytes += bytes;
                        m.next += 1;
                    }
                    let total = self
                        .multi_recover
                        .as_ref()
                        .map(|m| m.bytes)
                        .unwrap_or_default();
                    match self.drive_multi_recover(ctx) {
                        MultiRecoverOutcome::Done(chains) => StoreRpcOutcome::RecoveredMulti {
                            chains,
                            bytes: total,
                        },
                        MultiRecoverOutcome::Pending => StoreRpcOutcome::NotMine,
                    }
                } else {
                    self.note_recovered_chain(chain.as_ref());
                    StoreRpcOutcome::Recovered { chain, bytes }
                }
            }
        }
    }

    /// Seeds the lagging-commit baseline after a restore, so the first
    /// post-recovery checkpoint commits positions at or after the restored
    /// chain.
    pub fn seed_prev_offsets(&mut self, offsets: Vec<(TopicPartition, Offset)>) {
        self.prev_offsets = offsets;
    }
}

/// What [`CheckpointCoordinator::on_store_rpc`] did with a store message.
#[derive(Debug)]
pub enum StoreRpcOutcome {
    /// The message did not belong to checkpoint bookkeeping.
    NotMine,
    /// A pending capture persist completed.
    PersistCompleted,
    /// A pending recovery completed with this chain (or none on a cold
    /// start); `bytes` is the encoded size read back.
    Recovered {
        /// The restored chain, if one was persisted.
        chain: Option<SnapshotChain>,
        /// Encoded bytes read (0 on a cold start).
        bytes: u64,
    },
    /// A pending multi-name (rescale) recovery completed; `chains` aligns
    /// with the names passed to
    /// [`CheckpointCoordinator::start_recovery_multi`].
    RecoveredMulti {
        /// One chain per requested old-instance name (`None` where nothing
        /// was persisted).
        chains: Vec<Option<SnapshotChain>>,
        /// Total encoded bytes read across every chain.
        bytes: u64,
    },
}

impl std::fmt::Debug for CheckpointCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointCoordinator")
            .field("mode", &self.cfg.mode)
            .field("interval", &self.cfg.interval)
            .field("incremental", &self.cfg.incremental)
            .field("chain_len", &self.chain_len)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> StateSnapshot {
        StateSnapshot {
            taken_at: SimTime::from_millis(1234),
            plan_state: vec![
                None,
                Some(Value::map([("a", Value::Int(3))])),
                Some(Value::List(vec![Value::Str("x".into())])),
            ],
            records_in: 17,
            records_out: 9,
            buffer: vec![
                Event::new(Value::Str("pending".into()), SimTime::from_millis(1200)).with_key("k"),
            ],
            offsets: vec![
                (TopicPartition::new("raw", 0), Offset(41)),
                (TopicPartition::new("raw", 1), Offset(7)),
            ],
            txn_seq: 3,
        }
    }

    fn sample_delta(seq: u64) -> StateDelta {
        StateDelta {
            taken_at: SimTime::from_millis(2000 + seq),
            seq,
            plan_delta: vec![
                None,
                Some(Value::map([("set", Value::Map(Default::default()))])),
            ],
            records_in: 20 + seq,
            records_out: 11,
            buffer: Vec::new(),
            offsets: vec![(TopicPartition::new("raw", 0), Offset(44 + seq))],
            txn_seq: 3 + seq,
        }
    }

    /// Runs `f` inside a one-shot harness process so backend calls get a
    /// real `Ctx`.
    fn with_ctx(f: impl FnOnce(&mut Ctx<'_>) + 'static) {
        struct Harness {
            #[allow(clippy::type_complexity)]
            f: Option<Box<dyn FnOnce(&mut Ctx<'_>)>>,
        }
        impl s2g_sim::Process for Harness {
            fn name(&self) -> &str {
                "harness"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                (self.f.take().unwrap())(ctx);
            }
            fn on_message(
                &mut self,
                _: &mut Ctx<'_>,
                _: s2g_sim::ProcessId,
                _: Box<dyn s2g_sim::Message>,
            ) {
            }
        }
        let mut sim = s2g_sim::Sim::new(0);
        sim.spawn(Box::new(Harness {
            f: Some(Box::new(f)),
        }));
        sim.run_to_completion();
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let snap = sample_snapshot();
        let back = StateSnapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(snap.encoded_len(), snap.to_bytes().len());
    }

    #[test]
    fn delta_round_trips_through_bytes() {
        let delta = sample_delta(3);
        let back = StateDelta::from_bytes(&delta.to_bytes()).expect("round trip");
        assert_eq!(back, delta);
        assert!(StateDelta::from_bytes(&[9, 9]).is_err());
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(StateSnapshot::from_bytes(&[1, 2, 3]).is_err());
        assert!(StateSnapshot::from_value(&Value::Int(4)).is_none());
    }

    #[test]
    fn event_value_round_trip_preserves_source() {
        let mut e = Event::new(Value::Int(5), SimTime::from_millis(10)).with_key("kk");
        e.source = 1;
        let back = event_from_value(&event_to_value(&e)).expect("round trip");
        assert_eq!(back, e);
    }

    #[test]
    fn chain_tail_accessors_prefer_the_newest_delta() {
        let mut chain = SnapshotChain::new(sample_snapshot());
        assert_eq!(chain.chain_len(), 0);
        assert_eq!(chain.record_counts(), (17, 9));
        chain.deltas.push(sample_delta(1));
        chain.deltas.push(sample_delta(2));
        assert_eq!(chain.chain_len(), 2);
        assert_eq!(chain.record_counts(), (22, 11));
        assert_eq!(chain.taken_at(), SimTime::from_millis(2002));
        assert_eq!(chain.offsets()[0].1, Offset(46));
        assert!(chain.encoded_len() > chain.base.encoded_len());
    }

    #[test]
    fn exactly_once_commit_waits_for_barrier() {
        let store = snapshot_store();
        let coord_store = store.clone();
        with_ctx(move |ctx| {
            let mut coord = CheckpointCoordinator::new(
                CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
                Box::new(InMemoryBackend::new(coord_store.clone())),
                false,
            );
            coord.request_capture();
            assert!(coord.should_capture());
            assert_eq!(coord.capture_kind(), CaptureKind::Full);
            let snap = sample_snapshot();
            coord.accept(ctx, "job", CheckpointPayload::Full(snap.clone()), 5);
            assert_eq!(
                coord_store.borrow().get("job").map(|c| c.base.clone()),
                Some(snap.clone())
            );
            // Barrier of 5 sent records: 4 completions are not enough.
            assert!(coord.take_ready_commit(4).is_none());
            let commit = coord.take_ready_commit(5).expect("barrier satisfied");
            assert_eq!(commit, snap.offsets);
            assert!(coord.take_ready_commit(100).is_none(), "commit is one-shot");
            assert_eq!(coord.stats().checkpoints, 1);
            assert_eq!(coord.stats().full_checkpoints, 1);
        });
        assert!(!store.borrow().is_empty());
    }

    #[test]
    fn at_least_once_commits_lagging_offsets() {
        with_ctx(|ctx| {
            let mut coord = CheckpointCoordinator::new(
                CheckpointCfg::at_least_once(SimDuration::from_secs(1)),
                Box::new(InMemoryBackend::new(snapshot_store())),
                false,
            );
            let mut snap1 = sample_snapshot();
            snap1.offsets = vec![(TopicPartition::new("raw", 0), Offset(10))];
            coord.accept(ctx, "job", CheckpointPayload::Full(snap1), 0);
            // First checkpoint has no predecessor: nothing to commit.
            assert!(coord.take_ready_commit(0).is_none());
            let mut snap2 = sample_snapshot();
            snap2.offsets = vec![(TopicPartition::new("raw", 0), Offset(25))];
            coord.accept(ctx, "job", CheckpointPayload::Full(snap2), 0);
            // Second checkpoint commits the first's offsets.
            let commit = coord.take_ready_commit(0).expect("lagging commit");
            assert_eq!(commit, vec![(TopicPartition::new("raw", 0), Offset(10))]);
        });
    }

    #[test]
    fn incremental_schedule_rebases_at_the_chain_cap() {
        let store = snapshot_store();
        let coord_store = store.clone();
        with_ctx(move |ctx| {
            let cfg = CheckpointCfg::exactly_once(SimDuration::from_secs(1)).incremental(2);
            let mut coord = CheckpointCoordinator::new(
                cfg,
                Box::new(InMemoryBackend::new(coord_store.clone())),
                false,
            );
            // No base yet: the first capture is full.
            assert_eq!(coord.capture_kind(), CaptureKind::Full);
            coord.accept(ctx, "job", CheckpointPayload::Full(sample_snapshot()), 0);
            let _ = coord.take_ready_commit(u64::MAX);
            // Two deltas fit under the cap of 2.
            for seq in 1..=2 {
                assert_eq!(coord.capture_kind(), CaptureKind::Delta);
                assert_eq!(coord.next_delta_seq(), seq);
                coord.accept(ctx, "job", CheckpointPayload::Delta(sample_delta(seq)), 0);
                let _ = coord.take_ready_commit(u64::MAX);
            }
            // The cap forces a re-base.
            assert_eq!(coord.capture_kind(), CaptureKind::Full);
            coord.accept(ctx, "job", CheckpointPayload::Full(sample_snapshot()), 0);
            let stats = coord.stats();
            assert_eq!(stats.full_checkpoints, 2);
            assert_eq!(stats.delta_checkpoints, 2);
            assert_eq!(stats.delta_chain_len, 0, "re-base reset the chain");
            assert!(stats.delta_bytes > 0);
        });
        // The store holds the fresh chain (base only).
        assert_eq!(
            store.borrow().get("job").map(SnapshotChain::chain_len),
            Some(0)
        );
    }

    #[test]
    fn in_memory_recovery_returns_the_chain() {
        let store = snapshot_store();
        let coord_store = store.clone();
        with_ctx(move |ctx| {
            let cfg = CheckpointCfg::exactly_once(SimDuration::from_secs(1)).incremental(8);
            let mut coord = CheckpointCoordinator::new(
                cfg,
                Box::new(InMemoryBackend::new(coord_store.clone())),
                false,
            );
            coord.accept(ctx, "job", CheckpointPayload::Full(sample_snapshot()), 0);
            let _ = coord.take_ready_commit(u64::MAX);
            coord.accept(ctx, "job", CheckpointPayload::Delta(sample_delta(1)), 0);
            let _ = coord.take_ready_commit(u64::MAX);
            let mut rec = CheckpointCoordinator::new(
                cfg,
                Box::new(InMemoryBackend::new(coord_store.clone())),
                true,
            );
            match rec.start_recovery(ctx, "job") {
                RecoverOutcome::Done(Some(chain)) => {
                    assert_eq!(chain.chain_len(), 1);
                    assert_eq!(chain.record_counts(), (21, 11));
                }
                other => panic!("expected a restored chain, got {other:?}"),
            }
            // The restored chain seeds the schedule: next capture extends it.
            assert_eq!(rec.capture_kind(), CaptureKind::Delta);
            assert_eq!(rec.next_delta_seq(), 2);
        });
    }
}
