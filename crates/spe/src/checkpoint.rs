//! Checkpointing and recovery for stream jobs.
//!
//! A crashed [`SpeWorker`](crate::SpeWorker) loses every byte of operator
//! state and its consumer positions. This module makes worker crash →
//! restore → replay an expressible scenario:
//!
//! * [`StateSnapshot`] — a consistent capture of a worker: per-operator
//!   state, buffered-but-unprocessed input, and the embedded consumer's
//!   partition offsets, taken only at batch boundaries;
//! * [`StateBackend`] — pluggable snapshot storage: [`InMemoryBackend`]
//!   models a job-manager heap outside the worker's failure domain (free,
//!   instant), [`DurableBackend`] persists through an
//!   [`s2g_store::StoreServer`], paying simulated CPU and network cost on
//!   every snapshot and restore;
//! * [`CheckpointCoordinator`] — drives the interval, the output barrier,
//!   and the offset-commit schedule that distinguishes
//!   [`CheckpointMode::ExactlyOnce`] from [`CheckpointMode::AtLeastOnce`].
//!
//! # The two delivery modes
//!
//! **Exactly-once**: the snapshot embeds the consumer offsets captured in
//! the same instant as the operator state (Flink-style "offsets live in the
//! state"), and those offsets are only committed to the broker after (a) the
//! snapshot is durably persisted and (b) every output emitted before the
//! capture has been acknowledged by the broker. Recovery seeds the consumer
//! from the snapshot's offsets, restores the input buffer, and replays
//! everything after — with an idempotent or keyed sink the post-recovery
//! output equals the no-fault run exactly.
//!
//! **At-least-once**: the snapshot captures operator state only, and the
//! coordinator commits the *previous* checkpoint's offsets — so the broker's
//! committed position always trails the persisted state. Recovery restores
//! the newer state and resumes from the older committed offsets, replaying
//! up to one checkpoint interval of records into state that already saw
//! them: duplicates, never loss, and bounded by the interval.
//!
//! ```text
//!          crash                    restore                 replay
//!   ───x────╳─────   ⟶   snapshot ──►  plan state   ⟶  ──────────►
//!      │                 broker   ──►  offsets           records ≥ commit
//!      └ last checkpoint: state @ tₛ, offsets @ t_c ≤ tₛ
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use s2g_proto::{Offset, TopicPartition};
use s2g_sim::{Ctx, ProcessId, SimDuration, SimTime};
use s2g_store::StoreRpc;

use crate::event::{CodecError, Event, Value};

/// Correlation-id base for checkpoint store RPCs, so a worker can tell its
/// snapshot traffic apart from sink inserts sharing the same store server.
pub const CKPT_CORR_BASE: u64 = 1 << 42;

/// When consumer offsets are committed relative to state persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Offsets are captured atomically with the state and committed only
    /// once the snapshot is persisted and all pre-capture output is acked.
    /// Recovery replays nothing that is already reflected in the state.
    ExactlyOnce,
    /// The previous checkpoint's offsets are committed with each snapshot;
    /// recovery replays up to one interval of already-processed records.
    AtLeastOnce,
}

/// Checkpoint tunables, carried in [`SpeConfig`](crate::SpeConfig).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointCfg {
    /// Time between checkpoint attempts (a capture waits for the current
    /// micro-batch to finish, so the effective period may be longer).
    pub interval: SimDuration,
    /// Offset-commit discipline.
    pub mode: CheckpointMode,
}

impl CheckpointCfg {
    /// Exactly-once checkpointing on the given interval.
    pub fn exactly_once(interval: SimDuration) -> Self {
        CheckpointCfg {
            interval,
            mode: CheckpointMode::ExactlyOnce,
        }
    }

    /// At-least-once checkpointing on the given interval.
    pub fn at_least_once(interval: SimDuration) -> Self {
        CheckpointCfg {
            interval,
            mode: CheckpointMode::AtLeastOnce,
        }
    }
}

fn event_to_value(e: &Event) -> Value {
    Value::List(vec![
        e.key.clone().map_or(Value::Null, Value::Str),
        e.value.clone(),
        Value::Int(e.ts.as_nanos() as i64),
        Value::Int(e.origin.as_nanos() as i64),
        Value::Int(e.source as i64),
    ])
}

fn event_from_value(v: &Value) -> Option<Event> {
    let Value::List(parts) = v else { return None };
    if parts.len() != 5 {
        return None;
    }
    let key = match &parts[0] {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return None,
    };
    Some(Event {
        key,
        value: parts[1].clone(),
        ts: SimTime::from_nanos(parts[2].as_int()? as u64),
        origin: SimTime::from_nanos(parts[3].as_int()? as u64),
        source: parts[4].as_int()? as u8,
    })
}

/// Encodes an event for inclusion in a snapshot value.
pub(crate) fn encode_event(e: &Event) -> Value {
    event_to_value(e)
}

/// Decodes an event from a snapshot value.
pub(crate) fn decode_event(v: &Value) -> Option<Event> {
    event_from_value(v)
}

/// A consistent capture of one worker, taken at a micro-batch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// When the capture happened.
    pub taken_at: SimTime,
    /// Per-operator state, aligned with the plan's operator chain; `None`
    /// for stateless operators.
    pub plan_state: Vec<Option<Value>>,
    /// The plan's cumulative input-record counter at capture time.
    pub records_in: u64,
    /// The plan's cumulative output-record counter at capture time.
    pub records_out: u64,
    /// Records fetched (offsets already advanced past them) but not yet run
    /// through the plan. Restored under exactly-once so nothing between the
    /// offsets and the state is lost.
    pub buffer: Vec<Event>,
    /// The embedded consumer's position per partition at capture time.
    pub offsets: Vec<(TopicPartition, Offset)>,
}

impl StateSnapshot {
    /// Encodes the snapshot as a single [`Value`] tree.
    pub fn to_value(&self) -> Value {
        Value::map([
            ("taken_at", Value::Int(self.taken_at.as_nanos() as i64)),
            ("records_in", Value::Int(self.records_in as i64)),
            ("records_out", Value::Int(self.records_out as i64)),
            (
                "plan",
                Value::List(
                    self.plan_state
                        .iter()
                        .map(|s| s.clone().unwrap_or(Value::Null))
                        .collect(),
                ),
            ),
            (
                "buffer",
                Value::List(self.buffer.iter().map(event_to_value).collect()),
            ),
            (
                "offsets",
                Value::List(
                    self.offsets
                        .iter()
                        .map(|(tp, off)| {
                            Value::List(vec![
                                Value::Str(tp.topic.clone()),
                                Value::Int(tp.partition as i64),
                                Value::Int(off.value() as i64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a snapshot from its [`Value`] tree.
    pub fn from_value(v: &Value) -> Option<StateSnapshot> {
        let taken_at = SimTime::from_nanos(v.field("taken_at")?.as_int()? as u64);
        let records_in = v.field("records_in")?.as_int()? as u64;
        let records_out = v.field("records_out")?.as_int()? as u64;
        let Value::List(plan) = v.field("plan")? else {
            return None;
        };
        let plan_state = plan
            .iter()
            .map(|s| {
                if *s == Value::Null {
                    None
                } else {
                    Some(s.clone())
                }
            })
            .collect();
        let Value::List(buf) = v.field("buffer")? else {
            return None;
        };
        let buffer: Vec<Event> = buf.iter().filter_map(event_from_value).collect();
        if buffer.len() != buf.len() {
            return None;
        }
        let Value::List(offs) = v.field("offsets")? else {
            return None;
        };
        let mut offsets = Vec::with_capacity(offs.len());
        for o in offs {
            let Value::List(parts) = o else { return None };
            if parts.len() != 3 {
                return None;
            }
            offsets.push((
                TopicPartition::new(parts[0].as_str()?.to_string(), parts[1].as_int()? as u32),
                Offset(parts[2].as_int()? as u64),
            ));
        }
        Some(StateSnapshot {
            taken_at,
            plan_state,
            records_in,
            records_out,
            buffer,
            offsets,
        })
    }

    /// Serializes to the compact binary format (the durable-backend payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_value().encode()
    }

    /// Deserializes from [`to_bytes`](StateSnapshot::to_bytes) output.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<StateSnapshot, CodecError> {
        let v = Value::decode(buf)?;
        StateSnapshot::from_value(&v).ok_or(CodecError::Truncated)
    }

    /// Encoded size in bytes — the cost a durable backend pays.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// The outcome of a [`StateBackend::persist`] call. Both variants carry the
/// encoded snapshot size so stats never need a second serialization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistOutcome {
    /// The snapshot is durable now; `bytes` is its encoded size.
    Done(u64),
    /// Persistence is in flight; completion arrives as a
    /// [`StoreRpc::PutAck`] with this correlation id.
    Pending {
        /// Correlation id of the in-flight store write.
        corr: u64,
        /// Encoded snapshot size already on the wire.
        bytes: u64,
    },
}

/// The outcome of a [`StateBackend::recover`] call.
#[derive(Debug)]
pub enum RecoverOutcome {
    /// Recovery finished; the latest snapshot (or `None` if none exists).
    Done(Option<StateSnapshot>),
    /// A read is in flight; the snapshot arrives as a
    /// [`StoreRpc::GetResult`] with this correlation id.
    Pending(u64),
}

/// Pluggable snapshot storage for checkpoints.
pub trait StateBackend {
    /// Begins persisting `snapshot` as the latest checkpoint of `job`.
    fn persist(&mut self, ctx: &mut Ctx<'_>, job: &str, snapshot: &StateSnapshot)
        -> PersistOutcome;

    /// Begins recovering the latest persisted checkpoint of `job`.
    fn recover(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome;
}

/// Shared snapshot storage for [`InMemoryBackend`]s. Lives outside the
/// worker process, so it survives worker crashes — the moral equivalent of
/// a job manager's heap.
pub type SnapshotStoreHandle = Rc<RefCell<BTreeMap<String, StateSnapshot>>>;

/// Creates an empty shared snapshot store.
pub fn snapshot_store() -> SnapshotStoreHandle {
    Rc::new(RefCell::new(BTreeMap::new()))
}

/// Snapshot storage on the coordinator's heap: instant and free, but gone if
/// the whole scenario host were to fail (which the simulation never models).
pub struct InMemoryBackend {
    store: SnapshotStoreHandle,
}

impl InMemoryBackend {
    /// Creates a backend over a shared store handle.
    pub fn new(store: SnapshotStoreHandle) -> Self {
        InMemoryBackend { store }
    }
}

impl StateBackend for InMemoryBackend {
    fn persist(
        &mut self,
        _ctx: &mut Ctx<'_>,
        job: &str,
        snapshot: &StateSnapshot,
    ) -> PersistOutcome {
        let bytes = snapshot.encoded_len() as u64;
        self.store
            .borrow_mut()
            .insert(job.to_string(), snapshot.clone());
        PersistOutcome::Done(bytes)
    }

    fn recover(&mut self, _ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        RecoverOutcome::Done(self.store.borrow().get(job).cloned())
    }
}

/// Snapshot storage through an [`s2g_store::StoreServer`]: every persist
/// ships the encoded snapshot over the emulated network and pays the store's
/// CPU cost; every recovery pays a read round trip before the worker may
/// process its first post-restart batch.
pub struct DurableBackend {
    server: ProcessId,
    next_corr: u64,
}

impl DurableBackend {
    /// Creates a backend writing to the store server process.
    pub fn new(server: ProcessId) -> Self {
        DurableBackend {
            server,
            next_corr: 0,
        }
    }

    fn corr(&mut self) -> u64 {
        let c = CKPT_CORR_BASE + self.next_corr;
        self.next_corr += 1;
        c
    }

    fn key(job: &str) -> String {
        format!("ckpt/{job}")
    }
}

impl StateBackend for DurableBackend {
    fn persist(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        snapshot: &StateSnapshot,
    ) -> PersistOutcome {
        let corr = self.corr();
        let value = snapshot.to_bytes();
        let bytes = value.len() as u64;
        ctx.send(
            self.server,
            StoreRpc::Put {
                corr,
                key: Self::key(job),
                value,
            },
        );
        PersistOutcome::Pending { corr, bytes }
    }

    fn recover(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        let corr = self.corr();
        ctx.send(
            self.server,
            StoreRpc::Get {
                corr,
                key: Self::key(job),
            },
        );
        RecoverOutcome::Pending(corr)
    }
}

/// Checkpoint counters, surfaced per job in the run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Snapshots successfully persisted.
    pub checkpoints: u64,
    /// Total encoded snapshot bytes persisted.
    pub snapshot_bytes: u64,
    /// Encoded size of the most recent snapshot.
    pub last_snapshot_bytes: u64,
    /// Capture time of the most recent persisted snapshot.
    pub last_at: SimTime,
    /// Offset-commit batches issued by the coordinator.
    pub offset_commits: u64,
}

/// How a worker recovered, for the run report's recovery metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// When the respawned worker started.
    pub restarted_at: SimTime,
    /// When state restoration completed (after any backend read round trip).
    pub restored_at: Option<SimTime>,
    /// Capture time of the snapshot that was restored, if one existed.
    pub snapshot_taken_at: Option<SimTime>,
    /// Encoded size of the restored snapshot.
    pub snapshot_bytes: u64,
    /// Completion time of the first post-restart batch with input — the end
    /// point of recovery latency.
    pub first_batch_at: Option<SimTime>,
}

#[derive(Debug)]
struct PendingPersist {
    corr: u64,
    snapshot: StateSnapshot,
    producer_sent: u64,
    bytes: u64,
}

#[derive(Debug)]
struct PendingCommit {
    offsets: Vec<(TopicPartition, Offset)>,
    /// Producer records that must be completed (acked or failed) before the
    /// commit may go out — the exactly-once output barrier.
    barrier: u64,
}

/// Drives a worker's checkpoint schedule: interval timing, batch-boundary
/// alignment, the output barrier, persist bookkeeping, and the offset-commit
/// discipline of the configured [`CheckpointMode`].
pub struct CheckpointCoordinator {
    cfg: CheckpointCfg,
    backend: Box<dyn StateBackend>,
    recover: bool,
    capture_requested: bool,
    /// Offsets committed at the previous completed checkpoint (the lagging
    /// commit used by at-least-once mode).
    prev_offsets: Vec<(TopicPartition, Offset)>,
    pending_persist: Option<PendingPersist>,
    pending_commit: Option<PendingCommit>,
    pending_recover: Option<u64>,
    stats: CheckpointStats,
}

impl CheckpointCoordinator {
    /// Creates a coordinator. `recover` makes the worker restore the
    /// latest snapshot before consuming (the respawn path).
    pub fn new(cfg: CheckpointCfg, backend: Box<dyn StateBackend>, recover: bool) -> Self {
        CheckpointCoordinator {
            cfg,
            backend,
            recover,
            capture_requested: false,
            prev_offsets: Vec::new(),
            pending_persist: None,
            pending_commit: None,
            pending_recover: None,
            stats: CheckpointStats::default(),
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    /// The configured mode.
    pub fn mode(&self) -> CheckpointMode {
        self.cfg.mode
    }

    /// Whether the worker must restore before consuming.
    pub fn wants_recovery(&self) -> bool {
        self.recover
    }

    /// Counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Marks that the interval elapsed; the worker calls
    /// [`should_capture`](Self::should_capture) at the next safe point.
    pub fn request_capture(&mut self) {
        self.capture_requested = true;
    }

    /// True when a capture is due and no prior checkpoint is still in
    /// flight (persist or commit pending applies backpressure).
    pub fn should_capture(&self) -> bool {
        self.capture_requested && self.pending_persist.is_none() && self.pending_commit.is_none()
    }

    /// Accepts a snapshot captured by the worker and begins persisting it.
    /// `producer_sent` is the worker's cumulative count of records handed to
    /// its sink producer before this capture — the exactly-once barrier.
    pub fn accept(
        &mut self,
        ctx: &mut Ctx<'_>,
        job: &str,
        snapshot: StateSnapshot,
        producer_sent: u64,
    ) {
        self.capture_requested = false;
        match self.backend.persist(ctx, job, &snapshot) {
            PersistOutcome::Done(bytes) => self.finish_persist(snapshot, producer_sent, bytes),
            PersistOutcome::Pending { corr, bytes } => {
                self.pending_persist = Some(PendingPersist {
                    corr,
                    snapshot,
                    producer_sent,
                    bytes,
                });
            }
        }
    }

    /// True while a persist or recovery RPC is awaiting its store response.
    pub fn has_pending_io(&self) -> bool {
        self.pending_persist.is_some() || self.pending_recover.is_some()
    }

    /// Re-issues whatever store RPC is still pending (the response — or the
    /// request itself — was lost in the network). Stale responses to the
    /// superseded correlation id are ignored by [`on_store_rpc`]. Returns
    /// `true` when something was retried.
    ///
    /// [`on_store_rpc`]: Self::on_store_rpc
    pub fn retry_pending_io(&mut self, ctx: &mut Ctx<'_>, job: &str) -> bool {
        if let Some(pending) = self.pending_persist.take() {
            match self.backend.persist(ctx, job, &pending.snapshot) {
                PersistOutcome::Done(bytes) => {
                    self.finish_persist(pending.snapshot, pending.producer_sent, bytes);
                }
                PersistOutcome::Pending { corr, bytes } => {
                    self.pending_persist = Some(PendingPersist {
                        corr,
                        snapshot: pending.snapshot,
                        producer_sent: pending.producer_sent,
                        bytes,
                    });
                }
            }
            return true;
        }
        if self.pending_recover.is_some() {
            match self.backend.recover(ctx, job) {
                RecoverOutcome::Pending(corr) => self.pending_recover = Some(corr),
                RecoverOutcome::Done(_) => {
                    // A backend that answers synchronously never left a
                    // recovery pending in the first place; nothing to do.
                }
            }
            return true;
        }
        false
    }

    fn finish_persist(&mut self, snapshot: StateSnapshot, producer_sent: u64, bytes: u64) {
        self.stats.checkpoints += 1;
        self.stats.snapshot_bytes += bytes;
        self.stats.last_snapshot_bytes = bytes;
        self.stats.last_at = snapshot.taken_at;
        match self.cfg.mode {
            CheckpointMode::ExactlyOnce => {
                // Commit the captured offsets once every pre-capture output
                // is acknowledged.
                self.pending_commit = Some(PendingCommit {
                    offsets: snapshot.offsets.clone(),
                    barrier: producer_sent,
                });
                self.prev_offsets = snapshot.offsets;
            }
            CheckpointMode::AtLeastOnce => {
                // Commit the previous checkpoint's offsets: the broker's
                // committed position deliberately trails the state.
                let lagging = std::mem::replace(&mut self.prev_offsets, snapshot.offsets);
                if !lagging.is_empty() {
                    self.pending_commit = Some(PendingCommit {
                        offsets: lagging,
                        barrier: 0,
                    });
                }
            }
        }
    }

    /// Returns the offsets to commit once `producer_completed` (records
    /// acked or failed by the sink producer) satisfies the barrier.
    pub fn take_ready_commit(
        &mut self,
        producer_completed: u64,
    ) -> Option<Vec<(TopicPartition, Offset)>> {
        if self
            .pending_commit
            .as_ref()
            .is_some_and(|p| producer_completed >= p.barrier)
        {
            let commit = self.pending_commit.take().expect("just checked");
            self.stats.offset_commits += 1;
            Some(commit.offsets)
        } else {
            None
        }
    }

    /// Begins recovery through the backend.
    pub fn start_recovery(&mut self, ctx: &mut Ctx<'_>, job: &str) -> RecoverOutcome {
        let outcome = self.backend.recover(ctx, job);
        if let RecoverOutcome::Pending(corr) = outcome {
            self.pending_recover = Some(corr);
        }
        outcome
    }

    /// Routes a store RPC to pending persist/recover bookkeeping. Returns
    /// the restored snapshot when a pending recovery completed.
    pub fn on_store_rpc(&mut self, rpc: &StoreRpc) -> StoreRpcOutcome {
        match rpc {
            StoreRpc::PutAck { corr } => {
                if self
                    .pending_persist
                    .as_ref()
                    .is_some_and(|p| p.corr == *corr)
                {
                    let p = self.pending_persist.take().expect("just checked");
                    self.finish_persist(p.snapshot, p.producer_sent, p.bytes);
                    return StoreRpcOutcome::PersistCompleted;
                }
                StoreRpcOutcome::NotMine
            }
            StoreRpc::GetResult { corr, value } => {
                if self.pending_recover == Some(*corr) {
                    self.pending_recover = None;
                    let bytes = value.as_ref().map_or(0, |b| b.len() as u64);
                    let snapshot = value
                        .as_deref()
                        .and_then(|b| StateSnapshot::from_bytes(b).ok());
                    return StoreRpcOutcome::Recovered { snapshot, bytes };
                }
                StoreRpcOutcome::NotMine
            }
            _ => StoreRpcOutcome::NotMine,
        }
    }

    /// Seeds the lagging-commit baseline after a restore, so the first
    /// post-recovery checkpoint commits positions at or after the restored
    /// snapshot.
    pub fn seed_prev_offsets(&mut self, offsets: Vec<(TopicPartition, Offset)>) {
        self.prev_offsets = offsets;
    }
}

/// What [`CheckpointCoordinator::on_store_rpc`] did with a store message.
#[derive(Debug)]
pub enum StoreRpcOutcome {
    /// The message did not belong to checkpoint bookkeeping.
    NotMine,
    /// A pending snapshot persist completed.
    PersistCompleted,
    /// A pending recovery completed with this snapshot (or none on a cold
    /// start); `bytes` is the encoded size read back.
    Recovered {
        /// The restored snapshot, if one was persisted.
        snapshot: Option<StateSnapshot>,
        /// Encoded size of the read value (0 on a cold start).
        bytes: u64,
    },
}

impl std::fmt::Debug for CheckpointCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointCoordinator")
            .field("mode", &self.cfg.mode)
            .field("interval", &self.cfg.interval)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> StateSnapshot {
        StateSnapshot {
            taken_at: SimTime::from_millis(1234),
            plan_state: vec![
                None,
                Some(Value::map([("a", Value::Int(3))])),
                Some(Value::List(vec![Value::Str("x".into())])),
            ],
            records_in: 17,
            records_out: 9,
            buffer: vec![
                Event::new(Value::Str("pending".into()), SimTime::from_millis(1200)).with_key("k"),
            ],
            offsets: vec![
                (TopicPartition::new("raw", 0), Offset(41)),
                (TopicPartition::new("raw", 1), Offset(7)),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_bytes() {
        let snap = sample_snapshot();
        let back = StateSnapshot::from_bytes(&snap.to_bytes()).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(snap.encoded_len(), snap.to_bytes().len());
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(StateSnapshot::from_bytes(&[1, 2, 3]).is_err());
        assert!(StateSnapshot::from_value(&Value::Int(4)).is_none());
    }

    #[test]
    fn event_value_round_trip_preserves_source() {
        let mut e = Event::new(Value::Int(5), SimTime::from_millis(10)).with_key("kk");
        e.source = 1;
        let back = event_from_value(&event_to_value(&e)).expect("round trip");
        assert_eq!(back, e);
    }

    #[test]
    fn exactly_once_commit_waits_for_barrier() {
        let store = snapshot_store();
        let mut coord = CheckpointCoordinator::new(
            CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
            Box::new(InMemoryBackend::new(store.clone())),
            false,
        );
        let mut sim = s2g_sim::Sim::new(0);
        struct Nop;
        impl s2g_sim::Process for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn on_message(
                &mut self,
                _: &mut Ctx<'_>,
                _: s2g_sim::ProcessId,
                _: Box<dyn s2g_sim::Message>,
            ) {
            }
        }
        sim.spawn(Box::new(Nop));
        // Drive the coordinator through a one-off harness process? The
        // coordinator only needs a Ctx for backend IO; the in-memory backend
        // ignores it, so exercise the logic through a scratch context by
        // capturing inside a process start hook.
        struct Harness {
            coord: Option<CheckpointCoordinator>,
            store: SnapshotStoreHandle,
        }
        impl s2g_sim::Process for Harness {
            fn name(&self) -> &str {
                "harness"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let coord = self.coord.as_mut().unwrap();
                coord.request_capture();
                assert!(coord.should_capture());
                let snap = sample_snapshot();
                coord.accept(ctx, "job", snap.clone(), 5);
                assert_eq!(self.store.borrow().get("job"), Some(&snap));
                // Barrier of 5 sent records: 4 completions are not enough.
                assert!(coord.take_ready_commit(4).is_none());
                let commit = coord.take_ready_commit(5).expect("barrier satisfied");
                assert_eq!(commit, snap.offsets);
                assert!(coord.take_ready_commit(100).is_none(), "commit is one-shot");
                assert_eq!(coord.stats().checkpoints, 1);
            }
            fn on_message(
                &mut self,
                _: &mut Ctx<'_>,
                _: s2g_sim::ProcessId,
                _: Box<dyn s2g_sim::Message>,
            ) {
            }
        }
        coord.request_capture();
        let h = Harness {
            coord: Some(coord),
            store,
        };
        let mut sim2 = s2g_sim::Sim::new(0);
        sim2.spawn(Box::new(h));
        sim2.run_to_completion();
        let _ = sim;
    }

    #[test]
    fn at_least_once_commits_lagging_offsets() {
        struct Harness;
        impl s2g_sim::Process for Harness {
            fn name(&self) -> &str {
                "harness"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let mut coord = CheckpointCoordinator::new(
                    CheckpointCfg::at_least_once(SimDuration::from_secs(1)),
                    Box::new(InMemoryBackend::new(snapshot_store())),
                    false,
                );
                let mut snap1 = sample_snapshot();
                snap1.offsets = vec![(TopicPartition::new("raw", 0), Offset(10))];
                coord.accept(ctx, "job", snap1, 0);
                // First checkpoint has no predecessor: nothing to commit.
                assert!(coord.take_ready_commit(0).is_none());
                let mut snap2 = sample_snapshot();
                snap2.offsets = vec![(TopicPartition::new("raw", 0), Offset(25))];
                coord.accept(ctx, "job", snap2, 0);
                // Second checkpoint commits the first's offsets.
                let commit = coord.take_ready_commit(0).expect("lagging commit");
                assert_eq!(commit, vec![(TopicPartition::new("raw", 0), Offset(10))]);
            }
            fn on_message(
                &mut self,
                _: &mut Ctx<'_>,
                _: s2g_sim::ProcessId,
                _: Box<dyn s2g_sim::Message>,
            ) {
            }
        }
        let mut sim = s2g_sim::Sim::new(0);
        sim.spawn(Box::new(Harness));
        sim.run_to_completion();
    }
}
