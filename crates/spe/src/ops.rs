//! Stream operators: stateless transforms, keyed state, windows, joins.
//!
//! Operators process micro-batches (Spark-Streaming style) and may keep
//! state across batches. Event-time windows emit when the operator's
//! watermark — the maximum event time seen — passes the window end.

use std::collections::{BTreeMap, BTreeSet};

use s2g_sim::{SimDuration, SimTime};

use crate::checkpoint::{decode_event, encode_event};
use crate::event::{Event, Value};

/// A micro-batch stream operator.
pub trait Operator {
    /// Operator name, for metrics and debugging.
    fn name(&self) -> &str;

    /// Processes one micro-batch, returning the output events.
    fn process(&mut self, now: SimTime, batch: Vec<Event>) -> Vec<Event>;

    /// Emits whatever state remains (e.g. incomplete windows) at the end of
    /// the stream. Default: nothing.
    fn flush(&mut self, _now: SimTime) -> Vec<Event> {
        Vec::new()
    }

    /// Captures this operator's state for a checkpoint snapshot. Stateless
    /// operators return `None` (the default).
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Restores state previously captured by
    /// [`snapshot_state`](Operator::snapshot_state). Stateless operators
    /// ignore the call (the default).
    fn restore_state(&mut self, _state: Value) {}

    /// Captures only the state that changed since the last capture (the
    /// incremental-checkpoint path) and resets the operator's dirty
    /// tracking. Operators without dirty tracking fall back to shipping
    /// their full state, which keeps delta chains correct at full-snapshot
    /// cost; stateless operators still return `None`.
    fn snapshot_delta(&mut self) -> Option<Value> {
        let full = self.snapshot_state();
        self.mark_clean();
        full
    }

    /// Applies a delta captured by [`snapshot_delta`](Operator::snapshot_delta)
    /// on top of previously restored state. The default matches the default
    /// `snapshot_delta`: the delta is a full state, so applying it is a
    /// restore.
    fn apply_delta(&mut self, delta: Value) {
        self.restore_state(delta);
    }

    /// Resets dirty tracking without capturing — called after a full (base)
    /// snapshot, which by definition covers every pending change.
    fn mark_clean(&mut self) {}

    /// True when this operator ends a pipeline stage in a parallel plan:
    /// records leaving it carry a grouping key and are shuffled (by the
    /// shared key hash) to the instances of the next stage. Only [`KeyBy`]
    /// returns true.
    fn is_stage_boundary(&self) -> bool {
        false
    }

    /// Merges state captured by [`snapshot_state`](Operator::snapshot_state)
    /// into this operator, keeping only entries whose key `keep` accepts —
    /// the rescale-restore path, where a new instance reassembles its key
    /// groups from *every* old instance's capture. Unlike
    /// [`restore_state`](Operator::restore_state) this never clears what was
    /// already merged from another capture. Operators without keyed state
    /// ignore the call.
    fn merge_restore(&mut self, _state: Value, _keep: &dyn Fn(&str) -> bool) {}

    /// Applies a delta captured by [`snapshot_delta`](Operator::snapshot_delta)
    /// on top of merged state, keeping only entries whose key `keep`
    /// accepts (the rescale-restore path for incremental chains).
    fn merge_delta(&mut self, _delta: Value, _keep: &dyn Fn(&str) -> bool) {}
}

/// Stateless 1→1 transform.
pub struct Map {
    name: String,
    f: Box<dyn FnMut(Event) -> Event>,
}

impl Map {
    /// Creates a map operator.
    pub fn new(name: impl Into<String>, f: impl FnMut(Event) -> Event + 'static) -> Self {
        Map {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for Map {
    fn name(&self) -> &str {
        &self.name
    }
    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        batch.into_iter().map(&mut self.f).collect()
    }
}

/// Stateless 1→N transform.
pub struct FlatMap {
    name: String,
    f: Box<dyn FnMut(Event) -> Vec<Event>>,
}

impl FlatMap {
    /// Creates a flat-map operator.
    pub fn new(name: impl Into<String>, f: impl FnMut(Event) -> Vec<Event> + 'static) -> Self {
        FlatMap {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for FlatMap {
    fn name(&self) -> &str {
        &self.name
    }
    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        batch.into_iter().flat_map(&mut self.f).collect()
    }
}

/// Stateless predicate filter.
pub struct Filter {
    name: String,
    f: Box<dyn FnMut(&Event) -> bool>,
}

impl Filter {
    /// Creates a filter operator.
    pub fn new(name: impl Into<String>, f: impl FnMut(&Event) -> bool + 'static) -> Self {
        Filter {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for Filter {
    fn name(&self) -> &str {
        &self.name
    }
    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        batch.into_iter().filter(|e| (self.f)(e)).collect()
    }
}

/// Assigns each event a grouping key.
pub struct KeyBy {
    name: String,
    f: Box<dyn Fn(&Event) -> String>,
}

impl KeyBy {
    /// Creates a key-by operator.
    pub fn new(name: impl Into<String>, f: impl Fn(&Event) -> String + 'static) -> Self {
        KeyBy {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for KeyBy {
    fn name(&self) -> &str {
        &self.name
    }
    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        batch
            .into_iter()
            .map(|mut e| {
                e.key = Some((self.f)(&e));
                e
            })
            .collect()
    }
    fn is_stage_boundary(&self) -> bool {
        true
    }
}

/// Keyed running state across the whole stream: for every input event the
/// user function updates per-key state and emits zero or more outputs. This
/// is the continuous-query building block (running counts, running
/// averages) used by the word-count pipeline's second job.
pub struct StatefulMap {
    name: String,
    state: BTreeMap<String, Value>,
    /// Keys whose state changed since the last checkpoint capture.
    dirty: BTreeSet<String>,
    #[allow(clippy::type_complexity)]
    f: Box<dyn FnMut(&mut Value, &Event) -> Vec<Event>>,
    init: Value,
}

impl StatefulMap {
    /// Creates a stateful map; `init` seeds each key's state.
    pub fn new(
        name: impl Into<String>,
        init: Value,
        f: impl FnMut(&mut Value, &Event) -> Vec<Event> + 'static,
    ) -> Self {
        StatefulMap {
            name: name.into(),
            state: BTreeMap::new(),
            dirty: BTreeSet::new(),
            f: Box::new(f),
            init,
        }
    }

    /// The number of keys currently held in state.
    pub fn key_count(&self) -> usize {
        self.state.len()
    }

    /// The number of keys touched since the last checkpoint capture.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

impl Operator for StatefulMap {
    fn name(&self) -> &str {
        &self.name
    }
    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        let mut out = Vec::new();
        for e in batch {
            let key = e.key.clone().unwrap_or_default();
            self.dirty.insert(key.clone());
            let slot = self.state.entry(key).or_insert_with(|| self.init.clone());
            out.extend((self.f)(slot, &e));
        }
        out
    }

    fn snapshot_state(&self) -> Option<Value> {
        Some(Value::Map(self.state.clone()))
    }

    fn restore_state(&mut self, state: Value) {
        if let Value::Map(m) = state {
            self.state = m;
        }
        self.dirty.clear();
    }

    fn snapshot_delta(&mut self) -> Option<Value> {
        let set: BTreeMap<String, Value> = self
            .dirty
            .iter()
            .filter_map(|k| self.state.get(k).map(|v| (k.clone(), v.clone())))
            .collect();
        self.dirty.clear();
        Some(Value::map([("set", Value::Map(set))]))
    }

    fn apply_delta(&mut self, delta: Value) {
        if let Some(Value::Map(set)) = delta.field("set") {
            for (k, v) in set {
                self.state.insert(k.clone(), v.clone());
            }
        }
    }

    fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    fn merge_restore(&mut self, state: Value, keep: &dyn Fn(&str) -> bool) {
        if let Value::Map(m) = state {
            for (k, v) in m {
                if keep(&k) {
                    self.state.insert(k, v);
                }
            }
        }
    }

    fn merge_delta(&mut self, delta: Value, keep: &dyn Fn(&str) -> bool) {
        if let Some(Value::Map(set)) = delta.field("set") {
            for (k, v) in set {
                if keep(k) {
                    self.state.insert(k.clone(), v.clone());
                }
            }
        }
    }
}

/// How events map to event-time windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Fixed, non-overlapping windows of the given width.
    Tumbling(SimDuration),
    /// Overlapping windows of `width`, starting every `slide`.
    Sliding {
        /// Window width.
        width: SimDuration,
        /// Start-to-start distance.
        slide: SimDuration,
    },
}

impl WindowAssigner {
    /// The windows (by start time) containing an event at `ts`.
    pub fn assign(&self, ts: SimTime) -> Vec<SimTime> {
        match *self {
            WindowAssigner::Tumbling(width) => {
                let w = width.as_nanos();
                vec![SimTime::from_nanos(ts.as_nanos() / w * w)]
            }
            WindowAssigner::Sliding { width, slide } => {
                let (w, s) = (width.as_nanos(), slide.as_nanos());
                let t = ts.as_nanos();
                let last_start = t / s * s;
                let mut starts = Vec::new();
                let mut start = last_start;
                loop {
                    if start + w > t {
                        starts.push(SimTime::from_nanos(start));
                    }
                    if start < s {
                        break;
                    }
                    start -= s;
                    if start + w <= t {
                        break;
                    }
                }
                starts.reverse();
                starts
            }
        }
    }

    /// The width of the windows produced.
    pub fn width(&self) -> SimDuration {
        match *self {
            WindowAssigner::Tumbling(w) => w,
            WindowAssigner::Sliding { width, .. } => width,
        }
    }
}

struct WindowState {
    acc: Value,
    count: u64,
    min_origin: SimTime,
}

/// Keyed event-time window aggregation.
///
/// Accumulates `fold(acc, event)` per `(window, key)` and emits one event
/// per pair once the watermark passes the window end. The output value is
/// `finish(acc, count)`; its key is the group key, its timestamp the window
/// end, and its origin the earliest contributing origin (for end-to-end
/// latency tracking).
pub struct WindowAggregate {
    name: String,
    assigner: WindowAssigner,
    init: Value,
    #[allow(clippy::type_complexity)]
    fold: Box<dyn FnMut(Value, &Event) -> Value>,
    #[allow(clippy::type_complexity)]
    finish: Box<dyn Fn(Value, u64) -> Value>,
    windows: BTreeMap<(SimTime, String), WindowState>,
    watermark: SimTime,
    /// Min watermark over the chains merged during a rescale restore. The
    /// merged stream is only as advanced as its least-advanced input: a
    /// higher chain's watermark must not fire windows restored from a
    /// slower chain before their remaining events replay.
    merged_watermark: Option<SimTime>,
    /// Windows touched since the last checkpoint capture.
    dirty: BTreeSet<(SimTime, String)>,
    /// Windows emitted (and dropped) since the last checkpoint capture.
    removed: BTreeSet<(SimTime, String)>,
}

impl WindowAggregate {
    /// Creates a window aggregation.
    pub fn new(
        name: impl Into<String>,
        assigner: WindowAssigner,
        init: Value,
        fold: impl FnMut(Value, &Event) -> Value + 'static,
        finish: impl Fn(Value, u64) -> Value + 'static,
    ) -> Self {
        WindowAggregate {
            name: name.into(),
            assigner,
            init,
            fold: Box::new(fold),
            finish: Box::new(finish),
            windows: BTreeMap::new(),
            watermark: SimTime::ZERO,
            merged_watermark: None,
            dirty: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    /// Convenience: per-key event count per window.
    pub fn count(name: impl Into<String>, assigner: WindowAssigner) -> Self {
        WindowAggregate::new(
            name,
            assigner,
            Value::Int(0),
            |acc, _| Value::Int(acc.as_int().unwrap_or(0) + 1),
            |acc, _| acc,
        )
    }

    /// Convenience: per-key sum of a float field per window.
    pub fn sum_field(
        name: impl Into<String>,
        assigner: WindowAssigner,
        field: &'static str,
    ) -> Self {
        WindowAggregate::new(
            name,
            assigner,
            Value::Float(0.0),
            move |acc, e| {
                let add = e
                    .value
                    .field(field)
                    .and_then(Value::as_float)
                    .unwrap_or(0.0);
                Value::Float(acc.as_float().unwrap_or(0.0) + add)
            },
            |acc, _| acc,
        )
    }

    /// Convenience: per-key mean of a float field per window.
    pub fn avg_field(
        name: impl Into<String>,
        assigner: WindowAssigner,
        field: &'static str,
    ) -> Self {
        WindowAggregate::new(
            name,
            assigner,
            Value::Float(0.0),
            move |acc, e| {
                let add = e
                    .value
                    .field(field)
                    .and_then(Value::as_float)
                    .unwrap_or(0.0);
                Value::Float(acc.as_float().unwrap_or(0.0) + add)
            },
            |acc, n| Value::Float(acc.as_float().unwrap_or(0.0) / n.max(1) as f64),
        )
    }

    fn emit_ready(&mut self, out: &mut Vec<Event>) {
        let width = self.assigner.width();
        let ready: Vec<(SimTime, String)> = self
            .windows
            .keys()
            .filter(|(start, _)| *start + width <= self.watermark)
            .cloned()
            .collect();
        for key in ready {
            let st = self.windows.remove(&key).expect("key just listed");
            self.dirty.remove(&key);
            self.removed.insert(key.clone());
            let (start, group) = key;
            let end = start + width;
            let value = (self.finish)(st.acc, st.count);
            out.push(Event {
                key: Some(group),
                value,
                ts: end,
                origin: st.min_origin,
                source: 0,
            });
        }
    }
}

impl Operator for WindowAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        for e in batch {
            self.watermark = self.watermark.max(e.ts);
            let key = e.key.clone().unwrap_or_default();
            for start in self.assigner.assign(e.ts) {
                let wkey = (start, key.clone());
                self.dirty.insert(wkey.clone());
                let st = self.windows.entry(wkey).or_insert_with(|| WindowState {
                    acc: self.init.clone(),
                    count: 0,
                    min_origin: e.origin,
                });
                st.acc = (self.fold)(std::mem::replace(&mut st.acc, Value::Null), &e);
                st.count += 1;
                st.min_origin = st.min_origin.min(e.origin);
            }
        }
        let mut out = Vec::new();
        self.emit_ready(&mut out);
        out
    }

    fn flush(&mut self, _now: SimTime) -> Vec<Event> {
        self.watermark = SimTime::MAX;
        let mut out = Vec::new();
        let width = self.assigner.width();
        let all: Vec<(SimTime, String)> = self.windows.keys().cloned().collect();
        for key in all {
            let st = self.windows.remove(&key).expect("listed");
            self.dirty.remove(&key);
            self.removed.insert(key.clone());
            let (start, group) = key;
            out.push(Event {
                key: Some(group),
                value: (self.finish)(st.acc, st.count),
                ts: start + width,
                origin: st.min_origin,
                source: 0,
            });
        }
        out
    }

    fn snapshot_state(&self) -> Option<Value> {
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|((start, key), st)| encode_window_entry(start, key, st))
            .collect();
        Some(Value::map([
            ("watermark", Value::Int(self.watermark.as_nanos() as i64)),
            ("windows", Value::List(windows)),
        ]))
    }

    fn restore_state(&mut self, state: Value) {
        let Some(wm) = state.field("watermark").and_then(Value::as_int) else {
            return;
        };
        let Some(Value::List(windows)) = state.field("windows") else {
            return;
        };
        self.watermark = SimTime::from_nanos(wm as u64);
        self.windows.clear();
        self.dirty.clear();
        self.removed.clear();
        for w in windows {
            let Some((key, st)) = decode_window_entry(w) else {
                continue;
            };
            self.windows.insert(key, st);
        }
    }

    fn snapshot_delta(&mut self) -> Option<Value> {
        let set: Vec<Value> = self
            .dirty
            .iter()
            .filter_map(|k| {
                self.windows
                    .get(k)
                    .map(|st| encode_window_entry(&k.0, &k.1, st))
            })
            .collect();
        let del: Vec<Value> = self
            .removed
            .iter()
            .map(|(start, key)| {
                Value::List(vec![
                    Value::Int(start.as_nanos() as i64),
                    Value::Str(key.clone()),
                ])
            })
            .collect();
        self.dirty.clear();
        self.removed.clear();
        Some(Value::map([
            ("watermark", Value::Int(self.watermark.as_nanos() as i64)),
            ("set", Value::List(set)),
            ("del", Value::List(del)),
        ]))
    }

    fn apply_delta(&mut self, delta: Value) {
        if let Some(wm) = delta.field("watermark").and_then(Value::as_int) {
            self.watermark = SimTime::from_nanos(wm as u64);
        }
        if let Some(Value::List(del)) = delta.field("del") {
            for d in del {
                let Value::List(parts) = d else { continue };
                let (Some(start), Some(Value::Str(key))) =
                    (parts.first().and_then(Value::as_int), parts.get(1))
                else {
                    continue;
                };
                self.windows
                    .remove(&(SimTime::from_nanos(start as u64), key.clone()));
            }
        }
        if let Some(Value::List(set)) = delta.field("set") {
            for w in set {
                let Some((key, st)) = decode_window_entry(w) else {
                    continue;
                };
                self.windows.insert(key, st);
            }
        }
    }

    fn mark_clean(&mut self) {
        self.dirty.clear();
        self.removed.clear();
    }

    fn merge_restore(&mut self, state: Value, keep: &dyn Fn(&str) -> bool) {
        if let Some(wm) = state.field("watermark").and_then(Value::as_int) {
            merge_chain_watermark(
                &mut self.merged_watermark,
                &mut self.watermark,
                SimTime::from_nanos(wm as u64),
            );
        }
        if let Some(Value::List(windows)) = state.field("windows") {
            for w in windows {
                if let Some((key, st)) = decode_window_entry(w) {
                    if keep(&key.1) {
                        self.windows.insert(key, st);
                    }
                }
            }
        }
    }

    fn merge_delta(&mut self, delta: Value, keep: &dyn Fn(&str) -> bool) {
        if let Some(wm) = delta.field("watermark").and_then(Value::as_int) {
            merge_chain_watermark(
                &mut self.merged_watermark,
                &mut self.watermark,
                SimTime::from_nanos(wm as u64),
            );
        }
        if let Some(Value::List(del)) = delta.field("del") {
            for d in del {
                let Value::List(parts) = d else { continue };
                let (Some(start), Some(Value::Str(key))) =
                    (parts.first().and_then(Value::as_int), parts.get(1))
                else {
                    continue;
                };
                if keep(key) {
                    self.windows
                        .remove(&(SimTime::from_nanos(start as u64), key.clone()));
                }
            }
        }
        if let Some(Value::List(set)) = delta.field("set") {
            for w in set {
                if let Some((key, st)) = decode_window_entry(w) {
                    if keep(&key.1) {
                        self.windows.insert(key, st);
                    }
                }
            }
        }
    }
}

/// Folds one restored chain's watermark into a rescale merge. The merged
/// operator is only as advanced as its *least*-advanced chain: the max
/// would fire windows restored from a slower chain before that chain's
/// remaining events replay, splitting their aggregates in two.
fn merge_chain_watermark(merged: &mut Option<SimTime>, watermark: &mut SimTime, wm: SimTime) {
    let m = merged.map_or(wm, |prev| prev.min(wm));
    *merged = Some(m);
    *watermark = m;
}

fn encode_window_entry(start: &SimTime, key: &str, st: &WindowState) -> Value {
    Value::List(vec![
        Value::Int(start.as_nanos() as i64),
        Value::Str(key.to_string()),
        st.acc.clone(),
        Value::Int(st.count as i64),
        Value::Int(st.min_origin.as_nanos() as i64),
    ])
}

fn decode_window_entry(v: &Value) -> Option<((SimTime, String), WindowState)> {
    let Value::List(parts) = v else { return None };
    let (Some(start), Some(Value::Str(key)), Some(acc), Some(count), Some(origin)) = (
        parts.first().and_then(Value::as_int),
        parts.get(1),
        parts.get(2),
        parts.get(3).and_then(Value::as_int),
        parts.get(4).and_then(Value::as_int),
    ) else {
        return None;
    };
    Some((
        (SimTime::from_nanos(start as u64), key.clone()),
        WindowState {
            acc: acc.clone(),
            count: count as u64,
            min_origin: SimTime::from_nanos(origin as u64),
        },
    ))
}

/// Windowed two-input equi-join: pairs events with equal keys from sources
/// 0 and 1 within the same event-time window, emitting `joiner(left, right)`
/// when the watermark passes the window end.
pub struct WindowJoin {
    name: String,
    assigner: WindowAssigner,
    #[allow(clippy::type_complexity)]
    joiner: Box<dyn Fn(&Event, &Event) -> Value>,
    buffers: BTreeMap<(SimTime, String), (Vec<Event>, Vec<Event>)>,
    watermark: SimTime,
    /// Min watermark over the chains merged during a rescale restore —
    /// see [`WindowAggregate::merged_watermark`].
    merged_watermark: Option<SimTime>,
    /// Windows whose buffers grew since the last checkpoint capture.
    dirty: BTreeSet<(SimTime, String)>,
    /// Windows emitted (and dropped) since the last checkpoint capture.
    removed: BTreeSet<(SimTime, String)>,
}

impl WindowJoin {
    /// Creates a windowed join.
    pub fn new(
        name: impl Into<String>,
        assigner: WindowAssigner,
        joiner: impl Fn(&Event, &Event) -> Value + 'static,
    ) -> Self {
        WindowJoin {
            name: name.into(),
            assigner,
            joiner: Box::new(joiner),
            buffers: BTreeMap::new(),
            watermark: SimTime::ZERO,
            merged_watermark: None,
            dirty: BTreeSet::new(),
            removed: BTreeSet::new(),
        }
    }

    fn emit_ready(&mut self) -> Vec<Event> {
        let width = self.assigner.width();
        let ready: Vec<(SimTime, String)> = self
            .buffers
            .keys()
            .filter(|(start, _)| *start + width <= self.watermark)
            .cloned()
            .collect();
        let mut out = Vec::new();
        for key in ready {
            let (lefts, rights) = self.buffers.remove(&key).expect("listed");
            self.dirty.remove(&key);
            self.removed.insert(key.clone());
            let (start, group) = key;
            let end = start + width;
            for l in &lefts {
                for r in &rights {
                    out.push(Event {
                        key: Some(group.clone()),
                        value: (self.joiner)(l, r),
                        ts: end,
                        origin: l.origin.min(r.origin),
                        source: 0,
                    });
                }
            }
        }
        out
    }
}

impl Operator for WindowJoin {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        for e in batch {
            self.watermark = self.watermark.max(e.ts);
            let key = e.key.clone().unwrap_or_default();
            for start in self.assigner.assign(e.ts) {
                let wkey = (start, key.clone());
                self.dirty.insert(wkey.clone());
                let slot = self.buffers.entry(wkey).or_default();
                if e.source == 0 {
                    slot.0.push(e.clone());
                } else {
                    slot.1.push(e.clone());
                }
            }
        }
        self.emit_ready()
    }

    fn flush(&mut self, _now: SimTime) -> Vec<Event> {
        self.watermark = SimTime::MAX;
        self.emit_ready()
    }

    fn snapshot_state(&self) -> Option<Value> {
        let buffers: Vec<Value> = self
            .buffers
            .iter()
            .map(|((start, key), bufs)| encode_join_entry(start, key, bufs))
            .collect();
        Some(Value::map([
            ("watermark", Value::Int(self.watermark.as_nanos() as i64)),
            ("buffers", Value::List(buffers)),
        ]))
    }

    fn restore_state(&mut self, state: Value) {
        let Some(wm) = state.field("watermark").and_then(Value::as_int) else {
            return;
        };
        let Some(Value::List(buffers)) = state.field("buffers") else {
            return;
        };
        self.watermark = SimTime::from_nanos(wm as u64);
        self.buffers.clear();
        self.dirty.clear();
        self.removed.clear();
        for b in buffers {
            let Some((key, bufs)) = decode_join_entry(b) else {
                continue;
            };
            self.buffers.insert(key, bufs);
        }
    }

    fn snapshot_delta(&mut self) -> Option<Value> {
        // Per-window granularity: a dirty window ships its whole buffer
        // pair, which is still tiny next to the full operator state.
        let set: Vec<Value> = self
            .dirty
            .iter()
            .filter_map(|k| {
                self.buffers
                    .get(k)
                    .map(|bufs| encode_join_entry(&k.0, &k.1, bufs))
            })
            .collect();
        let del: Vec<Value> = self
            .removed
            .iter()
            .map(|(start, key)| {
                Value::List(vec![
                    Value::Int(start.as_nanos() as i64),
                    Value::Str(key.clone()),
                ])
            })
            .collect();
        self.dirty.clear();
        self.removed.clear();
        Some(Value::map([
            ("watermark", Value::Int(self.watermark.as_nanos() as i64)),
            ("set", Value::List(set)),
            ("del", Value::List(del)),
        ]))
    }

    fn apply_delta(&mut self, delta: Value) {
        if let Some(wm) = delta.field("watermark").and_then(Value::as_int) {
            self.watermark = SimTime::from_nanos(wm as u64);
        }
        if let Some(Value::List(del)) = delta.field("del") {
            for d in del {
                let Value::List(parts) = d else { continue };
                let (Some(start), Some(Value::Str(key))) =
                    (parts.first().and_then(Value::as_int), parts.get(1))
                else {
                    continue;
                };
                self.buffers
                    .remove(&(SimTime::from_nanos(start as u64), key.clone()));
            }
        }
        if let Some(Value::List(set)) = delta.field("set") {
            for b in set {
                let Some((key, bufs)) = decode_join_entry(b) else {
                    continue;
                };
                self.buffers.insert(key, bufs);
            }
        }
    }

    fn mark_clean(&mut self) {
        self.dirty.clear();
        self.removed.clear();
    }

    fn merge_restore(&mut self, state: Value, keep: &dyn Fn(&str) -> bool) {
        if let Some(wm) = state.field("watermark").and_then(Value::as_int) {
            merge_chain_watermark(
                &mut self.merged_watermark,
                &mut self.watermark,
                SimTime::from_nanos(wm as u64),
            );
        }
        if let Some(Value::List(buffers)) = state.field("buffers") {
            for b in buffers {
                if let Some((key, bufs)) = decode_join_entry(b) {
                    if keep(&key.1) {
                        self.buffers.insert(key, bufs);
                    }
                }
            }
        }
    }

    fn merge_delta(&mut self, delta: Value, keep: &dyn Fn(&str) -> bool) {
        if let Some(wm) = delta.field("watermark").and_then(Value::as_int) {
            merge_chain_watermark(
                &mut self.merged_watermark,
                &mut self.watermark,
                SimTime::from_nanos(wm as u64),
            );
        }
        if let Some(Value::List(del)) = delta.field("del") {
            for d in del {
                let Value::List(parts) = d else { continue };
                let (Some(start), Some(Value::Str(key))) =
                    (parts.first().and_then(Value::as_int), parts.get(1))
                else {
                    continue;
                };
                if keep(key) {
                    self.buffers
                        .remove(&(SimTime::from_nanos(start as u64), key.clone()));
                }
            }
        }
        if let Some(Value::List(set)) = delta.field("set") {
            for b in set {
                if let Some((key, bufs)) = decode_join_entry(b) {
                    if keep(&key.1) {
                        self.buffers.insert(key, bufs);
                    }
                }
            }
        }
    }
}

#[allow(clippy::type_complexity)]
fn encode_join_entry(start: &SimTime, key: &str, bufs: &(Vec<Event>, Vec<Event>)) -> Value {
    Value::List(vec![
        Value::Int(start.as_nanos() as i64),
        Value::Str(key.to_string()),
        Value::List(bufs.0.iter().map(encode_event).collect()),
        Value::List(bufs.1.iter().map(encode_event).collect()),
    ])
}

#[allow(clippy::type_complexity)]
fn decode_join_entry(v: &Value) -> Option<((SimTime, String), (Vec<Event>, Vec<Event>))> {
    let Value::List(parts) = v else { return None };
    let (Some(start), Some(Value::Str(key)), Some(Value::List(ls)), Some(Value::List(rs))) = (
        parts.first().and_then(Value::as_int),
        parts.get(1),
        parts.get(2),
        parts.get(3),
    ) else {
        return None;
    };
    let lefts: Vec<Event> = ls.iter().filter_map(decode_event).collect();
    let rights: Vec<Event> = rs.iter().filter_map(decode_event).collect();
    Some((
        (SimTime::from_nanos(start as u64), key.clone()),
        (lefts, rights),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(v: i64, ts_ms: u64) -> Event {
        Event::new(Value::Int(v), SimTime::from_millis(ts_ms))
    }

    #[test]
    fn map_transforms() {
        let mut op = Map::new("double", |mut e| {
            e.value = Value::Int(e.value.as_int().unwrap() * 2);
            e
        });
        let out = op.process(SimTime::ZERO, vec![ev(1, 0), ev(2, 0)]);
        assert_eq!(out[0].value, Value::Int(2));
        assert_eq!(out[1].value, Value::Int(4));
    }

    #[test]
    fn flat_map_fans_out() {
        let mut op = FlatMap::new("dup", |e| vec![e.clone(), e]);
        let out = op.process(SimTime::ZERO, vec![ev(1, 0)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn filter_drops() {
        let mut op = Filter::new("even", |e| e.value.as_int().unwrap() % 2 == 0);
        let out = op.process(SimTime::ZERO, vec![ev(1, 0), ev(2, 0), ev(4, 0)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn key_by_assigns_keys() {
        let mut op = KeyBy::new("mod2", |e| (e.value.as_int().unwrap() % 2).to_string());
        let out = op.process(SimTime::ZERO, vec![ev(3, 0), ev(4, 0)]);
        assert_eq!(out[0].key.as_deref(), Some("1"));
        assert_eq!(out[1].key.as_deref(), Some("0"));
    }

    #[test]
    fn stateful_map_keeps_running_count() {
        let mut op = StatefulMap::new("count", Value::Int(0), |state, e| {
            let n = state.as_int().unwrap() + 1;
            *state = Value::Int(n);
            vec![Event {
                value: Value::Int(n),
                ..e.clone()
            }]
        });
        let batch: Vec<Event> = vec![
            ev(1, 0).with_key("a"),
            ev(1, 1).with_key("a"),
            ev(1, 2).with_key("b"),
        ];
        let out = op.process(SimTime::ZERO, batch);
        assert_eq!(out[0].value, Value::Int(1));
        assert_eq!(out[1].value, Value::Int(2));
        assert_eq!(out[2].value, Value::Int(1));
        assert_eq!(op.key_count(), 2);
    }

    #[test]
    fn tumbling_assignment() {
        let a = WindowAssigner::Tumbling(SimDuration::from_secs(10));
        assert_eq!(a.assign(SimTime::from_secs(3)), vec![SimTime::ZERO]);
        assert_eq!(
            a.assign(SimTime::from_secs(10)),
            vec![SimTime::from_secs(10)]
        );
        assert_eq!(
            a.assign(SimTime::from_secs(25)),
            vec![SimTime::from_secs(20)]
        );
    }

    #[test]
    fn sliding_assignment_overlaps() {
        let a = WindowAssigner::Sliding {
            width: SimDuration::from_secs(10),
            slide: SimDuration::from_secs(5),
        };
        // t=12s belongs to windows starting at 5s and 10s.
        let starts = a.assign(SimTime::from_secs(12));
        assert_eq!(starts, vec![SimTime::from_secs(5), SimTime::from_secs(10)]);
        // t=3s belongs to windows starting at 0s only (no negative starts).
        assert_eq!(a.assign(SimTime::from_secs(3)), vec![SimTime::ZERO]);
    }

    #[test]
    fn window_count_emits_on_watermark() {
        let mut op =
            WindowAggregate::count("wc", WindowAssigner::Tumbling(SimDuration::from_secs(10)));
        // Three events in [0,10), none emitted yet (watermark at 9s).
        let out = op.process(
            SimTime::ZERO,
            vec![
                ev(1, 1_000).with_key("k"),
                ev(1, 5_000).with_key("k"),
                ev(1, 9_000).with_key("k"),
            ],
        );
        assert!(out.is_empty());
        // An event at 11s pushes the watermark past the first window.
        let out = op.process(SimTime::ZERO, vec![ev(1, 11_000).with_key("k")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::Int(3));
        assert_eq!(out[0].ts, SimTime::from_secs(10));
        // Flush drains the rest.
        let out = op.flush(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::Int(1));
    }

    #[test]
    fn window_origin_is_earliest_contributor() {
        let mut op =
            WindowAggregate::count("wc", WindowAssigner::Tumbling(SimDuration::from_secs(10)));
        let e1 = ev(1, 4_000)
            .with_key("k")
            .with_origin(SimTime::from_millis(100));
        let e2 = ev(1, 2_000)
            .with_key("k")
            .with_origin(SimTime::from_millis(900));
        op.process(SimTime::ZERO, vec![e1, e2]);
        let out = op.flush(SimTime::ZERO);
        assert_eq!(out[0].origin, SimTime::from_millis(100));
    }

    #[test]
    fn avg_field_divides_by_count() {
        let mut op = WindowAggregate::avg_field(
            "avg",
            WindowAssigner::Tumbling(SimDuration::from_secs(10)),
            "x",
        );
        let mk = |x: f64, ms: u64| {
            Event::new(
                Value::map([("x", Value::Float(x))]),
                SimTime::from_millis(ms),
            )
            .with_key("k")
        };
        op.process(SimTime::ZERO, vec![mk(1.0, 100), mk(3.0, 200)]);
        let out = op.flush(SimTime::ZERO);
        assert_eq!(out[0].value, Value::Float(2.0));
    }

    #[test]
    fn window_join_pairs_by_key() {
        let mut op = WindowJoin::new(
            "j",
            WindowAssigner::Tumbling(SimDuration::from_secs(10)),
            |l, r| Value::List(vec![l.value.clone(), r.value.clone()]),
        );
        let mut left = ev(1, 1_000).with_key("k");
        left.source = 0;
        let mut right = ev(2, 2_000).with_key("k");
        right.source = 1;
        let mut other = ev(3, 3_000).with_key("other");
        other.source = 1;
        op.process(SimTime::ZERO, vec![left, right, other]);
        let out = op.flush(SimTime::ZERO);
        assert_eq!(out.len(), 1, "only matching keys join");
        assert_eq!(
            out[0].value,
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
    }

    #[test]
    fn sum_field_accumulates() {
        let mut op = WindowAggregate::sum_field(
            "sum",
            WindowAssigner::Tumbling(SimDuration::from_secs(1)),
            "x",
        );
        let mk = |x: f64, ms: u64| {
            Event::new(
                Value::map([("x", Value::Float(x))]),
                SimTime::from_millis(ms),
            )
            .with_key("k")
        };
        op.process(SimTime::ZERO, vec![mk(1.5, 100), mk(2.5, 200)]);
        let out = op.flush(SimTime::ZERO);
        assert_eq!(out[0].value, Value::Float(4.0));
    }
}
