//! The SPE data model: dynamically typed events with provenance timestamps.
//!
//! Events flow between pipeline stages through broker topics, so they carry
//! a compact binary encoding. Every event keeps an `origin` timestamp — the
//! produce time of the source record it derives from — which is how the
//! monitoring layer measures end-to-end latency per data unit (the paper's
//! Fig. 5: "end-to-end latency for processing a data unit (i.e., a text
//! file) throughout the word count pipeline").

use std::collections::BTreeMap;
use std::fmt;

use s2g_sim::SimTime;

/// A dynamically typed value, the unit of data in stream jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map (sorted, deterministic iteration).
    Map(BTreeMap<String, Value>),
}

/// A `u32` codec length prefix; panics loudly if the payload could not be
/// round-tripped instead of silently truncating it.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).expect("length exceeds u32 codec prefix")
}

impl Value {
    /// Builds a map value from key/value pairs.
    pub fn map<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Fetches a field from a map value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.get(name),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Encodes this value in the compact binary format (the same encoding
    /// events use on the wire; checkpoints use it for state snapshots).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Decodes a value previously produced by [`encode`](Value::encode).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn decode(buf: &[u8]) -> Result<Value, CodecError> {
        let mut pos = 0;
        Value::decode_from(buf, &mut pos)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => {
                out.push(1);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(&len_u32(s.len()).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::List(l) => {
                out.push(5);
                out.extend_from_slice(&len_u32(l.len()).to_le_bytes());
                for v in l {
                    v.encode_into(out);
                }
            }
            Value::Map(m) => {
                out.push(6);
                out.extend_from_slice(&len_u32(m.len()).to_le_bytes());
                for (k, v) in m {
                    out.extend_from_slice(&len_u32(k.len()).to_le_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.encode_into(out);
                }
            }
        }
    }

    /// Walks one encoded value without building it: the same bytes, tags,
    /// and UTF-8 checks as [`decode_from`](Value::decode_from), but zero
    /// allocation. Succeeds exactly when `decode_from` would.
    fn validate_from(buf: &[u8], pos: &mut usize) -> Result<(), CodecError> {
        let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        match tag {
            0 => Ok(()),
            1 => {
                buf.get(*pos).ok_or(CodecError::Truncated)?;
                *pos += 1;
                Ok(())
            }
            2 | 3 => {
                read_n::<8>(buf, pos)?;
                Ok(())
            }
            4 => validate_str(buf, pos),
            5 => {
                let n = read_len(buf, pos)?;
                for _ in 0..n {
                    Value::validate_from(buf, pos)?;
                }
                Ok(())
            }
            6 => {
                let n = read_len(buf, pos)?;
                for _ in 0..n {
                    validate_str(buf, pos)?;
                    Value::validate_from(buf, pos)?;
                }
                Ok(())
            }
            t => Err(CodecError::BadTag(t)),
        }
    }

    fn decode_from(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
        let tag = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        match tag {
            0 => Ok(Value::Null),
            1 => {
                let b = *buf.get(*pos).ok_or(CodecError::Truncated)?;
                *pos += 1;
                Ok(Value::Bool(b != 0))
            }
            2 => {
                let bytes = read_n::<8>(buf, pos)?;
                Ok(Value::Int(i64::from_le_bytes(bytes)))
            }
            3 => {
                let bytes = read_n::<8>(buf, pos)?;
                Ok(Value::Float(f64::from_le_bytes(bytes)))
            }
            4 => {
                let s = read_str(buf, pos)?;
                Ok(Value::Str(s))
            }
            5 => {
                let n = read_len(buf, pos)?;
                let mut l = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    l.push(Value::decode_from(buf, pos)?);
                }
                Ok(Value::List(l))
            }
            6 => {
                let n = read_len(buf, pos)?;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = read_str(buf, pos)?;
                    let v = Value::decode_from(buf, pos)?;
                    m.insert(k, v);
                }
                Ok(Value::Map(m))
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-value.
    Truncated,
    /// Unknown type tag.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "unexpected end of encoded event"),
            CodecError::BadTag(t) => write!(f, "unknown value tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn read_n<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], CodecError> {
    let end = *pos + N;
    let slice = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    Ok(slice.try_into().expect("length checked"))
}

fn read_len(buf: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let b = read_n::<4>(buf, pos)?;
    Ok(u32::from_le_bytes(b) as usize)
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let n = read_len(buf, pos)?;
    let end = *pos + n;
    let slice = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    String::from_utf8(slice.to_vec()).map_err(|_| CodecError::Truncated)
}

/// Skips one length-prefixed string, applying the same UTF-8 validation as
/// [`read_str`] without allocating.
fn validate_str(buf: &[u8], pos: &mut usize) -> Result<(), CodecError> {
    let n = read_len(buf, pos)?;
    let end = *pos + n;
    let slice = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    std::str::from_utf8(slice)
        .map(|_| ())
        .map_err(|_| CodecError::Truncated)
}

/// One event flowing through a stream job.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Grouping key (set by `KeyBy`).
    pub key: Option<String>,
    /// The payload.
    pub value: Value,
    /// Event time (source record's produce time).
    pub ts: SimTime,
    /// Provenance: produce time of the original source record this event
    /// derives from (minimum across merged inputs for aggregates).
    pub origin: SimTime,
    /// Which job input this event came from (0 = first source topic), used
    /// by joins.
    pub source: u8,
}

impl Event {
    /// An event with `value` at time `ts`; origin defaults to `ts`.
    pub fn new(value: Value, ts: SimTime) -> Self {
        Event {
            key: None,
            value,
            ts,
            origin: ts,
            source: 0,
        }
    }

    /// Builder: sets the key.
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Builder: sets the origin timestamp.
    pub fn with_origin(mut self, origin: SimTime) -> Self {
        self.origin = origin;
        self
    }

    /// Encodes to the compact wire format (magic byte `0xE7` first, so raw
    /// payloads are distinguishable from encoded events).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(0xE7);
        // Flag byte: bit 0 = key present, bits 1..7 = source index. The
        // source must survive the wire so a windowed join downstream of a
        // keyed shuffle still knows which input each event came from.
        let flag = u8::from(self.key.is_some()) | (self.source << 1);
        match &self.key {
            Some(k) => {
                out.push(flag);
                out.extend_from_slice(&len_u32(k.len()).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
            }
            None => out.push(flag),
        }
        out.extend_from_slice(&self.ts.as_nanos().to_le_bytes());
        out.extend_from_slice(&self.origin.as_nanos().to_le_bytes());
        self.value.encode_into(&mut out);
        out
    }

    /// Decodes from the compact wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(buf: &[u8]) -> Result<Event, CodecError> {
        let mut pos = 0;
        let magic = *buf.first().ok_or(CodecError::Truncated)?;
        if magic != 0xE7 {
            return Err(CodecError::BadTag(magic));
        }
        pos += 1;
        let flag = *buf.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        let key = if flag & 1 == 1 {
            Some(read_str(buf, &mut pos)?)
        } else {
            None
        };
        let ts = SimTime::from_nanos(u64::from_le_bytes(read_n::<8>(buf, &mut pos)?));
        let origin = SimTime::from_nanos(u64::from_le_bytes(read_n::<8>(buf, &mut pos)?));
        let value = Value::decode_from(buf, &mut pos)?;
        Ok(Event {
            key,
            value,
            ts,
            origin,
            source: flag >> 1,
        })
    }

    /// Reads just the `origin` timestamp out of an encoded event without
    /// allocating anything — the monitor's per-record hot path. Performs
    /// the full validating walk [`from_bytes`](Event::from_bytes) does
    /// (magic, key and string UTF-8, value tags), so it returns `Some`
    /// exactly when `from_bytes` would return `Ok`.
    pub fn peek_origin(buf: &[u8]) -> Option<SimTime> {
        let mut pos = 0;
        if *buf.first()? != 0xE7 {
            return None;
        }
        pos += 1;
        let flag = *buf.get(pos)?;
        pos += 1;
        if flag & 1 == 1 {
            validate_str(buf, &mut pos).ok()?;
        }
        read_n::<8>(buf, &mut pos).ok()?; // ts
        let origin = SimTime::from_nanos(u64::from_le_bytes(read_n::<8>(buf, &mut pos).ok()?));
        Value::validate_from(buf, &mut pos).ok()?;
        Some(origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let e = Event::new(v.clone(), SimTime::from_millis(123))
            .with_key("k1")
            .with_origin(SimTime::from_millis(100));
        let bytes = e.to_bytes();
        let back = Event::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.key.as_deref(), Some("k1"));
        assert_eq!(back.ts, SimTime::from_millis(123));
        assert_eq!(back.origin, SimTime::from_millis(100));
        assert_eq!(back.value, v);
    }

    #[test]
    fn round_trips_all_value_kinds() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Int(-42));
        round_trip(Value::Float(3.25));
        round_trip(Value::Str("hello world".into()));
        round_trip(Value::List(vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Null,
        ]));
        round_trip(Value::map([
            ("a", Value::Int(1)),
            ("b", Value::List(vec![Value::Float(0.5)])),
            ("c", Value::map([("nested", Value::Bool(false))])),
        ]));
    }

    #[test]
    fn keyless_event_round_trips() {
        let e = Event::new(Value::Int(7), SimTime::from_secs(1));
        let back = Event::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back.key, None);
        assert_eq!(back.value, Value::Int(7));
    }

    #[test]
    fn truncated_input_errors() {
        let e = Event::new(Value::Str("abcdef".into()), SimTime::ZERO);
        let bytes = e.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Event::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_tag_errors() {
        let mut bytes = Event::new(Value::Null, SimTime::ZERO).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 99;
        assert_eq!(Event::from_bytes(&bytes), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn peek_origin_mirrors_from_bytes() {
        let e = Event::new(
            Value::map([
                ("a", Value::Int(1)),
                (
                    "b",
                    Value::List(vec![Value::Str("deep".into()), Value::Null]),
                ),
            ]),
            SimTime::from_millis(123),
        )
        .with_key("k1")
        .with_origin(SimTime::from_millis(77));
        let bytes = e.to_bytes();
        assert_eq!(Event::peek_origin(&bytes), Some(SimTime::from_millis(77)));
        // Agreement on every truncation: peek succeeds iff decode does.
        for cut in 0..bytes.len() {
            assert_eq!(
                Event::peek_origin(&bytes[..cut]).is_some(),
                Event::from_bytes(&bytes[..cut]).is_ok(),
                "cut at {cut}"
            );
        }
        // And on malformed tags / wrong magic.
        let mut bad_tag = bytes.clone();
        let last = bad_tag.len() - 1;
        bad_tag[last] = 99;
        assert_eq!(Event::peek_origin(&bad_tag), None);
        let mut bad_magic = bytes;
        bad_magic[0] = 0;
        assert_eq!(Event::peek_origin(&bad_magic), None);
        assert_eq!(Event::peek_origin(b"raw payload"), None);
    }

    #[test]
    fn value_accessors() {
        let v = Value::map([
            ("n", Value::Int(3)),
            ("f", Value::Float(1.5)),
            ("s", Value::Str("x".into())),
        ]);
        assert_eq!(v.field("n").unwrap().as_int(), Some(3));
        assert_eq!(v.field("n").unwrap().as_float(), Some(3.0));
        assert_eq!(v.field("f").unwrap().as_float(), Some(1.5));
        assert_eq!(v.field("s").unwrap().as_str(), Some("x"));
        assert!(v.field("missing").is_none());
        assert!(Value::Null.field("x").is_none());
    }

    #[test]
    fn display_is_readable() {
        let v = Value::map([("k", Value::List(vec![Value::Int(1), Value::Int(2)]))]);
        assert_eq!(v.to_string(), "{k: [1, 2]}");
    }
}
