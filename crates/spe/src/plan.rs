//! Logical plans: chains of operators with builder sugar.

use s2g_sim::{SimDuration, SimTime};

use crate::event::{Event, Value};
use crate::ops::{
    Filter, FlatMap, KeyBy, Map, Operator, StatefulMap, WindowAggregate, WindowAssigner, WindowJoin,
};

/// An ordered chain of operators — one stream job's logical plan.
///
/// # Examples
///
/// ```
/// use s2g_spe::{Event, Plan, Value};
/// use s2g_sim::SimTime;
///
/// let mut plan = Plan::new()
///     .flat_map("split", |e| {
///         e.value
///             .as_str()
///             .unwrap_or("")
///             .split_whitespace()
///             .map(|w| Event { value: Value::Str(w.to_string()), ..e.clone() })
///             .collect()
///     })
///     .filter("nonempty", |e| e.value.as_str().is_some_and(|s| !s.is_empty()));
/// let out = plan.run_batch(
///     SimTime::ZERO,
///     vec![Event::new(Value::Str("hello stream world".into()), SimTime::ZERO)],
/// );
/// assert_eq!(out.len(), 3);
/// ```
#[derive(Default)]
pub struct Plan {
    ops: Vec<Box<dyn Operator>>,
    records_in: u64,
    records_out: u64,
}

impl Plan {
    /// An empty (identity) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends any operator.
    pub fn then(mut self, op: impl Operator + 'static) -> Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Appends a [`Map`].
    pub fn map(self, name: &str, f: impl FnMut(Event) -> Event + 'static) -> Self {
        self.then(Map::new(name, f))
    }

    /// Appends a [`FlatMap`].
    pub fn flat_map(self, name: &str, f: impl FnMut(Event) -> Vec<Event> + 'static) -> Self {
        self.then(FlatMap::new(name, f))
    }

    /// Appends a [`Filter`].
    pub fn filter(self, name: &str, f: impl FnMut(&Event) -> bool + 'static) -> Self {
        self.then(Filter::new(name, f))
    }

    /// Appends a [`KeyBy`].
    pub fn key_by(self, name: &str, f: impl Fn(&Event) -> String + 'static) -> Self {
        self.then(KeyBy::new(name, f))
    }

    /// Appends a [`StatefulMap`].
    pub fn stateful(
        self,
        name: &str,
        init: Value,
        f: impl FnMut(&mut Value, &Event) -> Vec<Event> + 'static,
    ) -> Self {
        self.then(StatefulMap::new(name, init, f))
    }

    /// Appends a tumbling-window count.
    pub fn window_count(self, name: &str, width: SimDuration) -> Self {
        self.then(WindowAggregate::count(
            name,
            WindowAssigner::Tumbling(width),
        ))
    }

    /// Appends a custom window aggregation.
    pub fn window(self, agg: WindowAggregate) -> Self {
        self.then(agg)
    }

    /// Appends a windowed join.
    pub fn join(self, join: WindowJoin) -> Self {
        self.then(join)
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for the identity plan.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// `(records_in, records_out)` totals across all batches.
    pub fn record_counts(&self) -> (u64, u64) {
        (self.records_in, self.records_out)
    }

    /// Runs one micro-batch through the chain.
    pub fn run_batch(&mut self, now: SimTime, batch: Vec<Event>) -> Vec<Event> {
        self.records_in += batch.len() as u64;
        let mut events = batch;
        for op in &mut self.ops {
            events = op.process(now, events);
        }
        self.records_out += events.len() as u64;
        events
    }

    /// Flushes residual operator state (incomplete windows) through the
    /// remainder of the chain.
    pub fn flush(&mut self, now: SimTime) -> Vec<Event> {
        let mut carried: Vec<Event> = Vec::new();
        for i in 0..self.ops.len() {
            let mut events = self.ops[i].process(now, std::mem::take(&mut carried));
            events.extend(self.ops[i].flush(now));
            carried = events;
        }
        self.records_out += carried.len() as u64;
        carried
    }

    /// Operator names, in order.
    pub fn op_names(&self) -> Vec<&str> {
        self.ops.iter().map(|o| o.name()).collect()
    }

    /// How many pipeline stages this plan splits into at its [`KeyBy`]
    /// boundaries: each `KeyBy` *ends* a stage (the key it assigns is what
    /// the shuffle routes on), and whatever follows starts the next one. A
    /// trailing `KeyBy` with nothing after it does not open an empty stage.
    pub fn stage_count(&self) -> usize {
        let mut stages = 1;
        for (i, op) in self.ops.iter().enumerate() {
            if op.is_stage_boundary() && i + 1 < self.ops.len() {
                stages += 1;
            }
        }
        stages
    }

    /// Splits the plan into its stages (see
    /// [`stage_count`](Plan::stage_count)). Each returned plan owns the
    /// operators of one stage; record counters stay with stage 0.
    pub fn into_stages(mut self) -> Vec<Plan> {
        let mut stages: Vec<Plan> = Vec::new();
        let mut current: Vec<Box<dyn Operator>> = Vec::new();
        let n = self.ops.len();
        for (i, op) in self.ops.drain(..).enumerate() {
            let boundary = op.is_stage_boundary();
            current.push(op);
            if boundary && i + 1 < n {
                stages.push(Plan {
                    ops: std::mem::take(&mut current),
                    records_in: 0,
                    records_out: 0,
                });
            }
        }
        stages.push(Plan {
            ops: current,
            records_in: self.records_in,
            records_out: self.records_out,
        });
        stages
    }

    /// Overwrites the record counters (the rescale-restore path, where the
    /// counters come from the restored chain rather than live processing).
    pub fn set_record_counts(&mut self, records_in: u64, records_out: u64) {
        self.records_in = records_in;
        self.records_out = records_out;
    }

    /// Merges operator state captured by
    /// [`snapshot_state`](Plan::snapshot_state), keeping only entries whose
    /// key `keep` accepts — the rescale-restore path reassembling this
    /// instance's key groups from every old instance's capture.
    pub fn merge_restore_state(&mut self, states: Vec<Option<Value>>, keep: &dyn Fn(&str) -> bool) {
        for (op, state) in self.ops.iter_mut().zip(states) {
            if let Some(s) = state {
                op.merge_restore(s, keep);
            }
        }
    }

    /// Applies a delta captured by [`snapshot_delta`](Plan::snapshot_delta)
    /// on top of merged state, keeping only entries whose key `keep`
    /// accepts.
    pub fn merge_apply_delta(&mut self, deltas: Vec<Option<Value>>, keep: &dyn Fn(&str) -> bool) {
        for (op, delta) in self.ops.iter_mut().zip(deltas) {
            if let Some(d) = delta {
                op.merge_delta(d, keep);
            }
        }
    }

    /// Captures every operator's state, aligned with the chain, plus the
    /// record counters — the plan half of a checkpoint snapshot.
    pub fn snapshot_state(&self) -> (Vec<Option<Value>>, u64, u64) {
        let states = self.ops.iter().map(|o| o.snapshot_state()).collect();
        (states, self.records_in, self.records_out)
    }

    /// Restores operator state captured by
    /// [`snapshot_state`](Plan::snapshot_state). States beyond the chain
    /// length are ignored; `None` entries leave the operator untouched.
    pub fn restore_state(&mut self, states: Vec<Option<Value>>, records_in: u64, records_out: u64) {
        for (op, state) in self.ops.iter_mut().zip(states) {
            if let Some(s) = state {
                op.restore_state(s);
            }
        }
        self.records_in = records_in;
        self.records_out = records_out;
    }

    /// Captures only the per-operator state that changed since the last
    /// capture and resets every operator's dirty tracking — the plan half
    /// of an incremental checkpoint delta.
    pub fn snapshot_delta(&mut self) -> Vec<Option<Value>> {
        self.ops.iter_mut().map(|o| o.snapshot_delta()).collect()
    }

    /// Applies a delta captured by [`snapshot_delta`](Plan::snapshot_delta)
    /// on top of previously restored state, advancing the record counters
    /// to the delta's capture point.
    pub fn apply_delta(&mut self, deltas: Vec<Option<Value>>, records_in: u64, records_out: u64) {
        for (op, delta) in self.ops.iter_mut().zip(deltas) {
            if let Some(d) = delta {
                op.apply_delta(d);
            }
        }
        self.records_in = records_in;
        self.records_out = records_out;
    }

    /// Resets every operator's dirty tracking without capturing — called
    /// after a full (base) snapshot, which covers all pending changes.
    pub fn mark_clean(&mut self) {
        for op in &mut self.ops {
            op.mark_clean();
        }
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("ops", &self.op_names())
            .field("records_in", &self.records_in)
            .field("records_out", &self.records_out)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_plan_runs_in_order() {
        let mut plan = Plan::new()
            .map("inc", |mut e| {
                e.value = Value::Int(e.value.as_int().unwrap() + 1);
                e
            })
            .filter("gt1", |e| e.value.as_int().unwrap() > 1);
        let out = plan.run_batch(
            SimTime::ZERO,
            vec![
                Event::new(Value::Int(0), SimTime::ZERO),
                Event::new(Value::Int(5), SimTime::ZERO),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::Int(6));
        assert_eq!(plan.record_counts(), (2, 1));
        assert_eq!(plan.op_names(), vec!["inc", "gt1"]);
    }

    #[test]
    fn flush_cascades_through_downstream_ops() {
        // Window count → map: flushed window results must pass the map.
        let mut plan = Plan::new()
            .key_by("k", |_| "all".into())
            .window_count("w", SimDuration::from_secs(10))
            .map("tag", |mut e| {
                e.value = Value::List(vec![e.value.clone(), Value::Str("tagged".into())]);
                e
            });
        plan.run_batch(
            SimTime::ZERO,
            vec![Event::new(Value::Int(1), SimTime::from_secs(1))],
        );
        let out = plan.flush(SimTime::ZERO);
        assert_eq!(out.len(), 1);
        match &out[0].value {
            Value::List(l) => assert_eq!(l[1], Value::Str("tagged".into())),
            other => panic!("map did not run on flushed events: {other:?}"),
        }
    }

    #[test]
    fn empty_plan_is_identity() {
        let mut plan = Plan::new();
        assert!(plan.is_empty());
        let out = plan.run_batch(
            SimTime::ZERO,
            vec![Event::new(Value::Int(1), SimTime::ZERO)],
        );
        assert_eq!(out.len(), 1);
    }
}
