//! Deterministic parallel sweep executor.
//!
//! Every figure sweep is a map over independent `(config, seed)` points:
//! each point builds its own `Sim` from scratch, so points share no state
//! and can run on any thread. [`parallel_map`] fans the points across a
//! `std::thread::scope` worker pool and merges results **by input index**,
//! so the output vector — and therefore every CSV and chart derived from
//! it — is byte-identical to the sequential runner, regardless of thread
//! count or completion order.
//!
//! The pool size comes from [`sweep_threads`]: the `S2G_BENCH_THREADS`
//! environment variable when set, otherwise the machine's available
//! parallelism. `S2G_BENCH_THREADS=1` forces the plain sequential path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count for sweep fan-out: `S2G_BENCH_THREADS` if set to a positive
/// integer, else `std::thread::available_parallelism()`.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("S2G_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on [`sweep_threads`] workers, returning results in
/// input order. Falls back to a plain sequential map when one worker (or
/// one item) makes fan-out pointless. A panic in any worker is re-raised on
/// the calling thread once the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(sweep_threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count.
pub fn parallel_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 16] {
            let got = parallel_map_with(threads, &items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map_with(8, &none, |&x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..32).collect();
        parallel_map_with(4, &items, |&x| {
            if x == 13 {
                panic!("worker boom");
            }
            x
        });
    }
}
