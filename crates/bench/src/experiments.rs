//! The paper's evaluation experiments, one function per table/figure.

use std::collections::BTreeMap;

use s2g_apps::{traffic_monitor, video_analytics, word_count};
use s2g_broker::{CoordinationMode, ProducerConfig, TopicSpec};
use s2g_core::{median, DeliveryMatrix, Scenario, SourceSpec};
use s2g_net::{FaultPlan, LinkSpec, NetworkConfig, TxSeries};
use s2g_proto::AckMode;
use s2g_sim::{SimDuration, SimTime};

/// Experiment scale: `Full` matches the paper's parameters; `Quick` is a
/// reduced version for debug-build tests and Criterion iterations; `Smoke`
/// is the tiny CI preset that exists only to prove the figure code still
/// runs end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters.
    Full,
    /// Reduced durations/volumes with identical code paths.
    Quick,
    /// Minimal durations/volumes for the CI `bench-smoke` job.
    Smoke,
}

/// The pipeline component whose access link is being delayed (Fig. 5/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Producer link.
    Producer,
    /// Broker link.
    Broker,
    /// Stream-processing engine link(s).
    Spe,
    /// Consumer link.
    Consumer,
}

impl Component {
    /// All four components, in the paper's legend order.
    pub const ALL: [Component; 4] = [
        Component::Producer,
        Component::Broker,
        Component::Spe,
        Component::Consumer,
    ];

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Component::Producer => "Producer link",
            Component::Broker => "Broker link",
            Component::Spe => "SPE link",
            Component::Consumer => "Consumer link",
        }
    }
}

fn delays_for(component: Component, delay: SimDuration) -> word_count::ComponentDelays {
    let mut d = word_count::ComponentDelays::default();
    match component {
        Component::Producer => d.producer = delay,
        Component::Broker => d.broker = delay,
        Component::Spe => d.spe = delay,
        Component::Consumer => d.consumer = delay,
    }
    d
}

/// **Fig. 5** — end-to-end latency of the word-count pipeline as one
/// component's link delay varies (others < 10 ms). Returns
/// `(component, delay_ms, mean_latency_seconds)` triples.
pub fn fig5_sweep(delays_ms: &[u64], scale: Scale, seed: u64) -> Vec<(Component, u64, f64)> {
    let (files, interval, duration) = match scale {
        Scale::Full => (100, SimDuration::from_millis(400), SimTime::from_secs(120)),
        Scale::Quick => (25, SimDuration::from_millis(300), SimTime::from_secs(45)),
        Scale::Smoke => (8, SimDuration::from_millis(200), SimTime::from_secs(15)),
    };
    let points: Vec<(Component, u64)> = Component::ALL
        .iter()
        .flat_map(|&component| delays_ms.iter().map(move |&ms| (component, ms)))
        .collect();
    crate::executor::parallel_map(&points, |&(component, ms)| {
        let sc = word_count::scenario(
            files,
            interval,
            delays_for(component, SimDuration::from_millis(ms)),
            duration,
            seed,
        );
        let result = sc.run().expect("valid scenario");
        let mean = result
            .mean_latency("avg-words-per-topic")
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        (component, ms, mean)
    })
}

/// Everything Fig. 6 reports about the partition experiment.
#[derive(Debug)]
pub struct Fig6Data {
    /// Fig. 6b: delivery matrix of the co-located producer.
    pub matrix: DeliveryMatrix,
    /// Fig. 6c: per-topic latency series at a remote consumer
    /// (`(delivered_s, latency_s)`).
    pub latency_a: Vec<(f64, f64)>,
    /// Same for topic B.
    pub latency_b: Vec<(f64, f64)>,
    /// Fig. 6d: per-host transmit throughput series.
    pub tx_series: Vec<TxSeries>,
    /// Records truncated by the healed leader (the silent loss).
    pub truncated_records: u64,
    /// Messages acked to the producer yet delivered to no one.
    pub lost_messages: usize,
    /// Leadership events on the original topic-A leader (time, became).
    pub leader_events: Vec<(f64, bool)>,
}

/// **Fig. 6** — the network-partition experiment: `sites` broker sites in a
/// star, two replicated topics, 30 Kbps producers everywhere; the host
/// carrying topic A's leader is disconnected for ~20% of the run.
pub fn fig6_run(mode: CoordinationMode, sites: u32, scale: Scale, seed: u64) -> Fig6Data {
    let (run_s, cut_at, cut_for) = match scale {
        Scale::Full => (600u64, 240u64, 120u64),
        Scale::Quick => (240, 80, 60),
        Scale::Smoke => (100, 35, 25),
    };
    let mut sc = Scenario::new("fig6-partition");
    sc.seed(seed)
        .duration(SimTime::from_secs(run_s))
        .coordination(mode)
        .default_link(LinkSpec::new().latency_ms(2))
        .topic(TopicSpec::new("topic-a").replication(3).primary(0))
        .topic(TopicSpec::new("topic-b").replication(3).primary(1));
    let acks = match mode {
        CoordinationMode::Zk => AckMode::Leader,
        CoordinationMode::Kraft => AckMode::All,
    };
    for i in 0..sites {
        let host = format!("h{}", i + 1);
        sc.broker(&host);
        sc.producer(
            &host,
            SourceSpec::RandomTopics {
                topics: vec!["topic-a".into(), "topic-b".into()],
                kbps: 30,
                payload: 500,
                until: SimTime::from_secs(run_s.saturating_sub(40)),
            },
            ProducerConfig {
                acks,
                ..ProducerConfig::default()
            },
        );
        sc.consumer(&host, Default::default(), &["topic-a", "topic-b"]);
    }
    sc.faults(FaultPlan::new().transient_disconnect(
        "h1",
        SimTime::from_secs(cut_at),
        SimDuration::from_secs(cut_for),
    ));
    sc.watch_throughput(&["h1", "h2", "h3"]);
    let result = sc.run().expect("valid scenario");

    let matrix = result.delivery_matrix(0);
    let lost_messages = {
        let acked: Vec<(String, u64)> = result.report.producers[0]
            .outcomes
            .iter()
            .filter(|o| o.delivered)
            .map(|o| (o.topic.clone(), o.seq))
            .collect();
        let core = result.monitor.borrow();
        acked
            .iter()
            .filter(|(topic, seq)| {
                !core.deliveries.iter().any(|d| {
                    d.producer == result.report.producers[0].id
                        && d.seq == *seq
                        && *d.topic == **topic
                        && d.consumer != 0 // remote consumers only
                })
            })
            .count()
    };
    // A remote consumer's latency series (consumer on the second site).
    let core = result.monitor.borrow();
    let series = |topic: &str| -> Vec<(f64, f64)> {
        core.latency_series(1, topic)
            .iter()
            .map(|(t, lat)| (t.as_secs_f64(), lat.as_secs_f64()))
            .collect()
    };
    let latency_a = series("topic-a");
    let latency_b = series("topic-b");
    drop(core);
    let ta = s2g_proto::TopicPartition::new("topic-a", 0);
    let leader_events = result.report.brokers[0]
        .leadership_events
        .iter()
        .filter(|(_, tp, _)| *tp == ta)
        .map(|(t, _, became)| (t.as_secs_f64(), *became))
        .collect();
    Fig6Data {
        matrix,
        latency_a,
        latency_b,
        tx_series: result.report.tx_series.clone(),
        truncated_records: result.report.brokers[0].stats.records_truncated,
        lost_messages,
        leader_events,
    }
}

/// **Fig. 7a** — the Ichinose et al. reproduction: transfer throughput
/// (images/s) vs number of consumers on one 8-core host.
pub fn fig7a_sweep(consumer_counts: &[usize], seed: u64) -> Vec<(usize, f64)> {
    crate::executor::parallel_map(consumer_counts, |&n| {
        (n, video_analytics::measure_throughput(n, seed))
    })
}

/// **Fig. 7b** — the Ocampo et al. reproduction: mean per-slot runtime
/// normalized by the first user count's result.
pub fn fig7b_sweep(user_counts: &[u32], scale: Scale, seed: u64) -> Vec<(u32, f64)> {
    let duration = match scale {
        Scale::Full => SimTime::from_secs(60),
        Scale::Quick => SimTime::from_secs(25),
        Scale::Smoke => SimTime::from_secs(12),
    };
    // One traffic_monitor sweep per point so the counts fan out in
    // parallel; each inner call still runs its own complete scenario.
    let raw: Vec<(u32, SimDuration)> = crate::executor::parallel_map(user_counts, |&u| {
        traffic_monitor::sweep(&[u], duration, seed)
            .pop()
            .expect("one point per count")
    });
    let base = raw
        .first()
        .map(|(_, d)| d.as_secs_f64())
        .unwrap_or(1.0)
        .max(1e-9);
    raw.into_iter()
        .map(|(u, d)| (u, d.as_secs_f64() / base))
        .collect()
}

/// **Fig. 8** — accuracy vs the "hardware testbed": the word-count pipeline
/// under the emulation backend and the hardware-model backend, varying the
/// broker (or SPE) link delay. Returns `(backend, delay_ms, latency_s)`.
pub fn fig8_sweep(
    delays_ms: &[u64],
    component: Component,
    scale: Scale,
    seed: u64,
) -> Vec<(&'static str, u64, f64)> {
    let (files, interval, duration) = match scale {
        Scale::Full => (100, SimDuration::from_millis(400), SimTime::from_secs(120)),
        Scale::Quick => (25, SimDuration::from_millis(300), SimTime::from_secs(45)),
        Scale::Smoke => (8, SimDuration::from_millis(200), SimTime::from_secs(15)),
    };
    let points: Vec<(&'static str, u64)> = ["stream2gym", "hardware"]
        .iter()
        .flat_map(|&backend| delays_ms.iter().map(move |&ms| (backend, ms)))
        .collect();
    crate::executor::parallel_map(&points, |&(backend, ms)| {
        let net_cfg = match backend {
            "hardware" => NetworkConfig::hardware(),
            _ => NetworkConfig::default(),
        };
        let mut sc = word_count::scenario(
            files,
            interval,
            delays_for(component, SimDuration::from_millis(ms)),
            duration,
            seed,
        );
        sc.network_profile(net_cfg);
        let result = sc.run().expect("valid scenario");
        let mean = result
            .mean_latency("avg-words-per-topic")
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        (backend, ms, mean)
    })
}

/// One point of the Fig. 9 resource sweep.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Number of coordinating sites.
    pub sites: u32,
    /// CPU utilization samples (fraction of the whole server).
    pub cpu_samples: Vec<f64>,
    /// Median CPU utilization.
    pub cpu_median: f64,
    /// Peak memory as a fraction of server memory.
    pub peak_mem_fraction: f64,
}

/// **Fig. 9** — resource usage of the Fig. 6a scenario as the number of
/// coordinating sites varies, for a given producer buffer size.
pub fn fig9_sweep(
    site_counts: &[u32],
    buffer_memory: usize,
    scale: Scale,
    seed: u64,
) -> Vec<Fig9Point> {
    let run_s = match scale {
        Scale::Full => 300u64,
        Scale::Quick => 90,
        Scale::Smoke => 30,
    };
    crate::executor::parallel_map(site_counts, |&sites| {
        let mut sc = Scenario::new("fig9-resources");
        sc.seed(seed)
            .duration(SimTime::from_secs(run_s))
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("topic-a").replication(2).primary(0))
            .topic(TopicSpec::new("topic-b").replication(2).primary(1));
        for i in 0..sites {
            let host = format!("h{}", i + 1);
            sc.broker(&host);
            sc.producer(
                &host,
                SourceSpec::RandomTopics {
                    topics: vec!["topic-a".into(), "topic-b".into()],
                    kbps: 30,
                    payload: 500,
                    until: SimTime::from_secs(run_s),
                },
                ProducerConfig {
                    buffer_memory,
                    ..ProducerConfig::default()
                },
            );
            sc.consumer(&host, Default::default(), &["topic-a", "topic-b"]);
        }
        let result = sc.run().expect("valid scenario");
        let cpu_samples = result.report.cpu_samples();
        Fig9Point {
            sites,
            cpu_median: median(&cpu_samples).unwrap_or(0.0),
            cpu_samples,
            peak_mem_fraction: result.report.peak_mem_fraction(),
        }
    })
}

/// One point of the broker-recovery sweep.
#[derive(Debug, Clone, Copy)]
pub struct BrokerRecoveryPoint {
    /// Records in the log when the broker crashed.
    pub records: u64,
    /// Restart-to-serving latency (durable-log replay), seconds.
    pub replay_latency_s: f64,
    /// Crash-to-serving latency (the unavailability window), seconds.
    pub unavailability_s: f64,
    /// Encoded segment bytes read back during replay.
    pub replayed_bytes: u64,
    /// Segments read back during replay.
    pub replayed_segments: u64,
}

/// **Broker recovery latency** — the ROADMAP follow-up figure: a producer
/// fills one topic through a broker whose log is persisted via a store
/// server ([`Scenario::with_durable_broker`]); once production finishes the
/// broker is crashed and restarted, and the restarted instance replays its
/// segments before serving. Returns one point per pre-crash log size, with
/// replay latency growing in the number of persisted segments.
pub fn broker_recovery_sweep(
    record_counts: &[u64],
    scale: Scale,
    seed: u64,
) -> Vec<BrokerRecoveryPoint> {
    use s2g_store::StoreConfig;
    let interval = match scale {
        Scale::Full => SimDuration::from_millis(2),
        Scale::Quick | Scale::Smoke => SimDuration::from_millis(4),
    };
    crate::executor::parallel_map(record_counts, |&n| {
        let produce_ms = interval.as_millis() * n + 500;
        let crash_at = SimTime::from_millis(produce_ms + 1_000);
        let duration = crash_at + SimDuration::from_secs(12);
        let mut sc = Scenario::new("broker-recovery");
        sc.seed(seed)
            .duration(duration)
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("data"));
        sc.broker("h1");
        sc.store("h2", StoreConfig::default());
        // A bandwidth-limited store link makes replay time scale with
        // the bytes read back, not just the per-blob round trips.
        sc.host_link("h2", LinkSpec::new().latency_ms(2).bandwidth_mbps(50.0));
        sc.with_durable_broker("h2");
        sc.producer(
            "h3",
            SourceSpec::Rate {
                topic: "data".into(),
                count: n,
                interval,
                payload: 200,
            },
            Default::default(),
        );
        sc.consumer("h4", Default::default(), &["data"]);
        sc.faults(FaultPlan::new().crash_restart_broker(0, crash_at, SimDuration::from_secs(1)));
        let result = sc.run().expect("valid scenario");
        let rec = result.report.brokers[0]
            .recovery
            .expect("broker crash recorded");
        BrokerRecoveryPoint {
            records: rec.replayed_records,
            replay_latency_s: rec
                .replay_latency()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            unavailability_s: rec
                .unavailability()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            replayed_bytes: rec.replayed_bytes,
            replayed_segments: rec.replayed_segments,
        }
    })
}

/// One point of the bounded-recovery (compaction/incremental) sweep.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPoint {
    /// Records produced (the history length).
    pub history: u64,
    /// Size of the final full snapshot under full checkpointing — grows
    /// with total state.
    pub full_snapshot_bytes: u64,
    /// Largest delta under incremental checkpointing — bounded by churn
    /// per interval, ≈ flat in history.
    pub delta_snapshot_bytes: u64,
    /// Records replayed by the restarted broker on the raw (uncompacted)
    /// log — grows with history.
    pub raw_replay_records: u64,
    /// Segment bytes replayed on the raw log.
    pub raw_replay_bytes: u64,
    /// Restart-to-serving latency on the raw log, seconds.
    pub raw_replay_s: f64,
    /// Records replayed with compaction on — bounded by live keys.
    pub compacted_replay_records: u64,
    /// Segment bytes replayed with compaction on.
    pub compacted_replay_bytes: u64,
    /// Restart-to-serving latency with compaction on, seconds.
    pub compacted_replay_s: f64,
    /// Bytes the cleaner reclaimed before the crash (the replay savings).
    pub replay_saved_bytes: u64,
}

/// **Bounded recovery** — the `--fig compaction` sweep: how recovery cost
/// scales with history length, with and without the two bounding
/// mechanisms.
///
/// * **Snapshot half**: a stateful word-count job over an ever-growing key
///   space checkpoints every interval. Under full snapshots the final
///   capture is `O(total keys)` = `O(history)`; under incremental
///   checkpointing each delta carries only the keys touched since the last
///   capture, so mean delta bytes stay ≈ flat.
/// * **Replay half**: a keyed producer cycles a fixed key set through a
///   durable broker that is crashed and restarted after production. On the
///   raw log, replay cost is `O(history)`; with keyed compaction the
///   cleaner keeps only the latest record per key, so replay is bounded by
///   live data.
pub fn compaction_sweep(history_counts: &[u64], scale: Scale, seed: u64) -> Vec<CompactionPoint> {
    use s2g_broker::RateSource;
    use s2g_spe::{CheckpointCfg, Plan, Value};
    use s2g_store::StoreConfig;

    let interval = match scale {
        Scale::Full => SimDuration::from_millis(2),
        Scale::Quick | Scale::Smoke => SimDuration::from_millis(4),
    };
    const LIVE_KEYS: u64 = 32;

    // Snapshot half: unique-keyed records into a running count, so state
    // (and full snapshots) grow with history while per-interval churn is
    // constant.
    let snapshot_run = |n: u64, incremental: bool| -> u64 {
        let produce_ms = interval.as_millis() * n + 500;
        let duration = SimTime::from_millis(produce_ms + 4_000);
        let mut sc = Scenario::new("compaction-snapshots");
        sc.seed(seed)
            .duration(duration)
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("events"));
        sc.broker("h1");
        sc.producer(
            "h2",
            SourceSpec::Custom {
                topics: vec!["events".into()],
                make: Box::new(move || {
                    // Every record a fresh key: key space == history.
                    Box::new(RateSource::new("events", n, interval).key_space(n.max(1)))
                }),
            },
            Default::default(),
        );
        sc.spe_job(
            "h3",
            s2g_core::SpeJobSpec::new(
                "keycount",
                vec!["events".into()],
                || {
                    Plan::new().stateful("count", Value::Int(0), |state, e| {
                        let k = state.as_int().unwrap_or(0) + 1;
                        *state = Value::Int(k);
                        vec![e.clone()]
                    })
                },
                s2g_core::SpeSinkSpec::Collect,
                Default::default(),
            ),
        );
        let cfg = CheckpointCfg::exactly_once(SimDuration::from_millis(500));
        if incremental {
            sc.with_incremental_checkpointing(cfg, 8);
        } else {
            sc.with_checkpointing(cfg);
        }
        let result = sc.run().expect("valid scenario");
        let stats = result.report.spe["keycount"].checkpoints;
        if incremental {
            // The per-capture cost ceiling: the largest delta, bounded by
            // churn per interval. (The mean would be diluted by the empty
            // post-production deltas.)
            if stats.delta_checkpoints == 0 {
                stats.last_snapshot_bytes
            } else {
                stats.max_delta_bytes
            }
        } else {
            stats.last_full_bytes
        }
    };

    // Replay half: a fixed key set updated over and over through a durable
    // broker, crashed and restarted after production.
    let replay_run = |n: u64, compaction: bool| -> (u64, u64, f64, u64) {
        let produce_ms = interval.as_millis() * n + 500;
        let crash_at = SimTime::from_millis(produce_ms + 2_000);
        let duration = crash_at + SimDuration::from_secs(12);
        let mut sc = Scenario::new("compaction-replay");
        sc.seed(seed)
            .duration(duration)
            .default_link(LinkSpec::new().latency_ms(2))
            .topic(TopicSpec::new("data"));
        let broker_cfg = s2g_broker::BrokerConfig {
            log_segment_max_records: 64,
            // Clean aggressively so the pre-crash log is compacted even in
            // short runs.
            log_cleanup_interval: SimDuration::from_millis(250),
            ..Default::default()
        };
        sc.broker_with("h1", broker_cfg);
        sc.store("h2", StoreConfig::default());
        sc.host_link("h2", LinkSpec::new().latency_ms(2).bandwidth_mbps(50.0));
        sc.with_durable_broker("h2");
        if compaction {
            sc.with_log_compaction();
        }
        sc.producer(
            "h3",
            SourceSpec::Custom {
                topics: vec!["data".into()],
                make: Box::new(move || {
                    Box::new(
                        RateSource::new("data", n, interval)
                            .payload_bytes(200)
                            .key_space(LIVE_KEYS),
                    )
                }),
            },
            Default::default(),
        );
        sc.consumer("h4", Default::default(), &["data"]);
        sc.faults(FaultPlan::new().crash_restart_broker(0, crash_at, SimDuration::from_secs(1)));
        let result = sc.run().expect("valid scenario");
        let rec = result.report.brokers[0]
            .recovery
            .expect("broker crash recorded");
        (
            rec.replayed_records,
            rec.replayed_bytes,
            rec.replay_latency()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            rec.replay_saved_bytes,
        )
    };

    crate::executor::parallel_map(history_counts, |&n| {
        let full_snapshot_bytes = snapshot_run(n, false);
        let delta_snapshot_bytes = snapshot_run(n, true);
        let (raw_records, raw_bytes, raw_s, _) = replay_run(n, false);
        let (c_records, c_bytes, c_s, saved) = replay_run(n, true);
        CompactionPoint {
            history: n,
            full_snapshot_bytes,
            delta_snapshot_bytes,
            raw_replay_records: raw_records,
            raw_replay_bytes: raw_bytes,
            raw_replay_s: raw_s,
            compacted_replay_records: c_records,
            compacted_replay_bytes: c_bytes,
            compacted_replay_s: c_s,
            replay_saved_bytes: saved,
        }
    })
}

/// One point of the store-replication sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPoint {
    /// Store-group replication factor.
    pub replicas: usize,
    /// Checkpoints persisted during the run.
    pub checkpoints: u64,
    /// Mean accept-to-durable checkpoint latency, seconds — what quorum
    /// round trips through the replicated store cost per capture.
    pub checkpoint_latency_s: f64,
    /// Longest gap between consecutive durable checkpoints spanning the
    /// store-primary crash, seconds — the durability-tier unavailability
    /// window (failover + client rotation for a group, full restart for a
    /// standalone store).
    pub unavailability_s: f64,
    /// Ops the restarted replica pulled from a peer while resyncing (0 for
    /// a standalone store, which restarts empty).
    pub resync_ops: u64,
}

/// **Store replication** — the `--fig replication` sweep: a checkpointed
/// word-count pipeline persists through a store group of varying size while
/// the fault plan kills (and later restarts) the group's primary
/// mid-checkpoint. Per replication factor it reports the steady-state
/// checkpoint latency (quorum round trips make captures dearer) and the
/// durability-tier unavailability around the crash (failover makes crashes
/// cheaper) — the classic latency-vs-availability trade.
pub fn store_replication_sweep(
    replica_counts: &[usize],
    scale: Scale,
    seed: u64,
) -> Vec<ReplicationPoint> {
    use s2g_spe::CheckpointCfg;
    use s2g_store::StoreConfig;

    let (records, interval) = match scale {
        Scale::Full => (4_000u64, SimDuration::from_millis(2)),
        Scale::Quick => (800, SimDuration::from_millis(4)),
        Scale::Smoke => (300, SimDuration::from_millis(4)),
    };
    let produce_ms = interval.as_millis() * records + 500;
    let crash_at = SimTime::from_millis(produce_ms / 2);
    let duration = SimTime::from_millis(produce_ms + 10_000);
    crate::executor::parallel_map(replica_counts, |&n| {
        let mut sc = word_count::recovery_scenario(records as usize, interval, duration, seed);
        sc.store("h6", StoreConfig::default());
        sc.with_replicated_store(n);
        sc.with_durable_checkpointing(
            CheckpointCfg::exactly_once(SimDuration::from_millis(500)),
            "h6",
        );
        sc.with_transactional_sinks();
        sc.faults(FaultPlan::new().crash_restart_store(0, crash_at, SimDuration::from_secs(2)));
        let result = sc.run().expect("valid scenario");
        let spe = &result.report.spe["wordcount"];
        let log = &spe.checkpoint_log;
        let checkpoints = log.len() as u64;
        // Steady-state latency: captures fully persisted before the
        // crash (the crash-stalled persist belongs to the
        // unavailability metric, not here).
        let steady: Vec<f64> = log
            .iter()
            .filter(|(_, d)| *d < crash_at)
            .map(|(a, d)| d.saturating_since(*a).as_secs_f64())
            .collect();
        let steady_stats = s2g_telemetry::summarize(&steady);
        // The unavailability window: the longest durable-to-durable gap
        // that spans the crash instant (falling back to crash→end when
        // no checkpoint landed afterwards).
        let mut unavailability = 0.0f64;
        let mut prev = SimTime::ZERO;
        let mut covered = false;
        for (_, durable) in log {
            if prev <= crash_at && *durable >= crash_at {
                unavailability = durable.saturating_since(prev.max(crash_at)).as_secs_f64();
                covered = true;
            }
            prev = *durable;
        }
        if !covered {
            unavailability = duration.saturating_since(crash_at).as_secs_f64();
        }
        let resync_ops = result.report.stores[0].recovery.map_or(0, |r| r.sync_ops);
        ReplicationPoint {
            replicas: n,
            checkpoints,
            checkpoint_latency_s: steady_stats.map_or(f64::NAN, |s| s.mean),
            unavailability_s: unavailability,
            resync_ops,
        }
    })
}

/// One point of the broker-replication sweep.
#[derive(Debug, Clone, Copy)]
pub struct BrokerReplicationPoint {
    /// Topic replication factor.
    pub rf: u32,
    /// Percentage of produced records acked within the 1-second SLO —
    /// records created during the leader outage blow it unless a follower
    /// takes over quickly.
    pub availability_pct: f64,
    /// 99th-percentile produce ack latency over acked records,
    /// milliseconds. `acks=all` pays follower round trips at steady state
    /// and election time across the crash.
    pub produce_p99_ms: f64,
    /// The produce-unavailability window: the longest gap between
    /// consecutive acked records spanning the leader crash, seconds. At
    /// RF=1 it is the full crash-to-recovery window; with followers it
    /// shrinks to the election time.
    pub unavailability_s: f64,
    /// Partitions whose leadership moved to a surviving broker during the
    /// outage (from `BrokerRecoveryReport::leadership_moves`).
    pub leadership_moves: u64,
}

/// **Broker replication** — the `--fig broker-replication` sweep: a
/// single-partition topic is produced at `acks=all` through a 3-broker
/// cluster while the fault plan kills (and 4 s later restarts) the
/// partition leader mid-run. Per replication factor it reports produce
/// availability and tail latency around the crash: at RF=1 the partition
/// is dark until the broker returns, while at RF=3 a follower is elected
/// within the session timeout and acked produce continues — availability
/// up, unavailability down, with the steady-state `acks=all` latency tax
/// as the price.
pub fn broker_replication_sweep(
    rfs: &[u32],
    scale: Scale,
    seed: u64,
) -> Vec<BrokerReplicationPoint> {
    // The produce window must span the whole outage (crash + 4 s restart
    // delay + catch-up) or every point just measures backlog drain; keep
    // the rate modest so steady-state records ack well inside the SLO.
    let (records, interval) = match scale {
        Scale::Full => (4_000u64, SimDuration::from_millis(10)),
        Scale::Quick => (800, SimDuration::from_millis(25)),
        Scale::Smoke => (300, SimDuration::from_millis(40)),
    };
    let produce_ms = interval.as_millis() * records + 500;
    let crash_at = SimTime::from_millis(produce_ms / 2);
    let duration = SimTime::from_millis(produce_ms + 5_000);
    let slo = SimDuration::from_secs(1);
    crate::executor::parallel_map(rfs, |&rf| {
        let mut sc = Scenario::new(format!("broker-replication-rf{rf}"));
        sc.seed(seed).duration(duration);
        // Failure detection must beat the outage or no election happens
        // at any RF: tighten heartbeats and the controller session so
        // the dead leader is expired in ~1 s of its 4 s downtime.
        let broker_cfg = s2g_broker::BrokerConfig {
            heartbeat_interval: SimDuration::from_millis(300),
            session_timeout: SimDuration::from_secs(1),
            // Followers fetch near-continuously (Kafka's replica
            // fetcher long-polls): with the 50 ms default, every
            // `acks=all` batch pays a full fetch cycle and the
            // one-inflight-per-partition producer can't keep up with
            // the record rate.
            replica_fetch_interval: SimDuration::from_millis(10),
            ..Default::default()
        };
        sc.broker_with("h1", broker_cfg.clone());
        sc.broker_with("h2", broker_cfg.clone());
        sc.broker_with("h3", broker_cfg);
        sc.controller_config(s2g_broker::ControllerConfig {
            session_timeout: SimDuration::from_secs(1),
            session_check_interval: SimDuration::from_millis(250),
            ..Default::default()
        });
        sc.topic(TopicSpec::new("data"));
        sc.with_replicated_partitions(rf);
        sc.with_acks(AckMode::All);
        sc.producer(
            "h4",
            SourceSpec::Rate {
                topic: "data".into(),
                count: records,
                interval,
                payload: 200,
            },
            // A tight request timeout bounds leader rediscovery: a
            // produce aimed at the dead leader and the follow-up
            // metadata probe each give up after 500 ms instead of the
            // 2 s default, so the client finds the elected leader soon
            // after the controller installs it.
            ProducerConfig {
                request_timeout: SimDuration::from_millis(500),
                ..Default::default()
            },
        );
        sc.consumer("h5", Default::default(), &["data"]);
        sc.faults(FaultPlan::new().crash_restart_broker(0, crash_at, SimDuration::from_secs(4)));
        let result = sc.run().expect("valid scenario");
        let outcomes = &result.report.producers[0].outcomes;
        let total = outcomes.len().max(1) as f64;
        let within_slo = outcomes
            .iter()
            .filter(|o| o.delivered && o.completed.saturating_since(o.created) <= slo)
            .count() as f64;
        let lat_ms: Vec<f64> = outcomes
            .iter()
            .filter(|o| o.delivered)
            .map(|o| o.completed.saturating_since(o.created).as_secs_f64() * 1e3)
            .collect();
        let lat_stats = s2g_telemetry::summarize(&lat_ms);
        // The produce-unavailability window: the gap from the crash to
        // the first ack at or after it (falling back to crash→end when
        // produce never resumed).
        let mut acked: Vec<SimTime> = outcomes
            .iter()
            .filter(|o| o.delivered)
            .map(|o| o.completed)
            .collect();
        acked.sort_unstable();
        let unavailability = acked
            .iter()
            .find(|t| **t >= crash_at)
            .map(|t| t.saturating_since(crash_at).as_secs_f64())
            .unwrap_or_else(|| duration.saturating_since(crash_at).as_secs_f64());
        let leadership_moves = result.report.brokers[0]
            .recovery
            .map_or(0, |r| r.leadership_moves);
        BrokerReplicationPoint {
            rf,
            availability_pct: 100.0 * within_slo / total,
            produce_p99_ms: lat_stats.map_or(f64::NAN, |s| s.p99),
            unavailability_s: unavailability,
            leadership_moves,
        }
    })
}

/// One point of the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Instances per stage.
    pub parallelism: usize,
    /// Fault-free records through the job per second of run time.
    pub throughput_rps: f64,
    /// Same with one keyed-stage instance crashed mid-run.
    pub crash_throughput_rps: f64,
    /// Crash-to-first-processed-batch latency of the crashed worker,
    /// seconds.
    pub recovery_s: f64,
}

/// **Scaling** — the `--fig scaling` sweep: a compute-bound keyed
/// word-count job (per-record CPU far above what one worker can sustain at
/// the offered rate) runs at parallelism 1/2/4/8, with and without a
/// mid-run crash of one keyed-stage instance. Throughput grows with the
/// parallelism degree until the offered rate is met — the dominant knob
/// PDSP-Bench identifies — while recovery latency stays roughly flat
/// (only the crashed instance's key groups restore).
pub fn scaling_sweep(parallelisms: &[usize], scale: Scale, seed: u64) -> Vec<ScalingPoint> {
    use s2g_broker::TopicSpec;
    use s2g_core::{SpeJobSpec, SpeSinkSpec};
    use s2g_spe::{CheckpointCfg, SpeConfig};

    // Per-record CPU is set so one worker is far below the offered rate —
    // the sweep then shows throughput climbing with the parallelism degree
    // until the offered rate is met.
    let (records, interval_ms, cpu_ms, tail_ms) = match scale {
        Scale::Full => (4_000u64, 2u64, 8u64, 8_000u64),
        Scale::Quick => (800, 5, 30, 8_000),
        Scale::Smoke => (300, 5, 30, 6_000),
    };
    let produce_ms = records * interval_ms + 500;
    let crash_at = SimTime::from_millis(produce_ms / 2);
    let duration = SimTime::from_millis(produce_ms + tail_ms);
    let run = |parallelism: usize, crash: bool| -> (f64, f64) {
        let mut sc = Scenario::new("scaling");
        sc.seed(seed)
            .duration(duration)
            .topic(TopicSpec::new("events").partitions(8))
            .topic(TopicSpec::new("counts"));
        sc.broker("h0");
        sc.producer(
            "hp",
            SourceSpec::Custom {
                topics: vec!["events".into()],
                make: Box::new(move || {
                    Box::new(
                        s2g_broker::RateSource::new(
                            "events",
                            records,
                            SimDuration::from_millis(interval_ms),
                        )
                        .payload_bytes(64)
                        .key_space(32),
                    )
                }),
            },
            ProducerConfig::default(),
        );
        let mut job = SpeJobSpec::new(
            "scalecount",
            vec!["events".into()],
            || {
                use s2g_spe::{Event, Plan, Value};
                Plan::new()
                    .key_by("by-payload", |e| {
                        e.key.clone().unwrap_or_else(|| {
                            e.value.as_str().unwrap_or("").chars().take(8).collect()
                        })
                    })
                    .stateful("count", Value::Int(0), |state, e| {
                        let n = state.as_int().unwrap_or(0) + 1;
                        *state = Value::Int(n);
                        vec![Event {
                            value: Value::Int(n),
                            ..e.clone()
                        }]
                    })
            },
            SpeSinkSpec::Topic("counts".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(250),
                scheduling_overhead: SimDuration::from_millis(10),
                cpu_per_record: SimDuration::from_millis(cpu_ms),
                startup_cpu: SimDuration::from_millis(200),
                max_batch_records: 64,
                ..SpeConfig::default()
            },
        );
        if parallelism > 1 {
            job = job.parallelism(parallelism);
        }
        sc.spe_job("hs", job);
        sc.consumer("hc", Default::default(), &["counts"]);
        sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
        if crash {
            let target = if parallelism > 1 {
                format!("scalecount/1/{}", 1.min(parallelism - 1))
            } else {
                "scalecount".to_string()
            };
            sc.faults(FaultPlan::new().crash_restart(
                &target,
                crash_at,
                SimDuration::from_millis(800),
            ));
        }
        let result = sc.run().expect("valid scenario");
        let spe = &result.report.spe["scalecount"];
        let throughput = spe.record_counts.1 as f64 / duration.as_secs_f64();
        let recovery = spe
            .recovery
            .and_then(|r| r.recovery_latency())
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN);
        (throughput, recovery)
    };
    crate::executor::parallel_map(parallelisms, |&p| {
        let (throughput_rps, _) = run(p, false);
        let (crash_throughput_rps, recovery_s) = run(p, true);
        ScalingPoint {
            parallelism: p,
            throughput_rps,
            crash_throughput_rps,
            recovery_s,
        }
    })
}

/// Everything the `--fig timeline` figure plots: per-instance telemetry
/// series around a crash→recovery window, plus the raw exports behind them.
#[derive(Debug, Clone)]
pub struct TimelineData {
    /// Per-instance consumer lag (records behind the broker high
    /// watermark), summed across the instance's partitions:
    /// `(instance, (seconds, lag))`.
    pub lag: Vec<(String, Vec<(f64, f64)>)>,
    /// Per-instance processing rate in records/s, derived from successive
    /// sampler snapshots of the cumulative `records_out` counter.
    pub throughput: Vec<(String, Vec<(f64, f64)>)>,
    /// Fault and recovery-phase markers from the causal trace:
    /// `(seconds, scope, event)`.
    pub markers: Vec<(f64, String, String)>,
    /// The run's full tidy-CSV metric export (`t_s,scope,metric,value`).
    pub tidy_csv: String,
    /// The run's Chrome-trace JSON export — load it in `chrome://tracing`
    /// or Perfetto to walk the crash→recovery window span by span.
    pub chrome_json: String,
}

/// **Timeline** — the `--fig timeline` figure: a parallelism-2 keyed
/// word-count job runs with the telemetry sampler on a fine interval and
/// the causal tracer enabled while the fault plan crashes (and later
/// restarts) one keyed-stage instance mid-run. The figure shows consumer
/// lag ballooning on the crashed instance and draining after recovery,
/// per-instance throughput dipping and rebounding, and markers for the
/// fault and every recovery phase pulled straight from the trace.
pub fn timeline_sweep(scale: Scale, seed: u64) -> TimelineData {
    use s2g_core::{SpeJobSpec, SpeSinkSpec};
    use s2g_spe::{CheckpointCfg, SpeConfig};

    let (records, interval_ms, tail_ms) = match scale {
        Scale::Full => (4_000u64, 2u64, 8_000u64),
        Scale::Quick => (800, 5, 8_000),
        Scale::Smoke => (300, 5, 6_000),
    };
    // Unlike the scaling sweep this job is consumer-bound, not
    // batch-CPU-bound: per-record deserialization caps each instance's
    // drain rate at ~1.25x its offered rate, so the backlog a crash builds
    // up sits in the broker and shows as consumer lag until it drains.
    let consumer_cpu = SimDuration::from_micros(interval_ms * 1_600);
    let produce_ms = records * interval_ms + 500;
    let crash_at = SimTime::from_millis(produce_ms / 2);
    let duration = SimTime::from_millis(produce_ms + tail_ms);
    let mut sc = Scenario::new("timeline");
    sc.seed(seed)
        .duration(duration)
        .topic(TopicSpec::new("events").partitions(4))
        .topic(TopicSpec::new("counts"));
    sc.telemetry_interval(SimDuration::from_millis(100));
    sc.with_telemetry_trace(true);
    // A small fetch cap makes the broker dole the backlog out gradually, so
    // consumer lag is visible at sampler ticks instead of collapsing to
    // zero inside a single fetch round trip.
    sc.broker_with(
        "h0",
        s2g_broker::BrokerConfig {
            fetch_max_records: 5,
            ..Default::default()
        },
    );
    sc.producer(
        "hp",
        SourceSpec::Custom {
            topics: vec!["events".into()],
            make: Box::new(move || {
                Box::new(
                    s2g_broker::RateSource::new(
                        "events",
                        records,
                        SimDuration::from_millis(interval_ms),
                    )
                    .payload_bytes(64)
                    .key_space(32),
                )
            }),
        },
        ProducerConfig::default(),
    );
    let job = SpeJobSpec::new(
        "timeline",
        vec!["events".into()],
        || {
            use s2g_spe::{Event, Plan, Value};
            Plan::new()
                .key_by("by-payload", |e| {
                    e.key
                        .clone()
                        .unwrap_or_else(|| e.value.as_str().unwrap_or("").chars().take(8).collect())
                })
                .stateful("count", Value::Int(0), |state, e| {
                    let n = state.as_int().unwrap_or(0) + 1;
                    *state = Value::Int(n);
                    vec![Event {
                        value: Value::Int(n),
                        ..e.clone()
                    }]
                })
        },
        SpeSinkSpec::Topic("counts".into()),
        SpeConfig {
            batch_interval: SimDuration::from_millis(250),
            scheduling_overhead: SimDuration::from_millis(10),
            cpu_per_record: SimDuration::from_millis(2),
            startup_cpu: SimDuration::from_millis(200),
            max_batch_records: 64,
            consumer: s2g_broker::ConsumerConfig {
                cpu_per_record: consumer_cpu,
                ..Default::default()
            },
            ..SpeConfig::default()
        },
    )
    .parallelism(2)
    // Few key groups concentrate each instance's backlog into a couple of
    // shuffle partitions, where it registers as per-partition lag instead
    // of vanishing below one fetch's worth per partition.
    .key_groups(4);
    sc.spe_job("hs", job);
    sc.consumer("hc", Default::default(), &["counts"]);
    sc.with_checkpointing(CheckpointCfg::exactly_once(SimDuration::from_millis(500)));
    sc.faults(FaultPlan::new().crash_restart(
        "timeline/1/1",
        crash_at,
        SimDuration::from_millis(2_000),
    ));
    let result = sc.run().expect("valid scenario");

    // Per-instance lag: sum each instance's per-partition gauges at every
    // sampler tick. Per-instance throughput: differentiate the cumulative
    // records-out counter between consecutive ticks.
    let mut lag_by_instance: BTreeMap<String, BTreeMap<SimTime, f64>> = BTreeMap::new();
    let mut throughput: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for s in &result.report.metric_series {
        if !s.scope.starts_with("timeline/") {
            continue;
        }
        if s.name.starts_with("lag/") {
            let agg = lag_by_instance.entry(s.scope.clone()).or_default();
            for (t, v) in &s.points {
                *agg.entry(*t).or_insert(0.0) += *v;
            }
        } else if s.name == "records_out" {
            let mut rate = Vec::new();
            let mut prev: Option<(SimTime, f64)> = None;
            for (t, v) in &s.points {
                if let Some((pt, pv)) = prev {
                    let dt = t.saturating_since(pt).as_secs_f64();
                    if dt > 0.0 {
                        rate.push((t.as_secs_f64(), (v - pv) / dt));
                    }
                }
                prev = Some((*t, *v));
            }
            throughput.push((s.scope.clone(), rate));
        }
    }
    let lag = lag_by_instance
        .into_iter()
        .map(|(scope, pts)| {
            let series = pts.into_iter().map(|(t, v)| (t.as_secs_f64(), v)).collect();
            (scope, series)
        })
        .collect();
    let markers = result
        .telemetry
        .tracer()
        .events()
        .iter()
        .filter(|e| e.cat == "fault" || e.cat == "recovery")
        .map(|e| (e.at.as_secs_f64(), e.scope.clone(), e.name.clone()))
        .collect();
    TimelineData {
        lag,
        throughput,
        markers,
        tidy_csv: result.telemetry.tidy_csv(),
        chrome_json: result.telemetry.chrome_json(),
    }
}

/// **Table II** — the application inventory: `(name, components, feature)`.
pub fn table2_inventory() -> Vec<(&'static str, u32, &'static str)> {
    vec![
        ("Word count", 5, "Multiple stream processing jobs"),
        ("Ride selection", 5, "Structured data, stateful processing"),
        ("Sentiment analysis", 3, "Unstructured data"),
        ("Maritime monitoring", 4, "Persistent storage"),
        ("Fraud detection", 5, "Machine learning prediction"),
    ]
}

/// One configuration point of the `--bench hotpath` micro-benchmark.
#[derive(Debug, Clone, Copy)]
pub struct HotpathPoint {
    /// Human-readable setting label (`unbatched`, `batch-64k`, ...).
    pub setting: &'static str,
    /// Producer `batch.size` in bytes (1 when batching is disabled).
    pub batch_max_bytes: usize,
    /// Producer linger in milliseconds (0 when batching is disabled).
    pub linger_ms: u64,
    /// Whether batch compression was on.
    pub compression: bool,
    /// Simulated end-to-end records per second: records delivered at the
    /// sink consumer divided by the last delivery's simulated time.
    pub records_per_sec: f64,
    /// 99th-percentile produce ack latency over acked records,
    /// milliseconds. Unbatched at saturation this balloons (every record
    /// queues behind one-request-per-record round trips).
    pub produce_p99_ms: f64,
    /// Records that made it to the sink consumer within the run window.
    pub delivered: u64,
    /// [`RunReport::shared_batch_copies`](s2g_core::RunReport) for the
    /// run — the zero-copy data plane keeps this at 0.
    pub shared_batch_copies: u64,
}

/// Batching knobs for one hot-path run.
#[derive(Debug, Clone, Copy)]
struct HotpathCfg {
    batching: bool,
    batch_max_bytes: usize,
    linger_ms: u64,
    compression: bool,
}

/// Runs the produce→fetch→operator→fetch loop once: a saturating
/// single-partition producer, an identity-map SPE job, and a monitored
/// sink consumer. Returns `(records_per_sec, produce_p99_ms, delivered,
/// shared_batch_copies)`.
fn hotpath_run(
    records: u64,
    interval: SimDuration,
    duration: SimTime,
    seed: u64,
    cfg: HotpathCfg,
) -> (f64, f64, u64, u64) {
    use s2g_broker::ConsumerConfig;
    use s2g_core::{SpeJobSpec, SpeSinkSpec};
    use s2g_spe::SpeConfig;

    // Fast polling keeps the fetch path from capping throughput: the knob
    // under test is the produce path (per-request CPU + RPC framing), not
    // the poll cadence.
    let fast_consumer = ConsumerConfig {
        poll_interval: SimDuration::from_millis(5),
        max_poll_records: 5_000,
        ..Default::default()
    };
    let mut sc = Scenario::new("hotpath");
    sc.seed(seed)
        .duration(duration)
        .topic(TopicSpec::new("hot"))
        .topic(TopicSpec::new("out"));
    sc.broker("h0");
    sc.producer(
        "hp",
        SourceSpec::Rate {
            topic: "hot".into(),
            count: records,
            interval,
            payload: 64,
        },
        ProducerConfig::default(),
    );
    sc.spe_job(
        "hs",
        SpeJobSpec::new(
            "hotmap",
            vec!["hot".into()],
            || s2g_spe::Plan::new().map("ident", |e| e),
            SpeSinkSpec::Topic("out".into()),
            SpeConfig {
                batch_interval: SimDuration::from_millis(10),
                scheduling_overhead: SimDuration::from_millis(1),
                cpu_per_record: SimDuration::from_micros(2),
                startup_cpu: SimDuration::from_millis(100),
                consumer: fast_consumer.clone(),
                ..SpeConfig::default()
            },
        ),
    );
    sc.consumer("hc", fast_consumer, &["out"]);
    if cfg.batching {
        sc.batch_max_bytes(cfg.batch_max_bytes);
        sc.linger_ms(cfg.linger_ms);
        sc.with_compression(cfg.compression);
    } else {
        sc.with_batching(false);
    }
    let result = sc.run().expect("valid scenario");
    let (delivered, last) = {
        let core = result.monitor.borrow();
        let mut count = 0u64;
        let mut last = SimTime::ZERO;
        for d in core.for_topic("out") {
            count += 1;
            last = last.max(d.delivered);
        }
        (count, last)
    };
    let rps = if last > SimTime::ZERO {
        delivered as f64 / last.as_secs_f64()
    } else {
        0.0
    };
    let lat_ms: Vec<f64> = result.report.producers[0]
        .outcomes
        .iter()
        .filter(|o| o.delivered)
        .map(|o| o.completed.saturating_since(o.created).as_secs_f64() * 1e3)
        .collect();
    let p99 = s2g_telemetry::summarize(&lat_ms).map_or(f64::NAN, |s| s.p99);
    (rps, p99, delivered, result.report.shared_batch_copies)
}

/// Saturating offered load per scale: `(records, interval, duration)`.
/// The offered rate (40-50k records/s) sits far above what the
/// one-request-per-record baseline can move, so the sweep measures each
/// setting's ceiling rather than the source's.
fn hotpath_load(scale: Scale) -> (u64, SimDuration, SimTime) {
    match scale {
        Scale::Full => (40_000, SimDuration::from_micros(20), SimTime::from_secs(6)),
        Scale::Quick => (8_000, SimDuration::from_micros(20), SimTime::from_secs(3)),
        Scale::Smoke => (2_000, SimDuration::from_micros(25), SimTime::from_secs(2)),
    }
}

/// **Hotpath** — the `--bench hotpath` micro-benchmark: the same
/// produce→fetch→operator→fetch loop at five batching settings, from the
/// one-record-per-request baseline to 64 KiB compressed batches. The
/// simulator is deterministic, so the resulting records/s are stable
/// across machines and gate CI (`perf-gate` fails on >20% regression
/// against the committed floor, and on a batched/unbatched ratio < 3).
pub fn hotpath_sweep(scale: Scale, seed: u64) -> Vec<HotpathPoint> {
    let (records, interval, duration) = hotpath_load(scale);
    let settings: [(&'static str, HotpathCfg); 5] = [
        (
            "unbatched",
            HotpathCfg {
                batching: false,
                batch_max_bytes: 1,
                linger_ms: 0,
                compression: false,
            },
        ),
        (
            "batch-4k",
            HotpathCfg {
                batching: true,
                batch_max_bytes: 4 * 1024,
                linger_ms: 1,
                compression: false,
            },
        ),
        (
            "batch-16k",
            HotpathCfg {
                batching: true,
                batch_max_bytes: 16 * 1024,
                linger_ms: 2,
                compression: false,
            },
        ),
        (
            "batch-64k",
            HotpathCfg {
                batching: true,
                batch_max_bytes: 64 * 1024,
                linger_ms: 5,
                compression: false,
            },
        ),
        (
            "batch-64k-lz4",
            HotpathCfg {
                batching: true,
                batch_max_bytes: 64 * 1024,
                linger_ms: 5,
                compression: true,
            },
        ),
    ];
    crate::executor::parallel_map(&settings, |&(setting, cfg)| {
        let (records_per_sec, produce_p99_ms, delivered, shared_batch_copies) =
            hotpath_run(records, interval, duration, seed, cfg);
        HotpathPoint {
            setting,
            batch_max_bytes: cfg.batch_max_bytes,
            linger_ms: cfg.linger_ms,
            compression: cfg.compression,
            records_per_sec,
            produce_p99_ms,
            delivered,
            shared_batch_copies,
        }
    })
}

/// One point of the `--fig throughput` sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Producer `batch.size` in bytes.
    pub batch_max_bytes: usize,
    /// Producer linger in milliseconds.
    pub linger_ms: u64,
    /// Whether batch compression was on.
    pub compression: bool,
    /// Simulated end-to-end records per second.
    pub records_per_sec: f64,
    /// 99th-percentile produce ack latency, milliseconds.
    pub produce_p99_ms: f64,
}

/// **Throughput** — the `--fig throughput` sweep: simulated records/s and
/// produce p99 across the batching grid (`batch_max_bytes` ×
/// `linger_ms` × compression on/off) on the hot-path loop. The shape the
/// figure demonstrates: throughput climbs steeply with batch size until
/// the offered rate is met, extra linger mostly trades produce latency,
/// and compression shaves wire bytes for a CPU surcharge.
pub fn throughput_sweep(scale: Scale, seed: u64) -> Vec<ThroughputPoint> {
    let (records, interval, duration) = hotpath_load(scale);
    let (bytes, lingers): (&[usize], &[u64]) = match scale {
        Scale::Full => (&[1_024, 4_096, 16_384, 65_536], &[1, 5]),
        Scale::Quick => (&[1_024, 65_536], &[1, 5]),
        Scale::Smoke => (&[1_024, 65_536], &[2]),
    };
    let mut grid = Vec::new();
    for &batch_max_bytes in bytes {
        for &linger_ms in lingers {
            for compression in [false, true] {
                grid.push((batch_max_bytes, linger_ms, compression));
            }
        }
    }
    crate::executor::parallel_map(&grid, |&(batch_max_bytes, linger_ms, compression)| {
        let cfg = HotpathCfg {
            batching: true,
            batch_max_bytes,
            linger_ms,
            compression,
        };
        let (records_per_sec, produce_p99_ms, _, _) =
            hotpath_run(records, interval, duration, seed, cfg);
        ThroughputPoint {
            batch_max_bytes,
            linger_ms,
            compression,
            records_per_sec,
            produce_p99_ms,
        }
    })
}

/// Collects results per component into labeled series for plotting.
pub fn group_by_component(
    data: &[(Component, u64, f64)],
) -> BTreeMap<&'static str, Vec<(f64, f64)>> {
    let mut map: BTreeMap<&'static str, Vec<(f64, f64)>> = BTreeMap::new();
    for (c, ms, v) in data {
        map.entry(c.label()).or_default().push((*ms as f64, *v));
    }
    map
}
