//! # s2g-bench — the evaluation harness
//!
//! One function per table/figure of the paper's evaluation, shared between
//! the `figures` regeneration binary and the Criterion benches. Each
//! function builds the experiment's scenario(s), runs them, and returns the
//! series the paper plots; `scale` lets tests and benches run reduced
//! versions (shorter durations, fewer points) with the same code path.

#![warn(missing_docs)]

pub mod executor;
pub mod experiments;
pub mod simcore;

pub use executor::{parallel_map, parallel_map_with, sweep_threads};
pub use simcore::{simcore_sweep, SimcorePoint};

pub use experiments::{
    broker_recovery_sweep, broker_replication_sweep, compaction_sweep, fig5_sweep, fig6_run,
    fig7a_sweep, fig7b_sweep, fig8_sweep, fig9_sweep, group_by_component, hotpath_sweep,
    scaling_sweep, store_replication_sweep, table2_inventory, throughput_sweep, timeline_sweep,
    BrokerRecoveryPoint, BrokerReplicationPoint, CompactionPoint, Component, Fig6Data, Fig9Point,
    HotpathPoint, ReplicationPoint, Scale, ScalingPoint, ThroughputPoint, TimelineData,
};
