//! Simulation-kernel micro-benchmarks (`--bench simcore`).
//!
//! Three synthetic workloads stress the event queue itself — not the
//! protocol stacks built on top of it — and run each one under both the
//! calendar-queue scheduler and the reference `BinaryHeap` scheduler with
//! the same seed:
//!
//! * **timer-churn** — thousands of processes each keeping dozens of
//!   timers armed, re-arming on fire and cancelling a slice of them. This
//!   is the queue-dominated regime the calendar queue exists for: O(1)
//!   bucket filing versus O(log n) sift plus a token hash-map on the
//!   reference heap.
//! * **fan-out** — one hub broadcasting to hundreds of receivers every
//!   round, so most events land in a handful of near-identical timestamps.
//!   This is the calendar queue's worst alignment; the floor only asserts
//!   it stays within a constant factor of the heap.
//! * **kill-respawn** — a worker pool with armed timers while an external
//!   driver kills and respawns batches between steps, exercising
//!   incarnation bumps and voided-event draining.
//!
//! Every workload asserts the two schedulers agree on [`SimStats`] and the
//! final clock before any rate is reported, so the benchmark doubles as a
//! coarse differential check; `perf-gate` in CI compares the reported
//! ratios against `crates/bench/baselines/simcore_floor.json`.

use std::time::Instant;

use s2g_sim::{
    downcast, Ctx, Message, Process, ProcessId, SchedulerKind, Sim, SimDuration, SimStats, SimTime,
    TimerToken,
};

use crate::experiments::Scale;

const SEED: u64 = 0xC0FFEE;

/// One row of the `--bench simcore` output: a workload measured under both
/// schedulers.
#[derive(Debug, Clone)]
pub struct SimcorePoint {
    /// Workload label (`timer-churn`, `fan-out`, `kill-respawn`).
    pub workload: &'static str,
    /// Events the calendar run processed (identical to the reference run
    /// whenever `stats_match` holds).
    pub events: u64,
    /// Calendar-queue scheduler throughput, events per wall-clock second.
    pub calendar_events_per_sec: f64,
    /// Reference `BinaryHeap` scheduler throughput.
    pub reference_events_per_sec: f64,
    /// `calendar_events_per_sec / reference_events_per_sec`.
    pub ratio: f64,
    /// Whether both schedulers produced identical [`SimStats`] and final
    /// clocks — a cheap differential check riding along with the numbers.
    pub stats_match: bool,
}

/// A small multiplicative LCG; the workloads must be cheap enough that the
/// queue dominates, so they avoid `StdRng` in their own logic.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Workload: timer-churn
// ---------------------------------------------------------------------------

struct ChurnProc {
    rng: Lcg,
    tokens: Vec<TimerToken>,
    timers: u32,
    fires: u64,
}

impl ChurnProc {
    fn new(id: u32, timers: u32) -> Self {
        ChurnProc {
            rng: Lcg(u64::from(id).wrapping_mul(0x9e37_79b9) ^ SEED),
            tokens: Vec::with_capacity(64),
            timers,
            fires: 0,
        }
    }

    /// Mostly in-wheel delays (1–120 ms); every sixteenth draw lands in the
    /// overflow heap (200–500 ms) so far-future migration stays exercised.
    fn delay(&mut self) -> SimDuration {
        if self.rng.below(16) == 0 {
            SimDuration::from_millis(200 + self.rng.below(300))
        } else {
            SimDuration::from_micros(1_000 + self.rng.below(119_000))
        }
    }

    fn remember(&mut self, token: TimerToken) {
        if self.tokens.len() >= 64 {
            let i = (self.fires % 64) as usize;
            self.tokens[i] = token;
        } else {
            self.tokens.push(token);
        }
    }
}

impl Process for ChurnProc {
    fn name(&self) -> &str {
        "churn"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for tag in 0..u64::from(self.timers) {
            let d = self.delay();
            let t = ctx.set_timer(d, tag);
            self.remember(t);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        self.fires += 1;
        // Every eighth fire cancels a remembered token (often stale — the
        // cancel path must stay cheap either way).
        if self.fires.is_multiple_of(8) && !self.tokens.is_empty() {
            let i = self.rng.below(self.tokens.len() as u64) as usize;
            ctx.cancel_timer(self.tokens[i]);
        }
        let d = self.delay();
        let t = ctx.set_timer(d, tag);
        self.remember(t);
    }
}

fn run_timer_churn(kind: SchedulerKind, scale: Scale) -> (SimStats, SimTime) {
    // The live-timer population (procs × timers) is what separates the two
    // schedulers — the heap pays O(log n) per op, the calendar O(1) — so
    // even Smoke keeps tens of thousands of timers in flight and scales
    // down the simulated duration instead.
    let (procs, timers, run_ms) = match scale {
        Scale::Full => (2_500u32, 96u32, 1_500u64),
        Scale::Quick => (2_000, 64, 800),
        Scale::Smoke => (2_000, 48, 500),
    };
    let mut sim = Sim::with_scheduler(SEED, kind);
    for i in 0..procs {
        sim.spawn(Box::new(ChurnProc::new(i, timers)));
    }
    sim.run_until(SimTime::from_millis(run_ms));
    (sim.stats(), sim.now())
}

// ---------------------------------------------------------------------------
// Workload: fan-out
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Ping {
    round: u64,
}

impl Message for Ping {
    fn wire_size(&self) -> usize {
        16
    }
}

struct Hub {
    receivers: u32,
    rounds: u64,
    max_rounds: u64,
}

impl Process for Hub {
    fn name(&self) -> &str {
        "hub"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_micros(500), 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.rounds += 1;
        for r in 1..=self.receivers {
            ctx.send(ProcessId(r), Ping { round: self.rounds });
        }
        if self.rounds < self.max_rounds {
            ctx.set_timer(SimDuration::from_micros(500), 0);
        }
    }
}

struct Receiver {
    seen: u64,
}

impl Process for Receiver {
    fn name(&self) -> &str {
        "receiver"
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ProcessId, msg: Box<dyn Message>) {
        let ping = downcast::<Ping>(msg).expect("ping");
        self.seen += 1;
        // Every fourth round each receiver arms a short timer, mixing a
        // trickle of timer traffic into the delivery-dominated stream.
        if ping.round.is_multiple_of(4) {
            ctx.set_timer(SimDuration::from_micros(50 + (self.seen % 97)), ping.round);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
}

fn run_fan_out(kind: SchedulerKind, scale: Scale) -> (SimStats, SimTime) {
    let (receivers, rounds) = match scale {
        Scale::Full => (512u32, 1_000u64),
        Scale::Quick => (256, 500),
        Scale::Smoke => (128, 300),
    };
    let mut sim = Sim::with_scheduler(SEED, kind);
    sim.spawn(Box::new(Hub {
        receivers,
        rounds: 0,
        max_rounds: rounds,
    }));
    for _ in 0..receivers {
        sim.spawn(Box::new(Receiver { seen: 0 }));
    }
    sim.run_until(SimTime::from_millis(rounds + 100));
    (sim.stats(), sim.now())
}

// ---------------------------------------------------------------------------
// Workload: kill-respawn storm
// ---------------------------------------------------------------------------

struct Worker {
    rng: Lcg,
}

impl Worker {
    fn new(id: u32, epoch: u64) -> Self {
        Worker {
            rng: Lcg(u64::from(id) ^ (epoch << 32) ^ SEED),
        }
    }
}

impl Process for Worker {
    fn name(&self) -> &str {
        "worker"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for tag in 0..8u64 {
            let d = SimDuration::from_micros(1_000 + self.rng.below(49_000));
            ctx.set_timer(d, tag);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let d = SimDuration::from_micros(1_000 + self.rng.below(49_000));
        ctx.set_timer(d, tag);
    }
}

fn run_kill_respawn(kind: SchedulerKind, scale: Scale) -> (SimStats, SimTime) {
    let (workers, steps) = match scale {
        Scale::Full => (256u32, 50u64),
        Scale::Quick => (128, 25),
        Scale::Smoke => (64, 12),
    };
    let mut sim = Sim::with_scheduler(SEED, kind);
    for i in 0..workers {
        sim.spawn(Box::new(Worker::new(i, 0)));
    }
    let mut driver = Lcg(SEED ^ 0x5707);
    let mut t = SimTime::ZERO;
    for step in 1..=steps {
        t += SimDuration::from_millis(20);
        sim.run_until(t);
        // Kill roughly a quarter of the live pool, respawn everything that
        // is down — each respawn voids the victim's in-flight timers and
        // arms a fresh set under a bumped incarnation.
        for i in 0..workers {
            let pid = ProcessId(i);
            if sim.is_alive(pid) {
                if driver.below(4) == 0 {
                    sim.kill(pid);
                }
            } else {
                sim.respawn(pid, Box::new(Worker::new(i, step)));
            }
        }
    }
    sim.run_until(t + SimDuration::from_millis(100));
    (sim.stats(), sim.now())
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Runs `work` under `kind` twice and keeps the faster wall-clock pass —
/// the first pass also warms allocator and cache state.
fn measure(
    kind: SchedulerKind,
    work: &dyn Fn(SchedulerKind) -> (SimStats, SimTime),
) -> (SimStats, SimTime, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..2 {
        // s2g-lint: allow(wall-clock) — benchmark harness timing host throughput, outside the sim
        let start = Instant::now();
        let (stats, now) = work(kind);
        let secs = start.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        out = Some((stats, now));
    }
    let (stats, now) = out.expect("at least one pass");
    (stats, now, best)
}

fn bench_one(
    workload: &'static str,
    work: &dyn Fn(SchedulerKind) -> (SimStats, SimTime),
) -> SimcorePoint {
    let (cal_stats, cal_now, cal_secs) = measure(SchedulerKind::Calendar, work);
    let (ref_stats, ref_now, ref_secs) = measure(SchedulerKind::Reference, work);
    let stats_match = cal_stats == ref_stats && cal_now == ref_now;
    let events = cal_stats.events_processed;
    let calendar_events_per_sec = events as f64 / cal_secs.max(1e-9);
    let reference_events_per_sec = ref_stats.events_processed as f64 / ref_secs.max(1e-9);
    SimcorePoint {
        workload,
        events,
        calendar_events_per_sec,
        reference_events_per_sec,
        ratio: calendar_events_per_sec / reference_events_per_sec.max(1e-9),
        stats_match,
    }
}

/// **Simcore** — the `--bench simcore` sweep: each kernel workload timed
/// under both schedulers at the given [`Scale`].
pub fn simcore_sweep(scale: Scale) -> Vec<SimcorePoint> {
    vec![
        bench_one("timer-churn", &|kind| run_timer_churn(kind, scale)),
        bench_one("fan-out", &|kind| run_fan_out(kind, scale)),
        bench_one("kill-respawn", &|kind| run_kill_respawn(kind, scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_reports_matching_stats() {
        let points = simcore_sweep(Scale::Smoke);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.stats_match, "{}: schedulers disagreed", p.workload);
            assert!(p.events > 1_000, "{}: only {} events", p.workload, p.events);
            assert!(p.ratio.is_finite() && p.ratio > 0.0, "{}", p.workload);
        }
    }
}
