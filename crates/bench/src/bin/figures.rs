//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p s2g-bench --bin figures -- \
//!     [--fig 5|6|7a|7b|8|9|recovery|compaction|replication|broker-replication|scaling|timeline|throughput|table2|all] \
//!     [--bench hotpath|simcore] \
//!     [--quick|--smoke]
//! ```
//!
//! `--quick` runs reduced parameters; `--smoke` runs the minimal CI preset
//! whose only job is to prove every figure still generates. `--bench
//! hotpath` runs the record-hot-path micro-benchmark and `--bench simcore`
//! races the calendar-queue scheduler against the reference heap; each
//! writes a `target/figures/BENCH_*.json` for the CI perf gate.
//!
//! Sweeps fan their points across a thread pool (see `s2g_bench::executor`)
//! and merge by input index, so the CSVs are byte-identical at any thread
//! count; set `S2G_BENCH_THREADS=1` to force the sequential path.
//!
//! ASCII renderings go to stdout; CSV data lands under `target/figures/`.

use std::fs;
use std::path::PathBuf;

use s2g_bench::experiments::table2_inventory;
use s2g_bench::{
    broker_recovery_sweep, broker_replication_sweep, compaction_sweep, fig5_sweep, fig6_run,
    fig7a_sweep, fig7b_sweep, fig8_sweep, fig9_sweep, group_by_component, hotpath_sweep,
    scaling_sweep, simcore_sweep, store_replication_sweep, throughput_sweep, timeline_sweep,
    Component, Scale,
};
use s2g_broker::CoordinationMode;
use s2g_core::{ascii_chart, ascii_matrix, ascii_table, cdf, csv_series};

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

fn write_csv(name: &str, contents: &str) {
    let path = out_dir().join(name);
    fs::write(&path, contents).expect("write csv");
    println!("  wrote {}", path.display());
}

fn fig5(scale: Scale) {
    println!("\n#### Figure 5: end-to-end latency vs per-component link delay ####");
    let delays = [25u64, 50, 75, 100, 125, 150];
    let data = fig5_sweep(&delays, scale, 42);
    let grouped = group_by_component(&data);
    let series: Vec<(&str, &[(f64, f64)])> =
        grouped.iter().map(|(k, v)| (*k, v.as_slice())).collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 5: word count E2E latency",
            &series,
            64,
            14,
            "link delay (ms)",
            "latency (s)"
        )
    );
    write_csv("fig5.csv", &csv_series("delay_ms", &series));
}

fn fig6(scale: Scale) {
    println!("\n#### Figure 6: network partitioning (ZooKeeper mode) ####");
    let sites = match scale {
        Scale::Full => 10,
        Scale::Quick => 6,
        Scale::Smoke => 3,
    };
    let zk = fig6_run(CoordinationMode::Zk, sites, scale, 1);
    let rows: Vec<(String, &[bool])> = zk
        .matrix
        .received
        .iter()
        .enumerate()
        .map(|(i, r)| (format!("consumer {i}"), r.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_matrix("Fig 6b: delivery matrix (co-located producer)", &rows, 72)
    );
    println!(
        "  acked-but-lost messages: {} | records truncated on heal: {}",
        zk.lost_messages, zk.truncated_records
    );
    println!(
        "{}",
        ascii_chart(
            "Fig 6c: message latency at a remote consumer",
            &[("topic A", &zk.latency_a), ("topic B", &zk.latency_b)],
            64,
            14,
            "delivery time (s)",
            "latency (s)",
        )
    );
    let tx: Vec<(&str, Vec<(f64, f64)>)> = zk
        .tx_series
        .iter()
        .map(|s| {
            (
                s.node.as_str(),
                s.samples
                    .iter()
                    .map(|p| (p.at.as_secs_f64(), p.tx_mbps))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let tx_refs: Vec<(&str, &[(f64, f64)])> = tx.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 6d: sending throughput",
            &tx_refs,
            64,
            12,
            "time (s)",
            "tx (Mbps)"
        )
    );
    println!(
        "  topic-a leadership events on broker 0 (time_s, became_leader): {:?}",
        zk.leader_events
    );
    write_csv(
        "fig6c.csv",
        &csv_series(
            "delivered_s",
            &[("topic_a", &zk.latency_a), ("topic_b", &zk.latency_b)],
        ),
    );
    write_csv("fig6d.csv", &csv_series("time_s", &tx_refs));

    println!("\n  -- same scenario under KRaft coordination (the paper's contrast) --");
    let kraft = fig6_run(CoordinationMode::Kraft, sites, scale, 1);
    println!(
        "  KRaft acked-but-lost messages: {} (expected 0)",
        kraft.lost_messages
    );
}

fn fig7a(scale: Scale) {
    println!("\n#### Figure 7a: Ichinose et al. — throughput vs consumers ####");
    let counts: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8, 16],
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Smoke => &[1, 4],
    };
    let data = fig7a_sweep(counts, 5);
    let series: Vec<(f64, f64)> = data.iter().map(|(n, t)| (*n as f64, *t)).collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 7a: transfer throughput",
            &[("stream2gym", &series)],
            56,
            12,
            "consumers",
            "imgs/s"
        )
    );
    for (n, t) in &data {
        println!("  {n:>2} consumers: {t:>10.0} imgs/s");
    }
    write_csv(
        "fig7a.csv",
        &csv_series("consumers", &[("imgs_per_s", &series)]),
    );
}

fn fig7b(scale: Scale) {
    println!("\n#### Figure 7b: Ocampo et al. — normalized runtime vs users ####");
    let users: &[u32] = match scale {
        Scale::Full => &[20, 40, 60, 80, 100],
        Scale::Quick => &[20, 60, 100],
        Scale::Smoke => &[10, 30],
    };
    let data = fig7b_sweep(users, scale, 3);
    let series: Vec<(f64, f64)> = data.iter().map(|(u, r)| (*u as f64, *r)).collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 7b: normalized slot runtime",
            &[("stream2gym", &series)],
            56,
            12,
            "concurrent users",
            "runtime (x1)"
        )
    );
    for (u, r) in &data {
        println!("  {u:>3} users: {r:.3}x");
    }
    write_csv(
        "fig7b.csv",
        &csv_series("users", &[("normalized_runtime", &series)]),
    );
}

fn fig8(scale: Scale) {
    println!("\n#### Figure 8: accuracy vs the hardware backend ####");
    let delays = [25u64, 50, 75, 100, 125, 150];
    for (sub, component) in [
        ("8a (broker link)", Component::Broker),
        ("8b (SPE link)", Component::Spe),
    ] {
        let data = fig8_sweep(&delays, component, scale, 42);
        let mut emu: Vec<(f64, f64)> = Vec::new();
        let mut hw: Vec<(f64, f64)> = Vec::new();
        for (backend, ms, v) in &data {
            if *backend == "stream2gym" {
                emu.push((*ms as f64, *v));
            } else {
                hw.push((*ms as f64, *v));
            }
        }
        println!(
            "{}",
            ascii_chart(
                &format!("Fig {sub}: emulation vs hardware"),
                &[("stream2gym", &emu), ("hardware", &hw)],
                64,
                12,
                "link delay (ms)",
                "latency (s)",
            )
        );
        let max_gap = emu
            .iter()
            .zip(&hw)
            .map(|((_, a), (_, b))| (a - b).abs() / b.max(1e-9))
            .fold(0.0f64, f64::max);
        println!(
            "  max relative gap between backends: {:.1}%",
            max_gap * 100.0
        );
        write_csv(
            &format!(
                "fig{}.csv",
                if component == Component::Broker {
                    "8a"
                } else {
                    "8b"
                }
            ),
            &csv_series("delay_ms", &[("stream2gym", &emu), ("hardware", &hw)]),
        );
    }
}

fn fig9(scale: Scale) {
    println!("\n#### Figure 9: resource usage vs coordinating sites ####");
    let sites: &[u32] = match scale {
        Scale::Full => &[2, 4, 6, 8, 10],
        Scale::Quick => &[2, 6, 10],
        Scale::Smoke => &[2, 4],
    };
    let sweep32 = fig9_sweep(sites, 32 << 20, scale, 7);
    // Fig 9a: CPU CDFs.
    let cdfs: Vec<(String, Vec<(f64, f64)>)> = sweep32
        .iter()
        .map(|p| {
            (
                format!("{} sites", p.sites),
                cdf(&p.cpu_samples)
                    .into_iter()
                    .map(|(v, f)| (v * 100.0, f))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let cdf_refs: Vec<(&str, &[(f64, f64)])> = cdfs
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 9a: CPU utilization CDF",
            &cdf_refs,
            64,
            12,
            "CPU utilization (%)",
            "CDF"
        )
    );
    // Fig 9b: median CPU.
    let medians: Vec<(f64, f64)> = sweep32
        .iter()
        .map(|p| (p.sites as f64, p.cpu_median * 100.0))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 9b: median CPU usage",
            &[("median", &medians)],
            48,
            10,
            "# of coordinating sites",
            "CPU (%)"
        )
    );
    // Fig 9c: peak memory for 16 vs 32 MB producer buffers.
    let sweep16 = fig9_sweep(sites, 16 << 20, scale, 7);
    let mem32: Vec<(f64, f64)> = sweep32
        .iter()
        .map(|p| (p.sites as f64, p.peak_mem_fraction * 100.0))
        .collect();
    let mem16: Vec<(f64, f64)> = sweep16
        .iter()
        .map(|p| (p.sites as f64, p.peak_mem_fraction * 100.0))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "Fig 9c: peak memory usage",
            &[("16 MB", &mem16), ("32 MB", &mem32)],
            48,
            10,
            "# of coordinating sites",
            "peak memory (%)",
        )
    );
    write_csv(
        "fig9b.csv",
        &csv_series("sites", &[("median_cpu_pct", &medians)]),
    );
    write_csv(
        "fig9c.csv",
        &csv_series("sites", &[("mem16_pct", &mem16), ("mem32_pct", &mem32)]),
    );
}

fn recovery(scale: Scale) {
    println!("\n#### Broker recovery latency vs pre-crash log size ####");
    let counts: &[u64] = match scale {
        Scale::Full => &[200, 1_000, 2_500, 5_000, 10_000],
        Scale::Quick => &[100, 400, 800],
        Scale::Smoke => &[50, 200],
    };
    let points = broker_recovery_sweep(counts, scale, 9);
    let replay: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.records as f64, p.replay_latency_s))
        .collect();
    let unavail: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.records as f64, p.unavailability_s))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "broker recovery latency",
            &[("replay", &replay), ("unavailability", &unavail)],
            64,
            12,
            "records in log at crash",
            "latency (s)",
        )
    );
    for p in &points {
        println!(
            "  {:>6} records | {:>3} segments | {:>8} B replayed | replay {:.4}s | unavailable {:.4}s",
            p.records, p.replayed_segments, p.replayed_bytes, p.replay_latency_s, p.unavailability_s
        );
    }
    write_csv(
        "broker_recovery.csv",
        &csv_series(
            "records",
            &[("replay_s", &replay), ("unavailability_s", &unavail)],
        ),
    );
}

fn compaction(scale: Scale) {
    println!("\n#### Bounded recovery: incremental checkpoints + log compaction ####");
    let counts: &[u64] = match scale {
        Scale::Full => &[500, 1_000, 2_500, 5_000, 10_000],
        Scale::Quick => &[200, 600, 1_200],
        Scale::Smoke => &[100, 300],
    };
    let points = compaction_sweep(counts, scale, 13);
    let full_bytes: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.history as f64, p.full_snapshot_bytes as f64))
        .collect();
    let delta_bytes: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.history as f64, p.delta_snapshot_bytes as f64))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "snapshot bytes vs history",
            &[("full", &full_bytes), ("incremental", &delta_bytes)],
            64,
            12,
            "records produced",
            "bytes/ckpt",
        )
    );
    let raw_replay: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.history as f64, p.raw_replay_s))
        .collect();
    let compacted_replay: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.history as f64, p.compacted_replay_s))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "broker replay latency vs history",
            &[("raw log", &raw_replay), ("compacted", &compacted_replay)],
            64,
            12,
            "records produced",
            "replay (s)",
        )
    );
    for p in &points {
        println!(
            "  {:>6} records | snapshot {:>8} B full / {:>6} B delta | replay {:>6} rec {:.4}s raw / {:>5} rec {:.4}s compacted | {:>8} B saved",
            p.history,
            p.full_snapshot_bytes,
            p.delta_snapshot_bytes,
            p.raw_replay_records,
            p.raw_replay_s,
            p.compacted_replay_records,
            p.compacted_replay_s,
            p.replay_saved_bytes,
        );
    }
    write_csv(
        "compaction.csv",
        &csv_series(
            "history",
            &[
                ("full_snapshot_bytes", &full_bytes),
                ("delta_snapshot_bytes", &delta_bytes),
                ("raw_replay_s", &raw_replay),
                ("compacted_replay_s", &compacted_replay),
            ],
        ),
    );
}

fn replication(scale: Scale) {
    println!("\n#### Store replication: checkpoint latency & unavailability vs factor ####");
    let counts: &[usize] = match scale {
        Scale::Full => &[1, 2, 3, 5],
        Scale::Quick => &[1, 3],
        Scale::Smoke => &[1, 3],
    };
    let points = store_replication_sweep(counts, scale, 21);
    let latency_ms: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.replicas as f64, p.checkpoint_latency_s * 1_000.0))
        .collect();
    let unavail: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.replicas as f64, p.unavailability_s))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "checkpoint latency vs replication factor",
            &[("latency (ms)", &latency_ms)],
            56,
            12,
            "store replicas",
            "ms/ckpt",
        )
    );
    println!(
        "{}",
        ascii_chart(
            "durability unavailability around a store-primary crash",
            &[("unavailability (s)", &unavail)],
            56,
            12,
            "store replicas",
            "seconds",
        )
    );
    for p in &points {
        println!(
            "  {:>2} replicas | {:>3} ckpts | {:>8.3} ms/ckpt | unavailable {:>7.3}s | resync {:>5} ops",
            p.replicas,
            p.checkpoints,
            p.checkpoint_latency_s * 1_000.0,
            p.unavailability_s,
            p.resync_ops,
        );
    }
    write_csv(
        "replication.csv",
        &csv_series(
            "replicas",
            &[
                ("checkpoint_latency_ms", &latency_ms),
                ("unavailability_s", &unavail),
            ],
        ),
    );
}

fn broker_replication(scale: Scale) {
    println!("\n#### Broker replication: produce availability & tail latency vs factor ####");
    let rfs: &[u32] = match scale {
        Scale::Full => &[1, 2, 3],
        Scale::Quick => &[1, 3],
        Scale::Smoke => &[1, 3],
    };
    let points = broker_replication_sweep(rfs, scale, 27);
    let avail: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rf as f64, p.availability_pct))
        .collect();
    let p99: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rf as f64, p.produce_p99_ms))
        .collect();
    let unavail: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rf as f64, p.unavailability_s))
        .collect();
    let moves: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.rf as f64, p.leadership_moves as f64))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "produce availability (1s SLO) around a leader crash",
            &[("availability (%)", &avail)],
            56,
            12,
            "replication factor",
            "% in SLO",
        )
    );
    println!(
        "{}",
        ascii_chart(
            "produce unavailability window around a leader crash",
            &[("unavailability (s)", &unavail)],
            56,
            12,
            "replication factor",
            "seconds",
        )
    );
    for p in &points {
        println!(
            "  rf={} | available {:>6.2}% | produce p99 {:>8.2} ms | unavailable {:>6.3}s | {} leadership moves",
            p.rf, p.availability_pct, p.produce_p99_ms, p.unavailability_s, p.leadership_moves,
        );
    }
    write_csv(
        "broker_replication.csv",
        &csv_series(
            "rf",
            &[
                ("availability_pct", &avail),
                ("produce_p99_ms", &p99),
                ("unavailability_s", &unavail),
                ("leadership_moves", &moves),
            ],
        ),
    );
}

fn scaling(scale: Scale) {
    println!("\n#### Scaling: throughput & recovery vs parallelism degree ####");
    let degrees: &[usize] = match scale {
        Scale::Full => &[1, 2, 4, 8],
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Smoke => &[1, 2, 4],
    };
    let points = scaling_sweep(degrees, scale, 33);
    let throughput: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.parallelism as f64, p.throughput_rps))
        .collect();
    let crash_throughput: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.parallelism as f64, p.crash_throughput_rps))
        .collect();
    let recovery: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.parallelism as f64, p.recovery_s))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "keyed job throughput vs parallelism",
            &[
                ("fault-free (rec/s)", &throughput),
                ("one instance crashed (rec/s)", &crash_throughput),
            ],
            56,
            12,
            "parallelism",
            "records/s",
        )
    );
    for p in &points {
        println!(
            "  p={:>2} | {:>9.1} rec/s | crashed {:>9.1} rec/s | recovery {:>6.3}s",
            p.parallelism, p.throughput_rps, p.crash_throughput_rps, p.recovery_s,
        );
    }
    write_csv(
        "scaling.csv",
        &csv_series(
            "parallelism",
            &[
                ("throughput_rps", &throughput),
                ("crash_throughput_rps", &crash_throughput),
                ("recovery_s", &recovery),
            ],
        ),
    );
}

fn timeline(scale: Scale) {
    println!("\n#### Timeline: per-instance lag/throughput around a crash ####");
    let data = timeline_sweep(scale, 17);
    let lag_refs: Vec<(&str, &[(f64, f64)])> = data
        .lag
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "consumer lag per instance",
            &lag_refs,
            64,
            12,
            "time (s)",
            "records behind",
        )
    );
    let thr_refs: Vec<(&str, &[(f64, f64)])> = data
        .throughput
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "processing rate per instance",
            &thr_refs,
            64,
            12,
            "time (s)",
            "records/s",
        )
    );
    println!("  fault & recovery markers:");
    for (t, scope, name) in &data.markers {
        println!("    t={t:>7.3}s  {scope:<16} {name}");
    }
    write_csv("timeline.csv", &data.tidy_csv);
    let trace_path = out_dir().join("timeline_trace.json");
    fs::write(&trace_path, &data.chrome_json).expect("write trace json");
    println!("  wrote {}", trace_path.display());
    let summary =
        s2g_telemetry::validate_chrome_trace(&data.chrome_json).expect("well-formed chrome trace");
    println!(
        "  trace: {} events ({} spans, {} instants) across {} processes",
        summary.events, summary.spans, summary.instants, summary.processes
    );
}

fn throughput(scale: Scale) {
    println!("\n#### Throughput: records/s & produce p99 across the batching grid ####");
    let points = throughput_sweep(scale, 11);
    // One series per (linger, compression) combination, x = batch bytes.
    let mut series: std::collections::BTreeMap<String, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for p in &points {
        let label = format!(
            "linger={}ms{}",
            p.linger_ms,
            if p.compression { " lz4" } else { "" }
        );
        series
            .entry(label)
            .or_default()
            .push((p.batch_max_bytes as f64, p.records_per_sec));
    }
    let refs: Vec<(&str, &[(f64, f64)])> = series
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    println!(
        "{}",
        ascii_chart(
            "records/s vs producer batch size",
            &refs,
            64,
            12,
            "batch_max_bytes",
            "records/s",
        )
    );
    let mut csv =
        String::from("batch_max_bytes,linger_ms,compression,records_per_sec,produce_p99_ms\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{},{:.1},{:.3}\n",
            p.batch_max_bytes, p.linger_ms, p.compression, p.records_per_sec, p.produce_p99_ms
        ));
        println!(
            "  {:>6} B | linger {:>2} ms | lz4 {:<5} | {:>9.1} rec/s | produce p99 {:>9.2} ms",
            p.batch_max_bytes, p.linger_ms, p.compression, p.records_per_sec, p.produce_p99_ms,
        );
    }
    write_csv("throughput.csv", &csv);
}

fn bench_hotpath(scale: Scale) {
    println!("\n#### Bench: record hot path (produce→fetch→operator→fetch) ####");
    let points = hotpath_sweep(scale, 11);
    let unbatched = points
        .iter()
        .find(|p| p.setting == "unbatched")
        .map(|p| p.records_per_sec)
        .unwrap_or(f64::NAN);
    let best = points
        .iter()
        .filter(|p| p.setting != "unbatched")
        .map(|p| p.records_per_sec)
        .fold(f64::NAN, f64::max);
    let ratio = best / unbatched;
    let copies: u64 = points.iter().map(|p| p.shared_batch_copies).sum();
    let mut csv = String::from(
        "setting,batch_max_bytes,linger_ms,compression,records_per_sec,produce_p99_ms,delivered\n",
    );
    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n");
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str(&format!("  \"batched_vs_unbatched_ratio\": {ratio:.3},\n"));
    json.push_str(&format!("  \"shared_batch_copies\": {copies},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        println!(
            "  {:<14} | {:>9.1} rec/s | produce p99 {:>10.2} ms | {:>6} delivered",
            p.setting, p.records_per_sec, p.produce_p99_ms, p.delivered,
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.1},{:.3},{}\n",
            p.setting,
            p.batch_max_bytes,
            p.linger_ms,
            p.compression,
            p.records_per_sec,
            p.produce_p99_ms,
            p.delivered
        ));
        json.push_str(&format!(
            "    {{\"setting\": \"{}\", \"batch_max_bytes\": {}, \"linger_ms\": {}, \
             \"compression\": {}, \"records_per_sec\": {:.1}, \"produce_p99_ms\": {:.3}, \
             \"delivered\": {}}}{}\n",
            p.setting,
            p.batch_max_bytes,
            p.linger_ms,
            p.compression,
            p.records_per_sec,
            p.produce_p99_ms,
            p.delivered,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    println!(
        "  batched/unbatched ratio: {ratio:.2}x | shared batch deep copies: {copies} (want 0)"
    );
    write_csv("hotpath.csv", &csv);
    let path = out_dir().join("BENCH_hotpath.json");
    fs::write(&path, &json).expect("write bench json");
    println!("  wrote {}", path.display());
}

fn bench_simcore(scale: Scale) {
    println!("\n#### Bench: simulation kernel (calendar queue vs reference heap) ####");
    let points = simcore_sweep(scale);
    let churn_ratio = points
        .iter()
        .find(|p| p.workload == "timer-churn")
        .map(|p| p.ratio)
        .unwrap_or(f64::NAN);
    let all_match = points.iter().all(|p| p.stats_match);
    let mut csv = String::from(
        "workload,events,calendar_events_per_sec,reference_events_per_sec,ratio,stats_match\n",
    );
    let mut json = String::from("{\n  \"bench\": \"simcore\",\n");
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str(&format!("  \"timer_churn_ratio\": {churn_ratio:.3},\n"));
    json.push_str(&format!("  \"all_stats_match\": {all_match},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        println!(
            "  {:<12} | {:>9} events | calendar {:>12.0} ev/s | reference {:>12.0} ev/s | \
             {:>5.2}x | stats match: {}",
            p.workload,
            p.events,
            p.calendar_events_per_sec,
            p.reference_events_per_sec,
            p.ratio,
            p.stats_match,
        );
        csv.push_str(&format!(
            "{},{},{:.0},{:.0},{:.3},{}\n",
            p.workload,
            p.events,
            p.calendar_events_per_sec,
            p.reference_events_per_sec,
            p.ratio,
            p.stats_match
        ));
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"events\": {}, \"calendar_events_per_sec\": {:.0}, \
             \"reference_events_per_sec\": {:.0}, \"ratio\": {:.3}, \"stats_match\": {}}}{}\n",
            p.workload,
            p.events,
            p.calendar_events_per_sec,
            p.reference_events_per_sec,
            p.ratio,
            p.stats_match,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    write_csv("simcore.csv", &csv);
    let path = out_dir().join("BENCH_simcore.json");
    fs::write(&path, &json).expect("write bench json");
    println!("  wrote {}", path.display());
}

fn table2() {
    println!("\n#### Table II: example applications ####");
    let rows: Vec<Vec<String>> = table2_inventory()
        .into_iter()
        .map(|(name, comps, feat)| vec![name.to_string(), comps.to_string(), feat.to_string()])
        .collect();
    println!(
        "{}",
        ascii_table(
            "Table II",
            &["Application", "Components", "Features"],
            &rows
        )
    );
    println!("  (run each with `cargo run --example <name>`)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    if let Some(bench) = args
        .iter()
        .position(|a| a == "--bench")
        .and_then(|i| args.get(i + 1))
    {
        println!("stream2gym-rs micro-bench (scale: {scale:?})");
        match bench.as_str() {
            "hotpath" => bench_hotpath(scale),
            "simcore" => bench_simcore(scale),
            other => {
                eprintln!("unknown bench `{other}`; use hotpath|simcore");
                std::process::exit(2);
            }
        }
        return;
    }
    let which = args
        .iter()
        .position(|a| a == "--fig")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    println!("stream2gym-rs figure regeneration (scale: {scale:?})");
    match which {
        "5" => fig5(scale),
        "6" => fig6(scale),
        "7a" => fig7a(scale),
        "7b" => fig7b(scale),
        "8" => fig8(scale),
        "9" => fig9(scale),
        "recovery" => recovery(scale),
        "compaction" => compaction(scale),
        "replication" => replication(scale),
        "broker-replication" => broker_replication(scale),
        "scaling" => scaling(scale),
        "timeline" => timeline(scale),
        "throughput" => throughput(scale),
        "table2" => table2(),
        "all" => {
            table2();
            fig5(scale);
            fig6(scale);
            fig7a(scale);
            fig7b(scale);
            fig8(scale);
            fig9(scale);
            recovery(scale);
            compaction(scale);
            replication(scale);
            broker_replication(scale);
            scaling(scale);
            timeline(scale);
            throughput(scale);
        }
        other => {
            eprintln!(
                "unknown figure `{other}`; use \
                 5|6|7a|7b|8|9|recovery|compaction|replication|broker-replication|scaling|\
                 timeline|throughput|table2|all"
            );
            std::process::exit(2);
        }
    }
}
