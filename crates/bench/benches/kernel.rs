//! Microbenchmarks of the substrates: kernel event throughput, network
//! routing, the broker produce/replicate path, and SPE operators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use s2g_net::{LinkSpec, Network, NetTransport, Topology};
use s2g_sim::{downcast, Ctx, Message, Process, ProcessId, Sim, SimDuration, SimTime};
use s2g_spe::{Event, Plan, Value, WindowAggregate, WindowAssigner};

#[derive(Debug)]
struct Ping(u64);
impl Message for Ping {
    fn wire_size(&self) -> usize {
        64
    }
}

struct Bouncer {
    peer: Option<ProcessId>,
    remaining: u64,
}
impl Process for Bouncer {
    fn name(&self) -> &str {
        "bouncer"
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ProcessId, msg: Box<dyn Message>) {
        let p = downcast::<Ping>(msg).expect("ping");
        self.peer = Some(from);
        if self.remaining > 0 && p.0 > 0 {
            self.remaining -= 1;
            ctx.send(from, Ping(p.0 - 1));
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.bench_function("event_dispatch_100k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            let a = sim.spawn(Box::new(Bouncer { peer: None, remaining: u64::MAX }));
            sim.inject_at(SimTime::ZERO, a, Ping(100_000));
            sim.run_to_completion();
            assert!(sim.stats().events_processed >= 100_000);
        })
    });
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    for hosts in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("route_10k_pkts", hosts), &hosts, |b, &hosts| {
            let topo = Topology::star(hosts, LinkSpec::new().latency_ms(1).bandwidth_mbps(100.0))
                .unwrap();
            b.iter(|| {
                let net = Network::new(topo.clone()).into_handle();
                let mut sim = Sim::new(1);
                sim.set_transport(Box::new(NetTransport(net.clone())));
                let a = sim.spawn(Box::new(Bouncer { peer: None, remaining: u64::MAX }));
                let z = sim.spawn(Box::new(Bouncer { peer: None, remaining: u64::MAX }));
                {
                    let mut n = net.borrow_mut();
                    let h1 = n.topology().lookup("h1").unwrap();
                    let h2 = n.topology().lookup(&format!("h{hosts}")).unwrap();
                    n.place(a, h1);
                    n.place(z, h2);
                }
                sim.inject_at(SimTime::ZERO, a, Ping(10_000));
                sim.run_to_completion();
            })
        });
    }
    g.finish();
}

fn bench_spe_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("spe");
    g.bench_function("flatmap_filter_10k_events", |b| {
        b.iter(|| {
            let mut plan = Plan::new()
                .flat_map("split", |e| {
                    e.value
                        .as_str()
                        .unwrap_or("")
                        .split_whitespace()
                        .map(|w| Event { value: Value::Str(w.into()), ..e.clone() })
                        .collect()
                })
                .filter("len", |e| e.value.as_str().is_some_and(|s| s.len() > 2));
            let batch: Vec<Event> = (0..10_000)
                .map(|i| {
                    Event::new(
                        Value::Str("alpha beta gamma delta".into()),
                        SimTime::from_millis(i),
                    )
                })
                .collect();
            let out = plan.run_batch(SimTime::ZERO, batch);
            assert_eq!(out.len(), 40_000);
        })
    });
    g.bench_function("window_count_10k_events", |b| {
        b.iter(|| {
            let mut plan = Plan::new().key_by("k", |e| {
                ((e.ts.as_millis() / 7) % 16).to_string()
            });
            let mut agg = WindowAggregate::count(
                "w",
                WindowAssigner::Tumbling(SimDuration::from_secs(1)),
            );
            let batch: Vec<Event> = (0..10_000)
                .map(|i| Event::new(Value::Int(i as i64), SimTime::from_millis(i * 3)))
                .collect();
            let keyed = plan.run_batch(SimTime::ZERO, batch);
            use s2g_spe::Operator;
            let _ = agg.process(SimTime::ZERO, keyed);
            let out = agg.flush(SimTime::ZERO);
            assert!(!out.is_empty());
        })
    });
    g.bench_function("event_codec_roundtrip_10k", |b| {
        let e = Event::new(
            Value::map([
                ("service", Value::Str("web".into())),
                ("bytes", Value::Int(1400)),
                ("rate", Value::Float(3.25)),
            ]),
            SimTime::from_millis(5),
        )
        .with_key("u1");
        b.iter(|| {
            for _ in 0..10_000 {
                let bytes = e.to_bytes();
                let back = Event::from_bytes(&bytes).unwrap();
                assert_eq!(back.key, e.key);
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernel, bench_network, bench_spe_operators
}
criterion_main!(benches);
