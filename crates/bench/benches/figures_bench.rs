//! Scenario-level benches: one per paper figure family, at Quick scale so
//! `cargo bench` regenerates every experiment's code path measurably.

use criterion::{criterion_group, criterion_main, Criterion};

use s2g_bench::{
    fig5_sweep, fig6_run, fig7a_sweep, fig7b_sweep, fig8_sweep, fig9_sweep, Component, Scale,
};
use s2g_broker::CoordinationMode;

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_latency_one_point", |b| {
        b.iter(|| {
            let data = fig5_sweep(&[100], Scale::Quick, 42);
            assert_eq!(data.len(), 4);
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_partition_zk", |b| {
        b.iter(|| {
            let d = fig6_run(CoordinationMode::Zk, 4, Scale::Quick, 1);
            assert!(d.truncated_records > 0);
        })
    });
}

fn bench_fig7a(c: &mut Criterion) {
    c.bench_function("fig7a_consumers_4", |b| {
        b.iter(|| {
            let d = fig7a_sweep(&[4], 5);
            assert!(d[0].1 > 0.0);
        })
    });
}

fn bench_fig7b(c: &mut Criterion) {
    c.bench_function("fig7b_users_20", |b| {
        b.iter(|| {
            let d = fig7b_sweep(&[20], Scale::Quick, 3);
            assert!((d[0].1 - 1.0).abs() < 1e-9);
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_accuracy_one_point", |b| {
        b.iter(|| {
            let d = fig8_sweep(&[100], Component::Broker, Scale::Quick, 42);
            assert_eq!(d.len(), 2);
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9_resources_4_sites", |b| {
        b.iter(|| {
            let d = fig9_sweep(&[4], 32 << 20, Scale::Quick, 7);
            assert!(d[0].peak_mem_fraction > 0.0);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5, bench_fig6, bench_fig7a, bench_fig7b, bench_fig8, bench_fig9
}
criterion_main!(benches);
