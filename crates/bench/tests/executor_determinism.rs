//! The parallel sweep runner must be observably identical to the
//! sequential one: every figure sweep merges worker results by input
//! index, so thread count (and completion order) must never leak into the
//! output.

use s2g_bench::{hotpath_sweep, parallel_map_with, Scale};

/// One test function on purpose: it twiddles the process-wide
/// `S2G_BENCH_THREADS` variable, and a second concurrent test in this
/// binary could race it.
#[test]
fn sweep_output_is_identical_at_any_thread_count() {
    std::env::set_var("S2G_BENCH_THREADS", "4");
    let parallel = hotpath_sweep(Scale::Smoke, 11);
    std::env::set_var("S2G_BENCH_THREADS", "1");
    let sequential = hotpath_sweep(Scale::Smoke, 11);
    std::env::remove_var("S2G_BENCH_THREADS");
    // HotpathPoint carries floats; the sweeps are seeded and the merge is
    // by index, so the Debug renderings must match byte for byte.
    assert_eq!(format!("{parallel:?}"), format!("{sequential:?}"));

    // And the executor itself, across a spread of worker counts.
    let items: Vec<u64> = (0..53).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761)).collect();
    for threads in [1, 2, 3, 8, 64] {
        let got = parallel_map_with(threads, &items, |&x| x.wrapping_mul(2654435761));
        assert_eq!(got, expect, "threads={threads}");
    }
}
