//! Time-series sampling: the per-metric series store and the
//! scheduler-driven sampler process.
//!
//! The sampler mirrors stream2gym's monitoring tasks: a daemon that wakes
//! on a fixed interval and snapshots every runtime signal. Here the wake-up
//! is a simulation timer, so sampling is deterministic and adds zero
//! wall-clock overhead; it consumes no randomness and sends no messages,
//! which keeps same-seed runs byte-identical with telemetry enabled.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use s2g_sim::{CpuHandle, Ctx, Message, Process, ProcessId, SimDuration, SimTime};

use crate::metrics::Registry;

/// One metric's sampled time series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Owning process identity.
    pub scope: String,
    /// Signal name.
    pub name: String,
    /// `(instant, value)` samples in time order.
    pub points: Vec<(SimTime, f64)>,
}

impl MetricSeries {
    /// The series as `(seconds, value)` pairs, ready for charts and CSV.
    pub fn as_secs(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), *v))
            .collect()
    }
}

/// All sampled series for a run, keyed by `(scope, name)` and kept in
/// first-sample order.
#[derive(Debug, Default)]
pub struct SeriesStore {
    series: Vec<MetricSeries>,
    index: BTreeMap<(String, String), usize>,
}

impl SeriesStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// Appends a sample to the `(scope, name)` series, creating it on
    /// first use.
    pub fn record(&mut self, at: SimTime, scope: &str, name: &str, value: f64) {
        let key = (scope.to_string(), name.to_string());
        let idx = match self.index.get(&key) {
            Some(idx) => *idx,
            None => {
                let idx = self.series.len();
                self.series.push(MetricSeries {
                    scope: key.0.clone(),
                    name: key.1.clone(),
                    points: Vec::new(),
                });
                self.index.insert(key, idx);
                idx
            }
        };
        self.series[idx].points.push((at, value));
    }

    /// Looks up one series; `None` when the metric was never sampled.
    pub fn get(&self, scope: &str, name: &str) -> Option<&MetricSeries> {
        self.index
            .get(&(scope.to_string(), name.to_string()))
            .map(|i| &self.series[*i])
    }

    /// All series in first-sample order.
    pub fn all(&self) -> &[MetricSeries] {
        &self.series
    }

    /// Series whose metric name equals `name`, across scopes.
    pub fn by_name<'a>(&'a self, name: &str) -> Vec<&'a MetricSeries> {
        self.series.iter().filter(|s| s.name == name).collect()
    }

    /// Exports every sample as tidy CSV: one `t_s,scope,metric,value` row
    /// per observation, ordered by series registration then time.
    pub fn to_tidy_csv(&self) -> String {
        let mut out = String::from("t_s,scope,metric,value\n");
        for s in &self.series {
            for (t, v) in &s.points {
                let _ = writeln!(out, "{},{},{},{}", t.as_secs_f64(), s.scope, s.name, v);
            }
        }
        out
    }
}

/// A shared handle to a [`SeriesStore`].
pub type SeriesHandle = Rc<RefCell<SeriesStore>>;

/// A shared handle to a [`Registry`].
pub type RegistryHandle = Rc<RefCell<Registry>>;

/// The sampling daemon: a simulated process that snapshots the registry
/// into the series store every `interval`, and derives host CPU occupancy
/// from the attached CPU models on the way.
pub struct TelemetrySampler {
    registry: RegistryHandle,
    series: SeriesHandle,
    interval: SimDuration,
    /// `(host, cpu, busy-at-last-tick)`; occupancy over a window is the
    /// busy-time delta divided by `cores * interval`.
    cpus: Vec<(String, CpuHandle, SimDuration)>,
}

impl TelemetrySampler {
    /// Creates a sampler over `registry`/`series` ticking every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(
        registry: RegistryHandle,
        series: SeriesHandle,
        interval: SimDuration,
        cpus: Vec<(String, CpuHandle)>,
    ) -> Self {
        assert!(!interval.is_zero(), "telemetry interval must be positive");
        TelemetrySampler {
            registry,
            series,
            interval,
            cpus: cpus
                .into_iter()
                .map(|(h, c)| (h, c, SimDuration::ZERO))
                .collect(),
        }
    }

    fn tick(&mut self, now: SimTime) {
        // Host CPU occupancy first, so the snapshot below includes it.
        {
            let mut reg = self.registry.borrow_mut();
            for (host, cpu, last) in &mut self.cpus {
                let cpu = cpu.borrow();
                let busy = cpu.total_busy();
                let delta = busy.saturating_sub(*last);
                *last = busy;
                let capacity = self.interval.as_secs_f64() * cpu.cores() as f64;
                let occ = (delta.as_secs_f64() / capacity).min(1.0);
                reg.gauge_set(&format!("host-{host}"), "cpu_occupancy", occ);
            }
        }
        let reg = self.registry.borrow();
        let mut series = self.series.borrow_mut();
        for m in reg.metrics() {
            series.record(now, &m.scope, &m.name, m.value.sample());
        }
    }
}

impl Process for TelemetrySampler {
    fn name(&self) -> &str {
        "telemetry-sampler"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: ProcessId, _msg: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        self.tick(ctx.now());
        ctx.set_timer(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_records_and_exports_tidy_csv() {
        let mut s = SeriesStore::new();
        s.record(SimTime::from_millis(500), "broker-0", "produces", 3.0);
        s.record(SimTime::from_secs(1), "broker-0", "produces", 9.0);
        s.record(SimTime::from_secs(1), "job/a/0", "records_in", 40.0);
        let csv = s.to_tidy_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,scope,metric,value");
        assert_eq!(lines[1], "0.5,broker-0,produces,3");
        assert_eq!(lines.len(), 4);
        assert_eq!(s.get("broker-0", "produces").unwrap().points.len(), 2);
        assert_eq!(s.by_name("records_in").len(), 1);
    }

    #[test]
    fn store_empty_series_lookup_is_none() {
        let s = SeriesStore::new();
        assert!(s.get("x", "y").is_none());
        assert!(s.all().is_empty());
        assert_eq!(s.to_tidy_csv(), "t_s,scope,metric,value\n");
    }

    #[test]
    fn series_as_secs_converts() {
        let mut s = SeriesStore::new();
        s.record(SimTime::from_millis(250), "a", "m", 2.0);
        let pts = s.get("a", "m").unwrap().as_secs();
        assert_eq!(pts, vec![(0.25, 2.0)]);
    }
}
