//! Causal event tracing with Chrome-trace export.
//!
//! Instrumented processes emit typed events — spans for work with a
//! duration (operator batches, checkpoints, recovery phases) and instants
//! for point occurrences (produce, append, fetch, txn transitions, fault
//! injection). The collected trace serializes to the Chrome trace-event
//! JSON format, so `chrome://tracing` or Perfetto can render a worker
//! crash and its recovery as a timeline instead of a log scrape.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use s2g_sim::{SimDuration, SimTime};

/// The kind of a trace event, mirroring Chrome's `ph` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span open (`ph: "B"`).
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// A complete span with a known duration (`ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
}

impl TracePhase {
    /// The Chrome `ph` letter.
    pub fn ph(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Complete => "X",
            TracePhase::Instant => "i",
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Span length for [`TracePhase::Complete`]; zero otherwise.
    pub dur: SimDuration,
    /// Event kind.
    pub phase: TracePhase,
    /// Emitting process identity (`broker-0`, `job/stage/instance`, ...).
    pub scope: String,
    /// Event name (`append`, `checkpoint`, `recovery:replay`, ...).
    pub name: String,
    /// Category (`broker`, `spe`, `txn`, `fault`, ...).
    pub cat: &'static str,
}

/// The trace collector. Created disabled; when disabled every record call
/// is a cheap no-op, so instrumentation can stay unconditional.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

/// A shared handle to a [`Tracer`].
pub type TracerHandle = Rc<RefCell<Tracer>>;

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns collection on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether events are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    fn push(
        &mut self,
        at: SimTime,
        dur: SimDuration,
        phase: TracePhase,
        scope: &str,
        name: &str,
        cat: &'static str,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            at,
            dur,
            phase,
            scope: scope.to_string(),
            name: name.to_string(),
            cat,
        });
    }

    /// Records a point event.
    pub fn instant(&mut self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.push(at, SimDuration::ZERO, TracePhase::Instant, scope, name, cat);
    }

    /// Opens a span (pair with [`Tracer::end`]).
    pub fn begin(&mut self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.push(at, SimDuration::ZERO, TracePhase::Begin, scope, name, cat);
    }

    /// Closes the innermost open span with the same scope and name.
    pub fn end(&mut self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.push(at, SimDuration::ZERO, TracePhase::End, scope, name, cat);
    }

    /// Records a complete span that started at `at` and ran for `dur`.
    pub fn complete(
        &mut self,
        at: SimTime,
        dur: SimDuration,
        scope: &str,
        name: &str,
        cat: &'static str,
    ) {
        self.push(at, dur, TracePhase::Complete, scope, name, cat);
    }

    /// All collected events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace to Chrome trace-event JSON.
    ///
    /// Scopes map to numeric `pid`s (in first-appearance order) and each
    /// gets a `process_name` metadata record, which is how the Chrome
    /// trace viewer labels its rows. Timestamps are microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();
        for e in &self.events {
            if !pids.contains_key(e.scope.as_str()) {
                pids.insert(e.scope.as_str(), order.len() as u64 + 1);
                order.push(e.scope.as_str());
            }
        }
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for scope in &order {
            let pid = pids[scope];
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"ts\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(scope)
            );
        }
        for e in &self.events {
            let pid = pids[e.scope.as_str()];
            if !first {
                out.push(',');
            }
            first = false;
            let ts_us = e.at.as_nanos() as f64 / 1e3;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{ts_us},\
                 \"pid\":{pid},\"tid\":1",
                escape(&e.name),
                escape(e.cat),
                e.phase.ph()
            );
            if e.phase == TracePhase::Complete {
                let dur_us = e.dur.as_nanos() as f64 / 1e3;
                let _ = write!(out, ",\"dur\":{dur_us}");
            }
            if e.phase == TracePhase::Instant {
                out.push_str(",\"s\":\"p\"");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.instant(SimTime::ZERO, "a", "x", "cat");
        assert!(t.is_empty());
        t.set_enabled(true);
        t.instant(SimTime::ZERO, "a", "x", "cat");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn chrome_json_has_required_fields() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.complete(
            SimTime::from_millis(2),
            SimDuration::from_micros(500),
            "broker-0",
            "append",
            "broker",
        );
        t.instant(SimTime::from_millis(3), "job/a/0", "txn:commit", "txn");
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":2000"));
        assert!(json.contains("\"dur\":500"));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"broker-0\""));
        // Validated structurally by the json module round-trip test.
        crate::json::validate_chrome_trace(&json).expect("valid chrome trace");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
