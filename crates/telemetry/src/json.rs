//! A minimal JSON parser used to validate exported Chrome traces.
//!
//! The build environment is offline (no `serde_json`), and the CI gate
//! needs to prove that `--fig timeline` writes a structurally valid trace.
//! This module implements just enough of RFC 8259 to parse a trace file
//! and check the fields `chrome://tracing` requires.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or a
/// complaint about trailing input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// What [`validate_chrome_trace`] found in a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events, metadata included.
    pub events: usize,
    /// Complete spans (`ph: "X"`).
    pub spans: usize,
    /// Instant events (`ph: "i"`).
    pub instants: usize,
    /// Distinct numeric `pid`s seen.
    pub processes: usize,
}

/// Parses `input` and checks the Chrome trace-event contract: a top-level
/// object with a `traceEvents` array whose entries carry a string `ph`, a
/// numeric `ts`, a `pid`, and a string `name`; `X` spans also need a
/// numeric `dur`.
///
/// # Errors
///
/// Returns a description of the first violated requirement.
pub fn validate_chrome_trace(input: &str) -> Result<ChromeTraceSummary, String> {
    let doc = parse(input)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents field")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut spans = 0;
    let mut instants = 0;
    let mut pids: Vec<u64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        e.get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        let pid = e
            .get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        e.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        if !pids.contains(&pid) {
            pids.push(pid);
        }
        match ph {
            "X" => {
                e.get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: X span missing dur"))?;
                spans += 1;
            }
            "i" => instants += 1,
            _ => {}
        }
    }
    Ok(ChromeTraceSummary {
        events: events.len(),
        spans,
        instants,
        processes: pids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validates_a_good_trace_and_rejects_a_bad_one() {
        let good = r#"{"traceEvents":[
            {"name":"append","cat":"broker","ph":"X","ts":10.5,"dur":2,"pid":1,"tid":1},
            {"name":"kill","cat":"fault","ph":"i","ts":20,"pid":2,"tid":1,"s":"p"}
        ]}"#;
        let s = validate_chrome_trace(good).unwrap();
        assert_eq!(s.events, 2);
        assert_eq!(s.spans, 1);
        assert_eq!(s.instants, 1);
        assert_eq!(s.processes, 2);

        let missing_ts = r#"{"traceEvents":[{"name":"a","ph":"i","pid":1}]}"#;
        assert!(validate_chrome_trace(missing_ts)
            .unwrap_err()
            .contains("ts"));
        let missing_dur = r#"{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1}]}"#;
        assert!(validate_chrome_trace(missing_dur)
            .unwrap_err()
            .contains("dur"));
        assert!(validate_chrome_trace("[]").is_err());
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
