//! Runtime telemetry for stream2gym-rs: a metrics registry, a
//! scheduler-driven time-series sampler, and a causal event trace.
//!
//! stream2gym's core loop "triggers a series of monitoring tasks" that
//! capture network- and application-level signals while an experiment
//! runs. This crate is that monitoring layer for the simulation: every
//! process pushes counters, gauges, and latency histograms into a shared
//! [`Registry`]; a [`TelemetrySampler`] process snapshots the registry on
//! a fixed simulated interval into per-metric [`MetricSeries`]; and a
//! [`Tracer`] collects typed spans (record lifecycle, checkpoint barriers,
//! transactions, faults, recovery phases) that export as Chrome-trace
//! JSON.
//!
//! Everything is deterministic: the sampler runs on simulation timers,
//! consumes no randomness, and sends no messages, so enabling telemetry
//! never changes what a seeded run does.
//!
//! # Examples
//!
//! ```
//! use s2g_sim::{SimDuration, SimTime};
//! use s2g_telemetry::Telemetry;
//!
//! let tele = Telemetry::new();
//! tele.counter_add("broker-0", "produces", 1);
//! tele.gauge_set("store-0", "oplog_len", 12.0);
//! tele.observe_latency("job/map/0", "batch_latency_s", SimDuration::from_millis(3));
//! tele.snapshot(SimTime::from_millis(500));
//! let csv = tele.tidy_csv();
//! assert!(csv.starts_with("t_s,scope,metric,value"));
//! assert!(csv.contains("broker-0,produces,1"));
//! ```
#![warn(missing_docs)]

mod json;
mod metrics;
mod series;
mod trace;

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use s2g_sim::{SimDuration, SimTime};

pub use json::{parse as parse_json, validate_chrome_trace, ChromeTraceSummary, JsonValue};
pub use metrics::{summarize, Histogram, Metric, MetricValue, Registry, SummaryStats};
pub use series::{MetricSeries, RegistryHandle, SeriesHandle, SeriesStore, TelemetrySampler};
pub use trace::{TraceEvent, TracePhase, Tracer, TracerHandle};

/// The shared telemetry handle: one registry, one series store, and one
/// tracer behind cheap `Rc` clones, so every process in a run records into
/// the same sink. Mirrors the repo-wide shared-handle idiom
/// (`CpuHandle`, `LedgerHandle`, ...).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: RegistryHandle,
    series: SeriesHandle,
    tracer: TracerHandle,
}

impl Telemetry {
    /// Creates a fresh telemetry sink. Metrics are always-on; the tracer
    /// starts disabled (see [`Telemetry::set_trace_enabled`]).
    pub fn new() -> Self {
        Telemetry {
            registry: Rc::new(RefCell::new(Registry::new())),
            series: Rc::new(RefCell::new(SeriesStore::new())),
            tracer: Rc::new(RefCell::new(Tracer::new())),
        }
    }

    /// Turns causal event tracing on or off.
    pub fn set_trace_enabled(&self, on: bool) {
        self.tracer.borrow_mut().set_enabled(on);
    }

    /// Whether trace events are being collected.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.borrow().enabled()
    }

    /// Adds `delta` to a counter (implicit registration).
    pub fn counter_add(&self, scope: &str, name: &str, delta: u64) {
        self.registry.borrow_mut().counter_add(scope, name, delta);
    }

    /// Sets a gauge (implicit registration).
    pub fn gauge_set(&self, scope: &str, name: &str, value: f64) {
        self.registry.borrow_mut().gauge_set(scope, name, value);
    }

    /// Records a latency sample in seconds into a histogram with
    /// [`Histogram::latency_seconds`] buckets.
    pub fn observe_latency(&self, scope: &str, name: &str, d: SimDuration) {
        self.registry
            .borrow_mut()
            .observe(scope, name, d.as_secs_f64());
    }

    /// Records a byte-size sample into a histogram with
    /// [`Histogram::bytes`] buckets.
    pub fn observe_bytes(&self, scope: &str, name: &str, bytes: u64) {
        self.registry
            .borrow_mut()
            .observe_in(scope, name, bytes as f64, Histogram::bytes);
    }

    /// Records a count sample (batch sizes, records per request) into a
    /// histogram with [`Histogram::counts`] buckets.
    pub fn observe_count(&self, scope: &str, name: &str, n: u64) {
        self.registry
            .borrow_mut()
            .observe_in(scope, name, n as f64, Histogram::counts);
    }

    /// Records a point trace event.
    pub fn trace_instant(&self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.tracer.borrow_mut().instant(at, scope, name, cat);
    }

    /// Opens a trace span.
    pub fn trace_begin(&self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.tracer.borrow_mut().begin(at, scope, name, cat);
    }

    /// Closes a trace span.
    pub fn trace_end(&self, at: SimTime, scope: &str, name: &str, cat: &'static str) {
        self.tracer.borrow_mut().end(at, scope, name, cat);
    }

    /// Records a complete trace span.
    pub fn trace_complete(
        &self,
        at: SimTime,
        dur: SimDuration,
        scope: &str,
        name: &str,
        cat: &'static str,
    ) {
        self.tracer.borrow_mut().complete(at, dur, scope, name, cat);
    }

    /// Snapshots every registered metric into the series store at `at`
    /// (what the sampler process does on each tick).
    pub fn snapshot(&self, at: SimTime) {
        let reg = self.registry.borrow();
        let mut series = self.series.borrow_mut();
        for m in reg.metrics() {
            series.record(at, &m.scope, &m.name, m.value.sample());
        }
    }

    /// Immutable access to the registry.
    pub fn registry(&self) -> Ref<'_, Registry> {
        self.registry.borrow()
    }

    /// Immutable access to the sampled series.
    pub fn series(&self) -> Ref<'_, SeriesStore> {
        self.series.borrow()
    }

    /// Immutable access to the tracer.
    pub fn tracer(&self) -> Ref<'_, Tracer> {
        self.tracer.borrow()
    }

    /// Builds the sampler process over this sink; spawn it into the sim.
    pub fn sampler(
        &self,
        interval: SimDuration,
        cpus: Vec<(String, s2g_sim::CpuHandle)>,
    ) -> TelemetrySampler {
        TelemetrySampler::new(
            Rc::clone(&self.registry),
            Rc::clone(&self.series),
            interval,
            cpus,
        )
    }

    /// The sampled series as tidy CSV (`t_s,scope,metric,value`).
    pub fn tidy_csv(&self) -> String {
        self.series.borrow().to_tidy_csv()
    }

    /// The collected trace as Chrome trace-event JSON.
    pub fn chrome_json(&self) -> String {
        self.tracer.borrow().to_chrome_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_clones_share_state() {
        let a = Telemetry::new();
        let b = a.clone();
        b.counter_add("s", "c", 4);
        assert_eq!(a.registry().counter("s", "c"), Some(4));
        a.set_trace_enabled(true);
        b.trace_instant(SimTime::ZERO, "s", "e", "test");
        assert_eq!(a.tracer().len(), 1);
    }

    #[test]
    fn snapshot_then_csv_round_trip() {
        let t = Telemetry::new();
        t.gauge_set("host-h1", "cpu_occupancy", 0.25);
        t.snapshot(SimTime::from_secs(1));
        t.gauge_set("host-h1", "cpu_occupancy", 0.5);
        t.snapshot(SimTime::from_secs(2));
        let s = t.series();
        let series = s.get("host-h1", "cpu_occupancy").unwrap();
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[1].1, 0.5);
    }

    #[test]
    fn chrome_json_from_handle_validates() {
        let t = Telemetry::new();
        t.set_trace_enabled(true);
        t.trace_complete(
            SimTime::from_millis(1),
            SimDuration::from_micros(10),
            "job/a/0",
            "batch",
            "spe",
        );
        let summary = validate_chrome_trace(&t.chrome_json()).unwrap();
        assert_eq!(summary.spans, 1);
    }
}
