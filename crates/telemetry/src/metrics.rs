//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Every instrumented process registers metrics under a `(scope, name)`
//! pair, where the scope is the process identity (`broker-0`,
//! `wordcount/split/1`, `store-h2-r1`) and the name is the signal
//! (`records_in`, `log_bytes`, `checkpoint_duration_s`). Registration is
//! implicit — the first update creates the metric — so instrumentation
//! call sites stay one-liners and the registry is cheap enough to leave
//! always-on.

use std::collections::BTreeMap;

/// Exact summary statistics over a raw sample set (nearest-rank
/// percentiles). This is the shared replacement for the ad-hoc
/// mean/percentile arithmetic that used to be re-derived per experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Computes exact [`SummaryStats`] for a sample set; `None` when empty.
///
/// # Examples
///
/// ```
/// use s2g_telemetry::summarize;
///
/// let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.count, 4);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// assert_eq!(s.max, 4.0);
/// ```
pub fn summarize(samples: &[f64]) -> Option<SummaryStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let rank = |q: f64| -> f64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[idx.min(sorted.len() - 1)]
    };
    Some(SummaryStats {
        count: sorted.len() as u64,
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: rank(0.50),
        p95: rank(0.95),
        p99: rank(0.99),
        min: sorted[0],
        max: sorted[sorted.len() - 1],
    })
}

/// A fixed-bucket histogram with an explicit overflow bucket.
///
/// Bucket `i` counts samples `v <= bounds[i]` (and above `bounds[i-1]`);
/// samples above the last bound land in the overflow bucket. Quantiles are
/// estimated by linear interpolation inside the owning bucket, which keeps
/// updates O(log buckets) and memory constant — the property that lets the
/// registry stay always-on.
///
/// # Examples
///
/// ```
/// use s2g_telemetry::Histogram;
///
/// let mut h = Histogram::latency_seconds();
/// for ms in [1u64, 2, 3, 100] {
///     h.observe(ms as f64 / 1e3);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!(p50 > 0.0005 && p50 < 0.01, "p50 {p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with explicit ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Log-spaced latency buckets from 1 µs to ~100 s (5 per decade).
    pub fn latency_seconds() -> Self {
        Histogram::with_bounds(log_bounds(1e-6, 8 * 5))
    }

    /// Log-spaced size buckets from 64 B to ~64 GB (5 per decade).
    pub fn bytes() -> Self {
        Histogram::with_bounds(log_bounds(64.0, 9 * 5))
    }

    /// Log-spaced count buckets from 1 to ~10M (5 per decade) — batch
    /// sizes, records per request, queue depths.
    pub fn counts() -> Self {
        Histogram::with_bounds(log_bounds(1.0, 7 * 5))
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = self.bounds.partition_point(|b| *b < v);
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Samples that exceeded the last bucket bound.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (excluding overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the owning bucket; `None` when the histogram is empty.
    ///
    /// Samples in the overflow bucket are attributed to the recorded
    /// maximum, so `quantile(1.0)` is exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                let hi = self.bounds[i].min(self.max);
                let lo = if i == 0 {
                    self.min.min(hi)
                } else {
                    self.bounds[i - 1].max(self.min).min(hi)
                };
                let into = (target - (seen - c)) as f64 / *c as f64;
                return Some(lo + (hi - lo) * into);
            }
        }
        // Target falls in the overflow bucket.
        Some(self.max)
    }

    /// Exact summary built from the histogram's moments plus interpolated
    /// percentiles.
    pub fn stats(&self) -> Option<SummaryStats> {
        let mean = self.mean()?;
        Some(SummaryStats {
            count: self.count,
            mean,
            p50: self.quantile(0.50).expect("non-empty"),
            p95: self.quantile(0.95).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
            min: self.min,
            max: self.max,
        })
    }
}

/// `n` log-spaced bounds starting at `first`, 5 per decade.
fn log_bounds(first: f64, n: usize) -> Vec<f64> {
    let step = 10f64.powf(0.2);
    (0..n).map(|i| first * step.powi(i as i32)).collect()
}

/// The current value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

impl MetricValue {
    /// The scalar a sampler records for this metric: the cumulative count
    /// for counters, the level for gauges, and the number of observations
    /// for histograms (distribution quantiles are surfaced separately).
    pub fn sample(&self) -> f64 {
        match self {
            MetricValue::Counter(c) => *c as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.count() as f64,
        }
    }
}

/// One registered metric: identity plus current value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Owning process identity (`broker-0`, `job/stage/instance`, ...).
    pub scope: String,
    /// Signal name (`records_in`, `log_bytes`, ...).
    pub name: String,
    /// Current value.
    pub value: MetricValue,
}

/// The per-run metrics registry. Metrics are stored in first-update order,
/// which is deterministic because the whole simulation is.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Vec<Metric>,
    index: BTreeMap<(String, String), usize>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&mut self, scope: &str, name: &str, make: impl FnOnce() -> MetricValue) -> usize {
        let key = (scope.to_string(), name.to_string());
        if let Some(idx) = self.index.get(&key) {
            return *idx;
        }
        let idx = self.metrics.len();
        self.metrics.push(Metric {
            scope: key.0.clone(),
            name: key.1.clone(),
            value: make(),
        });
        self.index.insert(key, idx);
        idx
    }

    /// Adds `delta` to the `(scope, name)` counter, creating it at zero on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a different kind.
    pub fn counter_add(&mut self, scope: &str, name: &str, delta: u64) {
        let idx = self.slot(scope, name, || MetricValue::Counter(0));
        match &mut self.metrics[idx].value {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("{scope}/{name} is not a counter: {other:?}"),
        }
    }

    /// Sets the `(scope, name)` gauge.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a different kind.
    pub fn gauge_set(&mut self, scope: &str, name: &str, value: f64) {
        let idx = self.slot(scope, name, || MetricValue::Gauge(0.0));
        match &mut self.metrics[idx].value {
            MetricValue::Gauge(g) => *g = value,
            other => panic!("{scope}/{name} is not a gauge: {other:?}"),
        }
    }

    /// Records a sample into the `(scope, name)` histogram, creating it
    /// with [`Histogram::latency_seconds`] buckets on first use.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a different kind.
    pub fn observe(&mut self, scope: &str, name: &str, value: f64) {
        self.observe_in(scope, name, value, Histogram::latency_seconds);
    }

    /// Records a sample into the `(scope, name)` histogram, creating it
    /// with caller-chosen buckets on first use.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a different kind.
    pub fn observe_in(
        &mut self,
        scope: &str,
        name: &str,
        value: f64,
        make: impl FnOnce() -> Histogram,
    ) {
        let idx = self.slot(scope, name, || MetricValue::Histogram(make()));
        match &mut self.metrics[idx].value {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("{scope}/{name} is not a histogram: {other:?}"),
        }
    }

    /// Looks up a metric; `None` when it was never registered.
    pub fn get(&self, scope: &str, name: &str) -> Option<&Metric> {
        self.index
            .get(&(scope.to_string(), name.to_string()))
            .map(|i| &self.metrics[*i])
    }

    /// The current counter value; `None` for unregistered or non-counter.
    pub fn counter(&self, scope: &str, name: &str) -> Option<u64> {
        match self.get(scope, name)?.value {
            MetricValue::Counter(c) => Some(c),
            _ => None,
        }
    }

    /// The current gauge level; `None` for unregistered or non-gauge.
    pub fn gauge(&self, scope: &str, name: &str) -> Option<f64> {
        match self.get(scope, name)?.value {
            MetricValue::Gauge(g) => Some(g),
            _ => None,
        }
    }

    /// The histogram; `None` for unregistered or non-histogram.
    pub fn histogram(&self, scope: &str, name: &str) -> Option<&Histogram> {
        match &self.get(scope, name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// All metrics in first-update order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&samples).unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn histogram_overflow_bucket_counts_and_quantiles() {
        let mut h = Histogram::with_bounds(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(1e6); // beyond the last bound
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow_count(), 1);
        // The top quantile is served from the overflow bucket at the
        // recorded max, not the last bound.
        assert_eq!(h.quantile(1.0), Some(1e6));
        assert!(h.quantile(0.5).unwrap() <= 10.0);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let h = Histogram::latency_seconds();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert!(h.stats().is_none());
    }

    #[test]
    fn histogram_interpolation_tracks_exact() {
        let mut h = Histogram::latency_seconds();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 1e4).collect();
        for s in &samples {
            h.observe(*s);
        }
        let exact = summarize(&samples).unwrap();
        let est = h.stats().unwrap();
        assert!((est.p50 - exact.p50).abs() / exact.p50 < 0.35);
        assert!((est.p99 - exact.p99).abs() / exact.p99 < 0.35);
        assert!((est.mean - exact.mean).abs() < 1e-9);
    }

    #[test]
    fn registry_implicit_registration_and_lookup() {
        let mut r = Registry::new();
        r.counter_add("broker-0", "produces", 2);
        r.counter_add("broker-0", "produces", 3);
        r.gauge_set("store-0", "oplog_len", 7.0);
        r.observe("job/s/0", "batch_latency_s", 0.004);
        assert_eq!(r.counter("broker-0", "produces"), Some(5));
        assert_eq!(r.gauge("store-0", "oplog_len"), Some(7.0));
        assert_eq!(
            r.histogram("job/s/0", "batch_latency_s").unwrap().count(),
            1
        );
        // Unregistered metric.
        assert!(r.get("nobody", "nothing").is_none());
        assert_eq!(r.counter("nobody", "nothing"), None);
        // Wrong kind reads answer None rather than panicking.
        assert_eq!(r.counter("store-0", "oplog_len"), None);
        assert_eq!(r.metrics().len(), 3);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn registry_kind_mismatch_update_panics() {
        let mut r = Registry::new();
        r.gauge_set("a", "x", 1.0);
        r.counter_add("a", "x", 1);
    }
}
