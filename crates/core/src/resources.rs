//! The resource model: server CPU utilization and memory sampling (§VI-C).
//!
//! The paper snapshots `/proc/stat` and `/proc/meminfo` every 500 ms to
//! report how much of the underlying server the emulation consumes (Fig. 9).
//! Here, every emulated host's CPU busy intervals are binned into sampling
//! windows against the modeled server's total core capacity, and a
//! [`MemSampler`] process polls the shared memory ledger.

use s2g_sim::{CpuHandle, Ctx, LedgerHandle, Message, Process, ProcessId, SimDuration, SimTime};

/// The modeled underlying server (the paper's testbed machine: an i7-3770
/// with 8 hardware threads and 16 GB of RAM).
#[derive(Debug, Clone, Copy)]
pub struct ServerSpec {
    /// Core count used as the utilization denominator.
    pub cores: usize,
    /// Total memory used as the peak-memory denominator.
    pub mem_bytes: u64,
    /// Sampling interval (500 ms in the paper).
    pub sample_interval: SimDuration,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            cores: 8,
            mem_bytes: 16 << 30,
            sample_interval: SimDuration::from_millis(500),
        }
    }
}

/// Modeled resident footprints of each component class, used when the
/// orchestrator registers components with the memory ledger. Values model
/// JVM-based production components (a Kafka broker or Spark executor idles
/// at hundreds of MB resident).
#[derive(Debug, Clone, Copy)]
pub struct MemModel {
    /// OS, emulator, and switch-daemon baseline.
    pub os_base: u64,
    /// Extra baseline per emulated switch.
    pub per_switch: u64,
    /// Broker JVM resident base.
    pub broker: u64,
    /// Producer client base, excluding its send buffer.
    pub producer_base: u64,
    /// Heap provisioning multiplier applied to `buffer.memory` (JVMs reserve
    /// headroom around the producer pool; this is what makes the 16 MB vs
    /// 32 MB buffers of Fig. 9c visible in peak memory).
    pub producer_heap_factor: f64,
    /// Consumer client base.
    pub consumer: u64,
    /// Stream-processing worker (Spark executor + driver share).
    pub spe: u64,
    /// Data-store server base.
    pub store: u64,
    /// Controller (ZooKeeper / KRaft quorum member) base.
    pub controller: u64,
}

impl Default for MemModel {
    fn default() -> Self {
        MemModel {
            os_base: 4_200 << 20,
            per_switch: 50 << 20,
            broker: 420 << 20,
            producer_base: 110 << 20,
            producer_heap_factor: 6.0,
            consumer: 120 << 20,
            spe: 700 << 20,
            store: 300 << 20,
            controller: 180 << 20,
        }
    }
}

/// CPU utilization samples derived from host-CPU busy intervals.
///
/// Returns `(window_end, utilization)` pairs where utilization is busy
/// core-time across all hosts divided by `cores × window`, i.e. the fraction
/// of the whole server in use — directly comparable to the paper's
/// `/proc/stat` numbers.
pub fn cpu_utilization_series(
    cpus: &[CpuHandle],
    window: SimDuration,
    until: SimTime,
    cores: usize,
) -> Vec<(SimTime, f64)> {
    assert!(!window.is_zero(), "sampling window must be positive");
    assert!(cores > 0, "server must have at least one core");
    let w = window.as_nanos();
    let n_windows = (until.as_nanos() / w) as usize;
    let mut busy = vec![0u64; n_windows + 1];
    for cpu in cpus {
        let intervals = cpu.borrow_mut().drain_intervals(SimTime::MAX);
        for (s, e) in intervals {
            let e = e.min(until);
            if s >= e {
                continue;
            }
            let mut cursor = s.as_nanos();
            let end = e.as_nanos();
            while cursor < end {
                let idx = (cursor / w) as usize;
                if idx >= busy.len() {
                    break;
                }
                let win_end = (idx as u64 + 1) * w;
                let chunk = end.min(win_end) - cursor;
                busy[idx] += chunk;
                cursor += chunk;
            }
        }
    }
    let denom = (w as f64) * cores as f64;
    (0..n_windows)
        .map(|i| {
            let t = SimTime::from_nanos((i as u64 + 1) * w);
            (t, (busy[i] as f64 / denom).min(1.0))
        })
        .collect()
}

/// Builds an empirical CDF from samples: `(value, cumulative_fraction)`.
pub fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i as f64 + 1.0) / n))
        .collect()
}

/// The median of a sample set (None when empty).
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    Some(sorted[sorted.len() / 2])
}

/// A process that samples the memory ledger at the server's interval.
pub struct MemSampler {
    ledger: LedgerHandle,
    interval: SimDuration,
    until: SimTime,
    samples: Vec<(SimTime, u64)>,
    peak: u64,
}

impl MemSampler {
    /// Samples `ledger` every `interval` until `until`.
    pub fn new(ledger: LedgerHandle, interval: SimDuration, until: SimTime) -> Self {
        MemSampler {
            ledger,
            interval,
            until,
            samples: Vec::new(),
            peak: 0,
        }
    }

    /// The sample series.
    pub fn samples(&self) -> &[(SimTime, u64)] {
        &self.samples
    }

    /// The peak total observed.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }
}

impl Process for MemSampler {
    fn name(&self) -> &str {
        "mem-sampler"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        let now = ctx.now();
        let total = self.ledger.borrow().total();
        self.peak = self.peak.max(total);
        self.samples.push((now, total));
        if now + self.interval <= self.until {
            ctx.set_timer(self.interval, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::{HostCpu, MemLedger, Sim};

    #[test]
    fn utilization_bins_intervals() {
        let cpu = HostCpu::shared("h", 2, 1.0);
        // 1 core busy for the full first second → 50% of a 2-core host,
        // i.e. 12.5% of an 8-core server... use cores=2 denominator here.
        cpu.borrow_mut()
            .execute(SimTime::ZERO, SimDuration::from_secs(1));
        let series = cpu_utilization_series(
            &[cpu],
            SimDuration::from_millis(500),
            SimTime::from_secs(2),
            2,
        );
        assert_eq!(series.len(), 4);
        assert!((series[0].1 - 0.5).abs() < 1e-9);
        assert!((series[1].1 - 0.5).abs() < 1e-9);
        assert!(series[2].1.abs() < 1e-9);
    }

    #[test]
    fn utilization_spans_windows() {
        let cpu = HostCpu::shared("h", 1, 1.0);
        // 250 ms of work starting at 400 ms spans two 500 ms windows.
        cpu.borrow_mut()
            .execute(SimTime::from_millis(400), SimDuration::from_millis(250));
        let series = cpu_utilization_series(
            &[cpu],
            SimDuration::from_millis(500),
            SimTime::from_secs(1),
            1,
        );
        assert!((series[0].1 - 0.2).abs() < 1e-9, "100ms of 500ms window");
        assert!((series[1].1 - 0.3).abs() < 1e-9, "150ms of 500ms window");
    }

    #[test]
    fn cdf_and_median() {
        let samples = [3.0, 1.0, 2.0, 4.0];
        let c = cdf(&samples);
        assert_eq!(c[0], (1.0, 0.25));
        assert_eq!(c[3], (4.0, 1.0));
        assert_eq!(median(&samples), Some(3.0));
        assert_eq!(median(&[]), None);
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn mem_sampler_tracks_peak() {
        let ledger = MemLedger::new(1_000).into_handle();
        let slot = ledger.borrow_mut().register("x", 0);
        let mut sim = Sim::new(0);
        let sampler = sim.spawn(Box::new(MemSampler::new(
            ledger.clone(),
            SimDuration::from_millis(500),
            SimTime::from_secs(3),
        )));
        // Bump memory at 1s via a helper process.
        struct Bumper {
            ledger: LedgerHandle,
            slot: s2g_sim::MemSlot,
        }
        impl Process for Bumper {
            fn name(&self) -> &str {
                "bumper"
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), 0);
                ctx.set_timer(SimDuration::from_secs(2), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                let bytes = if tag == 0 { 5_000 } else { 100 };
                self.ledger.borrow_mut().set_dynamic(self.slot, bytes);
            }
        }
        sim.spawn(Box::new(Bumper {
            ledger: ledger.clone(),
            slot,
        }));
        sim.run_until(SimTime::from_secs(3));
        let s = sim.process_ref::<MemSampler>(sampler).unwrap();
        assert_eq!(s.peak_bytes(), 6_000);
        assert!(s.samples().len() >= 5);
        // Final samples reflect the drop back to 1_100.
        assert_eq!(s.samples().last().unwrap().1, 1_100);
    }

    #[test]
    fn default_server_matches_paper_testbed() {
        let s = ServerSpec::default();
        assert_eq!(s.cores, 8);
        assert_eq!(s.mem_bytes, 16 << 30);
        assert_eq!(s.sample_interval.as_millis(), 500);
    }
}
