//! # s2g-core — the stream2gym prototyping environment
//!
//! The paper's primary contribution, reproduced as a Rust library: a
//! high-level interface for describing, deploying, and measuring
//! distributed stream processing pipelines over an emulated network.
//!
//! * [`Scenario`] — the task description + orchestrator: place brokers,
//!   producer/consumer stubs, stream jobs, and stores on hosts; pick
//!   topics, coordination mode, link shapes, and a fault plan; `run()`.
//! * [`parse_graphml`] / [`scenario_from_graphml`] — the GraphML front end
//!   (§III-C, Fig. 4) with [`ComponentConfig`] YAML-style component files.
//! * [`MonitorCore`] / [`DeliveryMatrix`] — latency and delivery monitoring.
//! * [`cpu_utilization_series`] / [`MemSampler`] — the §VI-C resource model.
//! * [`ascii_chart`] / [`ascii_matrix`] / [`csv_series`] — visualization.
//!
//! # Example: a minimal pipeline, scripted
//!
//! ```
//! use s2g_broker::TopicSpec;
//! use s2g_core::{Scenario, SourceSpec};
//! use s2g_net::LinkSpec;
//! use s2g_sim::{SimDuration, SimTime};
//!
//! let mut sc = Scenario::new("minimal");
//! sc.seed(7)
//!     .duration(SimTime::from_secs(30))
//!     .default_link(LinkSpec::new().latency_ms(5))
//!     .topic(TopicSpec::new("raw-data"));
//! sc.broker("h2");
//! sc.producer(
//!     "h1",
//!     SourceSpec::Rate {
//!         topic: "raw-data".into(),
//!         count: 50,
//!         interval: SimDuration::from_millis(100),
//!         payload: 200,
//!     },
//!     Default::default(),
//! );
//! sc.consumer("h5", Default::default(), &["raw-data"]);
//! let result = sc.run()?;
//! assert_eq!(result.report.producers[0].stats.acked, 50);
//! assert_eq!(result.total_deliveries(), 50);
//! # Ok::<(), s2g_core::ScenarioError>(())
//! ```

#![warn(missing_docs)]

mod config;
mod desc;
mod graphml;
mod monitor;
mod resources;
mod scenario;
mod viz;

pub use config::{ComponentConfig, ConfigError};
pub use desc::{scenario_from_graphml, DescError, ResourceBundle};
pub use graphml::{parse_graphml, GraphmlDoc, GraphmlEdge, GraphmlError, GraphmlNode};
pub use monitor::{DeliveryMatrix, DeliveryRecord, MonitorCore, MonitorHandle, MonitoredSink};
pub use resources::{cdf, cpu_utilization_series, median, MemModel, MemSampler, ServerSpec};
pub use s2g_analyze::{AnalysisReport, Diagnostic, Level};
pub use scenario::{
    instance_name, shuffle_topic, BrokerDurabilitySpec, BrokerRecoveryReport, BrokerReport,
    CheckpointBackendSpec, CheckpointSpec, ClientRecoveryReport, ConsumerReport, ConsumerSinkSpec,
    ProducerReport, RecoveryReport, RunReport, RunResult, Scenario, ScenarioError, SourceSpec,
    SpeJobSpec, SpeReport, SpeSinkSpec, StoreRecoveryReport, StoreReport, DEFAULT_KEY_GROUPS,
};
pub use viz::{ascii_chart, ascii_matrix, ascii_table, csv_series};
