//! GraphML task descriptions (§III-C, Fig. 4).
//!
//! stream2gym models a whole experiment as one GraphML document: graph-level
//! `<data>` for topics and faults, `<node>` elements carrying the Table I
//! component attributes, and `<edge>` elements carrying link attributes.
//! This is a hand-rolled parser for exactly the GraphML subset those
//! descriptions use (elements, attributes, text content, comments) — no
//! external XML dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed `<node>` element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphmlNode {
    /// The node id (host or switch name).
    pub id: String,
    /// `<data key="...">value</data>` children.
    pub data: BTreeMap<String, String>,
}

/// A parsed `<edge>` element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphmlEdge {
    /// Source node id.
    pub source: String,
    /// Target node id.
    pub target: String,
    /// `<data>` children (lat, bw, loss, st, dt).
    pub data: BTreeMap<String, String>,
}

/// A parsed GraphML task description.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphmlDoc {
    /// Graph-level `<data>` entries (topicCfg, faultCfg).
    pub graph_data: BTreeMap<String, String>,
    /// Nodes in document order.
    pub nodes: Vec<GraphmlNode>,
    /// Edges in document order.
    pub edges: Vec<GraphmlEdge>,
}

impl GraphmlDoc {
    /// Finds a node by id.
    pub fn node(&self, id: &str) -> Option<&GraphmlNode> {
        self.nodes.iter().find(|n| n.id == id)
    }
}

/// A GraphML parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphmlError {
    /// The document ended inside a tag or element.
    UnexpectedEof,
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// What was open.
        expected: String,
        /// What closed.
        got: String,
    },
    /// A tag was malformed.
    BadTag(String),
    /// A required attribute was missing.
    MissingAttr {
        /// The element.
        element: &'static str,
        /// The attribute.
        attr: &'static str,
    },
}

impl fmt::Display for GraphmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphmlError::UnexpectedEof => write!(f, "unexpected end of document"),
            GraphmlError::MismatchedTag { expected, got } => {
                write!(
                    f,
                    "mismatched closing tag: expected </{expected}>, got </{got}>"
                )
            }
            GraphmlError::BadTag(t) => write!(f, "malformed tag: {t:?}"),
            GraphmlError::MissingAttr { element, attr } => {
                write!(f, "<{element}> is missing required attribute `{attr}`")
            }
        }
    }
}

impl std::error::Error for GraphmlError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open {
        name: String,
        attrs: BTreeMap<String, String>,
        self_closing: bool,
    },
    Close {
        name: String,
    },
    Text(String),
}

fn tokenize(xml: &str) -> Result<Vec<Token>, GraphmlError> {
    let mut tokens = Vec::new();
    let bytes = xml.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes[pos] == b'<' {
            if xml[pos..].starts_with("<!--") {
                let end = xml[pos..].find("-->").ok_or(GraphmlError::UnexpectedEof)?;
                pos += end + 3;
                continue;
            }
            if xml[pos..].starts_with("<?") {
                let end = xml[pos..].find("?>").ok_or(GraphmlError::UnexpectedEof)?;
                pos += end + 2;
                continue;
            }
            let end = xml[pos..].find('>').ok_or(GraphmlError::UnexpectedEof)?;
            let inner = &xml[pos + 1..pos + end];
            pos += end + 1;
            if let Some(name) = inner.strip_prefix('/') {
                tokens.push(Token::Close {
                    name: name.trim().to_string(),
                });
                continue;
            }
            let self_closing = inner.ends_with('/');
            let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
            let (name, rest) = match inner.split_once(char::is_whitespace) {
                Some((n, r)) => (n, r),
                None => (inner, ""),
            };
            if name.is_empty() {
                return Err(GraphmlError::BadTag(inner.to_string()));
            }
            let attrs = parse_attrs(rest)?;
            tokens.push(Token::Open {
                name: name.to_string(),
                attrs,
                self_closing,
            });
        } else {
            let end = xml[pos..].find('<').unwrap_or(xml.len() - pos);
            let text = &xml[pos..pos + end];
            if !text.trim().is_empty() {
                tokens.push(Token::Text(unescape(text.trim())));
            }
            pos += end;
        }
    }
    Ok(tokens)
}

fn parse_attrs(s: &str) -> Result<BTreeMap<String, String>, GraphmlError> {
    let mut attrs = BTreeMap::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| GraphmlError::BadTag(s.to_string()))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after
            .chars()
            .next()
            .ok_or_else(|| GraphmlError::BadTag(s.to_string()))?;
        if quote != '"' && quote != '\'' {
            return Err(GraphmlError::BadTag(s.to_string()));
        }
        let close = after[1..]
            .find(quote)
            .ok_or_else(|| GraphmlError::BadTag(s.to_string()))?;
        let value = unescape(&after[1..1 + close]);
        attrs.insert(key, value);
        rest = after[close + 2..].trim_start();
    }
    Ok(attrs)
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a stream2gym GraphML task description.
///
/// # Errors
///
/// Returns a [`GraphmlError`] on malformed XML or missing required
/// attributes (`node` needs `id`; `edge` needs `source` and `target`).
///
/// # Examples
///
/// ```
/// use s2g_core::parse_graphml;
///
/// let doc = parse_graphml(r#"
///   <graph edgedefault="undirected">
///     <data key="topicCfg">topics.cfg</data>
///     <node id="h1"><data key="prodType">SFST</data></node>
///     <node id="s1"/>
///     <edge source="s1" target="h1"><data key="lat">50</data></edge>
///   </graph>"#)?;
/// assert_eq!(doc.graph_data["topicCfg"], "topics.cfg");
/// assert_eq!(doc.nodes.len(), 2);
/// assert_eq!(doc.edges[0].data["lat"], "50");
/// # Ok::<(), s2g_core::GraphmlError>(())
/// ```
pub fn parse_graphml(xml: &str) -> Result<GraphmlDoc, GraphmlError> {
    let tokens = tokenize(xml)?;
    let mut doc = GraphmlDoc::default();
    let mut i = 0;

    // Context while walking: which container we are inside.
    #[derive(PartialEq)]
    enum Scope {
        Root,
        Graph,
        Node(usize),
        Edge(usize),
    }
    let mut scope = Scope::Root;

    while i < tokens.len() {
        match &tokens[i] {
            Token::Open {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "graphml" => {}
                "key" => {} // GraphML schema declarations — ignored
                "graph" => scope = Scope::Graph,
                "node" => {
                    let id = attrs
                        .get("id")
                        .ok_or(GraphmlError::MissingAttr {
                            element: "node",
                            attr: "id",
                        })?
                        .clone();
                    doc.nodes.push(GraphmlNode {
                        id,
                        data: BTreeMap::new(),
                    });
                    if !self_closing {
                        scope = Scope::Node(doc.nodes.len() - 1);
                    }
                }
                "edge" => {
                    let source = attrs
                        .get("source")
                        .ok_or(GraphmlError::MissingAttr {
                            element: "edge",
                            attr: "source",
                        })?
                        .clone();
                    let target = attrs
                        .get("target")
                        .ok_or(GraphmlError::MissingAttr {
                            element: "edge",
                            attr: "target",
                        })?
                        .clone();
                    doc.edges.push(GraphmlEdge {
                        source,
                        target,
                        data: BTreeMap::new(),
                    });
                    if !self_closing {
                        scope = Scope::Edge(doc.edges.len() - 1);
                    }
                }
                "data" => {
                    let key = attrs
                        .get("key")
                        .ok_or(GraphmlError::MissingAttr {
                            element: "data",
                            attr: "key",
                        })?
                        .clone();
                    // Collect the text content up to </data>.
                    let mut value = String::new();
                    if !self_closing {
                        i += 1;
                        while i < tokens.len() {
                            match &tokens[i] {
                                Token::Text(t) => value.push_str(t),
                                Token::Close { name } if name == "data" => break,
                                Token::Close { name } => {
                                    return Err(GraphmlError::MismatchedTag {
                                        expected: "data".into(),
                                        got: name.clone(),
                                    })
                                }
                                Token::Open { .. } => {
                                    return Err(GraphmlError::BadTag(
                                        "nested element inside <data>".into(),
                                    ))
                                }
                            }
                            i += 1;
                        }
                        if i >= tokens.len() {
                            return Err(GraphmlError::UnexpectedEof);
                        }
                    }
                    let value = value.trim().to_string();
                    match scope {
                        Scope::Graph => {
                            doc.graph_data.insert(key, value);
                        }
                        Scope::Node(n) => {
                            doc.nodes[n].data.insert(key, value);
                        }
                        Scope::Edge(e) => {
                            doc.edges[e].data.insert(key, value);
                        }
                        Scope::Root => {
                            doc.graph_data.insert(key, value);
                        }
                    }
                }
                other => return Err(GraphmlError::BadTag(other.to_string())),
            },
            Token::Close { name } => match name.as_str() {
                "node" | "edge" => scope = Scope::Graph,
                "graph" => scope = Scope::Root,
                "graphml" | "key" => {}
                other => {
                    return Err(GraphmlError::MismatchedTag {
                        expected: "node|edge|graph".into(),
                        got: other.to_string(),
                    })
                }
            },
            Token::Text(_) => {} // stray whitespace/text between elements
        }
        i += 1;
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 description, abbreviated.
    const FIG4: &str = r#"
    <!-- Data processing pipeline -->
    <graph edgedefault="undirected">
      <data key="topicCfg"> topics.cfg </data>

      <!-- Cluster allocation -->
      <node id="h1">
        <data key="prodType"> SFST </data>
        <data key="prodCfg"> data-src.yaml </data>
      </node>
      <node id="h2">
        <data key="brokerCfg"> broker.yaml </data>
      </node>
      <node id="h3">
        <data key="streamProcType"> SPARK </data>
        <data key="streamProcCfg"> spe-1.yaml </data>
      </node>
      <node id="h5">
        <data key="consType"> STANDARD </data>
        <data key="consCfg"> data-sink.yaml </data>
      </node>

      <!-- Network setup -->
      <node id="s1"/>
      <edge source="s1" target="h1">
        <data key="st"> 1 </data>
        <data key="dt"> 1 </data>
        <data key="lat"> 50 </data>
      </edge>
    </graph>"#;

    #[test]
    fn parses_fig4() {
        let doc = parse_graphml(FIG4).unwrap();
        assert_eq!(doc.graph_data["topicCfg"], "topics.cfg");
        assert_eq!(doc.nodes.len(), 5);
        assert_eq!(doc.node("h1").unwrap().data["prodType"], "SFST");
        assert_eq!(doc.node("h3").unwrap().data["streamProcType"], "SPARK");
        assert_eq!(doc.node("s1").unwrap().data.len(), 0);
        assert_eq!(doc.edges.len(), 1);
        assert_eq!(doc.edges[0].source, "s1");
        assert_eq!(doc.edges[0].target, "h1");
        assert_eq!(doc.edges[0].data["lat"], "50");
        assert_eq!(doc.edges[0].data["st"], "1");
    }

    #[test]
    fn comments_and_declarations_skipped() {
        let doc = parse_graphml(
            "<?xml version=\"1.0\"?><graphml><!-- hi --><graph><node id=\"a\"/></graph></graphml>",
        )
        .unwrap();
        assert_eq!(doc.nodes.len(), 1);
    }

    #[test]
    fn entity_unescaping() {
        let doc = parse_graphml(
            "<graph><node id=\"n\"><data key=\"k\">a &lt; b &amp; c</data></node></graph>",
        )
        .unwrap();
        assert_eq!(doc.node("n").unwrap().data["k"], "a < b & c");
    }

    #[test]
    fn missing_node_id_errors() {
        let err = parse_graphml("<graph><node/></graph>").unwrap_err();
        assert_eq!(
            err,
            GraphmlError::MissingAttr {
                element: "node",
                attr: "id"
            }
        );
    }

    #[test]
    fn missing_edge_endpoints_error() {
        let err = parse_graphml("<graph><edge source=\"a\"/></graph>").unwrap_err();
        assert_eq!(
            err,
            GraphmlError::MissingAttr {
                element: "edge",
                attr: "target"
            }
        );
    }

    #[test]
    fn truncated_document_errors() {
        assert_eq!(
            parse_graphml("<graph><data key=\"x\">v"),
            Err(GraphmlError::UnexpectedEof)
        );
        assert_eq!(parse_graphml("<graph"), Err(GraphmlError::UnexpectedEof));
    }

    #[test]
    fn unknown_elements_rejected() {
        assert!(matches!(
            parse_graphml("<graph><mystery/></graph>"),
            Err(GraphmlError::BadTag(_))
        ));
    }

    #[test]
    fn single_quoted_attrs() {
        let doc = parse_graphml("<graph><node id='h9'/></graph>").unwrap();
        assert_eq!(doc.nodes[0].id, "h9");
    }
}
