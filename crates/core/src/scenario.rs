//! The orchestrator: from a scenario description to a finished run.
//!
//! [`Scenario`] is stream2gym's core workflow (§III-B): describe the
//! pipeline (components per host), the platform configuration (topics,
//! coordination mode), and the network (topology, link attributes, faults);
//! then [`Scenario::run`] instantiates the emulated network, starts the
//! event streaming platform, wires every component, injects the fault plan,
//! attaches the monitors, executes, and returns a [`RunResult`] with all
//! the measurements the paper's figures are built from.

use std::collections::BTreeMap;
use std::fmt;

use s2g_analyze::{
    analyze as analyze_facts, AnalysisReport, BrokerFacts, ConsumerFacts, Diagnostic, FaultFacts,
    FaultKind, FaultTarget, JobFacts, ProducerFacts, ScenarioFacts, TopicFacts,
};
use s2g_broker::{
    log_store, Broker, BrokerConfig, BrokerRecoveryInfo, BrokerStats, CollectingSink,
    ConsumerClient, ConsumerConfig, ConsumerProcess, ConsumerStats, ControllerConfig,
    CoordinationMode, DataSink, DataSource, DurableLogBackend, FileLinesSource, InMemoryLogBackend,
    KraftController, LogBackend, LogStoreHandle, PoissonSource, ProduceOutcome, ProducerClient,
    ProducerConfig, ProducerProcess, ProducerStats, RandomTopicSource, RateSource, TopicSpec,
    ZkController,
};
use s2g_net::{
    FaultAction, FaultInjector, FaultPlan, LinkSpec, NetHandle, NetTransport, Network,
    NetworkConfig, Topology, TxSampler, TxSeries,
};
use s2g_proto::{AckMode, BrokerId, Compression, ProducerId, TopicPartition};
use s2g_sim::{
    CpuHandle, HostCpu, LedgerHandle, MemLedger, MemSlot, ProcessId, Sim, SimDuration, SimStats,
    SimTime,
};
use s2g_spe::{
    snapshot_store, BatchMetric, CheckpointCfg, CheckpointStats, DurableBackend, Event,
    InMemoryBackend, Plan, SnapshotStoreHandle, SpeConfig, SpeSink, SpeWorker, StageInstanceCfg,
    StateBackend,
};
use s2g_store::{StoreConfig, StoreServer};
use s2g_telemetry::{MetricSeries, Telemetry};

use crate::monitor::{DeliveryMatrix, MonitorCore, MonitorHandle, MonitoredSink};
use crate::resources::{cpu_utilization_series, MemModel, MemSampler, ServerSpec};

/// A data-source description for a producer stub (`prodType`).
pub enum SourceSpec {
    /// Fixed-rate fixed-size records to one topic.
    Rate {
        /// Topic.
        topic: String,
        /// Total records.
        count: u64,
        /// Inter-record interval.
        interval: SimDuration,
        /// Payload bytes.
        payload: usize,
    },
    /// Random topic choice at a target bitrate (the Fig. 6 workload).
    RandomTopics {
        /// Candidate topics.
        topics: Vec<String>,
        /// Kilobits per second.
        kbps: u64,
        /// Payload bytes.
        payload: usize,
        /// Stop time.
        until: SimTime,
    },
    /// Poisson arrivals (the Fig. 7b user traffic).
    Poisson {
        /// Topic.
        topic: String,
        /// Mean arrivals per second.
        rate_per_sec: f64,
        /// Payload bytes.
        payload: usize,
        /// Stop time.
        until: SimTime,
    },
    /// One record per prepared item (the `SFST` stub).
    Items {
        /// Topic.
        topic: String,
        /// The corpus.
        items: Vec<String>,
        /// Inter-record interval.
        interval: SimDuration,
    },
    /// Any custom source.
    Custom {
        /// Topics this source emits to (for validation).
        topics: Vec<String>,
        /// Factory producing the source. Called at build time and again for
        /// each `RestartProcess` fault on this stub, so a respawned
        /// producer starts its source from the beginning (broker-side
        /// idempotent dedup then filters the already-appended prefix).
        make: Box<dyn Fn() -> Box<dyn DataSource>>,
    },
}

impl SourceSpec {
    fn topics(&self) -> Vec<String> {
        match self {
            SourceSpec::Rate { topic, .. }
            | SourceSpec::Poisson { topic, .. }
            | SourceSpec::Items { topic, .. } => vec![topic.clone()],
            SourceSpec::RandomTopics { topics, .. } => topics.clone(),
            SourceSpec::Custom { topics, .. } => topics.clone(),
        }
    }

    fn build(&self) -> Box<dyn DataSource> {
        match self {
            SourceSpec::Rate {
                topic,
                count,
                interval,
                payload,
            } => {
                Box::new(RateSource::new(topic.clone(), *count, *interval).payload_bytes(*payload))
            }
            SourceSpec::RandomTopics {
                topics,
                kbps,
                payload,
                until,
            } => Box::new(RandomTopicSource::new(
                topics.clone(),
                *kbps,
                *payload,
                *until,
            )),
            SourceSpec::Poisson {
                topic,
                rate_per_sec,
                payload,
                until,
            } => Box::new(PoissonSource::new(
                topic.clone(),
                *rate_per_sec,
                *payload,
                *until,
            )),
            SourceSpec::Items {
                topic,
                items,
                interval,
            } => Box::new(FileLinesSource::new(
                topic.clone(),
                items.clone(),
                *interval,
            )),
            SourceSpec::Custom { make, .. } => make(),
        }
    }
}

impl fmt::Debug for SourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceSpec({:?})", self.topics())
    }
}

/// Static rate/size hints the analyzer extracts from a source spec:
/// the steady-state inter-record interval (mean interval for Poisson)
/// and the largest payload the source can emit. `Custom` sources are
/// opaque — no hints.
fn source_hints(src: &SourceSpec) -> (Option<SimDuration>, Option<usize>) {
    match src {
        SourceSpec::Rate {
            interval, payload, ..
        } => (Some(*interval), Some(*payload)),
        SourceSpec::RandomTopics { kbps, payload, .. } => {
            let interval = (*kbps > 0).then(|| {
                SimDuration::from_secs_f64(*payload as f64 * 8.0 / (*kbps as f64 * 1000.0))
            });
            (interval, Some(*payload))
        }
        SourceSpec::Poisson {
            rate_per_sec,
            payload,
            ..
        } => {
            let interval =
                (*rate_per_sec > 0.0).then(|| SimDuration::from_secs_f64(1.0 / *rate_per_sec));
            (interval, Some(*payload))
        }
        SourceSpec::Items {
            interval, items, ..
        } => (Some(*interval), items.iter().map(|i| i.len()).max()),
        SourceSpec::Custom { .. } => (None, None),
    }
}

/// Where a consumer stub's records go (`consType`).
pub enum ConsumerSinkSpec {
    /// Collect in memory (the `STANDARD` stub); always monitored.
    Collect,
    /// A custom sink (still wrapped by the monitor). The factory is called
    /// at build time and again for each `RestartProcess` fault on this
    /// stub — a respawned consumer starts with a fresh sink.
    Custom(Box<dyn Fn() -> Box<dyn DataSink>>),
}

impl ConsumerSinkSpec {
    fn build(&self) -> Box<dyn DataSink> {
        match self {
            ConsumerSinkSpec::Collect => Box::new(CollectingSink::default()),
            ConsumerSinkSpec::Custom(make) => make(),
        }
    }
}

impl fmt::Debug for ConsumerSinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumerSinkSpec::Collect => write!(f, "Collect"),
            ConsumerSinkSpec::Custom(_) => write!(f, "Custom"),
        }
    }
}

/// Sink half of a stream job (`streamProcCfg`).
pub enum SpeSinkSpec {
    /// Emit encoded events to a topic.
    Topic(String),
    /// Keep results in the worker.
    Collect,
    /// Insert rows into the store hosted on the named host.
    StoreOn {
        /// Host carrying the store server.
        host: String,
        /// Target table.
        table: String,
    },
}

impl fmt::Debug for SpeSinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeSinkSpec::Topic(t) => write!(f, "Topic({t})"),
            SpeSinkSpec::Collect => write!(f, "Collect"),
            SpeSinkSpec::StoreOn { host, table } => write!(f, "StoreOn({host}.{table})"),
        }
    }
}

/// One stream-processing job (`streamProcType`/`streamProcCfg`).
pub struct SpeJobSpec {
    /// Job name (unique).
    pub name: String,
    /// Source topics, in source-index order (for joins).
    pub sources: Vec<String>,
    /// Factory producing the job's plan. Called once at build time, and
    /// again for each `RestartProcess` fault so a respawned worker starts
    /// from a fresh plan before restoring its checkpoint.
    pub plan: Box<dyn Fn() -> Plan>,
    /// Result sink.
    pub sink: SpeSinkSpec,
    /// Engine configuration.
    pub cfg: SpeConfig,
    /// Parallel instances per stage. `1` (the default) keeps the classic
    /// one-worker-per-job layout; `n > 1` splits the plan at its `KeyBy`
    /// boundaries into stages of `n` instances each, connected by keyed
    /// shuffle topics, with instance `i` of a stage statically owning a
    /// contiguous range of its input partitions (and key groups).
    pub parallelism: usize,
    /// Per-stage parallelism overrides (`stage index → instances`).
    pub stage_parallelism: BTreeMap<usize, usize>,
    /// Fixed key-group count: keyed state is sliced into this many groups
    /// (`hash(key) % key_groups`), shuffle topics get exactly this many
    /// partitions, and a rescale redistributes whole groups. Must be at
    /// least the largest stage parallelism.
    pub key_groups: u32,
    /// When set, a whole-job `RestartProcess` fault respawns every stage at
    /// *this* parallelism instead of the original one — the rescale path.
    /// Each restored instance reassembles its key groups from all old
    /// instances' checkpoint chains.
    pub rescale_on_restart: Option<usize>,
    /// Cached stage count: probing it builds a full throwaway plan, which
    /// can be arbitrarily expensive (a factory may train a model), so it
    /// runs at most once per spec.
    stage_count: std::cell::OnceCell<usize>,
}

impl SpeJobSpec {
    /// Creates a job spec with the classic single-worker layout.
    pub fn new(
        name: impl Into<String>,
        sources: Vec<String>,
        plan: impl Fn() -> Plan + 'static,
        sink: SpeSinkSpec,
        cfg: SpeConfig,
    ) -> Self {
        SpeJobSpec {
            name: name.into(),
            sources,
            plan: Box::new(plan),
            sink,
            cfg,
            parallelism: 1,
            stage_parallelism: BTreeMap::new(),
            key_groups: DEFAULT_KEY_GROUPS,
            rescale_on_restart: None,
            stage_count: std::cell::OnceCell::new(),
        }
    }

    /// Runs every stage with `n` parallel instances.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn parallelism(mut self, n: usize) -> Self {
        assert!(n > 0, "parallelism must be at least 1");
        self.parallelism = n;
        self
    }

    /// Overrides one stage's parallelism (stage 0 reads the job's source
    /// topics; each `KeyBy` boundary starts the next stage).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn stage_parallelism(mut self, stage: usize, n: usize) -> Self {
        assert!(n > 0, "stage parallelism must be at least 1");
        self.stage_parallelism.insert(stage, n);
        self
    }

    /// Sets the fixed key-group count.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn key_groups(mut self, n: u32) -> Self {
        assert!(n > 0, "key_groups must be at least 1");
        self.key_groups = n;
        self
    }

    /// Restarts the whole job at parallelism `m` after a job-level
    /// crash/restart fault (rescale N→M).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rescale_on_restart(mut self, m: usize) -> Self {
        assert!(m > 0, "rescale parallelism must be at least 1");
        self.rescale_on_restart = Some(m);
        self
    }

    /// True when this job uses the parallel stage machinery.
    fn is_parallel(&self) -> bool {
        self.parallelism > 1
            || self.rescale_on_restart.is_some()
            || self.stage_parallelism.values().any(|n| *n > 1)
    }

    /// The effective parallelism of `stage`.
    fn par_of(&self, stage: usize) -> usize {
        self.stage_parallelism
            .get(&stage)
            .copied()
            .unwrap_or(self.parallelism)
    }
}

/// Default key-group count for parallel jobs (Flink's `maxParallelism`
/// scaled down to simulation size).
pub const DEFAULT_KEY_GROUPS: u32 = 16;

/// The intermediate shuffle topic feeding `stage` of `job` (declared
/// automatically with `key_groups` partitions).
pub fn shuffle_topic(job: &str, stage: usize) -> String {
    format!("__shuffle.{job}.{stage}")
}

/// The process name of one parallel stage instance.
pub fn instance_name(job: &str, stage: usize, instance: usize) -> String {
    format!("{job}/{stage}/{instance}")
}

/// Where scenario-level checkpoints are stored.
#[derive(Debug, Clone)]
pub enum CheckpointBackendSpec {
    /// Snapshots on the orchestrator's heap, outside every worker's failure
    /// domain: instant and free, like a job-manager heap.
    InMemory,
    /// Snapshots persisted through the store server on the named host,
    /// paying simulated CPU and network cost per snapshot and per restore.
    StoreOn {
        /// Host carrying the store server.
        host: String,
    },
}

/// Scenario-level checkpointing, applied to every SPE job that does not
/// configure its own schedule.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Interval and offset-commit mode.
    pub cfg: CheckpointCfg,
    /// Snapshot storage.
    pub backend: CheckpointBackendSpec,
}

/// Where every broker's log segments and meta blob are persisted, making
/// broker crash/restart survivable.
#[derive(Debug, Clone)]
pub enum BrokerDurabilitySpec {
    /// Segments on a shared map outside the broker processes — an
    /// always-synced local disk: instant, free, survives broker crashes.
    InMemory,
    /// Segments persisted through the store server on the named host,
    /// paying simulated CPU/network cost per flush; produce acks wait for
    /// the covering flush (fsync-before-ack).
    StoreOn {
        /// Host carrying the store server.
        host: String,
    },
}

impl fmt::Debug for SpeJobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpeJobSpec")
            .field("name", &self.name)
            .field("sources", &self.sources)
            .field("sink", &self.sink)
            .finish()
    }
}

/// A scenario validation error: every `Deny`-level diagnostic the
/// analyzer produced, reported together instead of one at a time (the
/// full catalog, warnings included, comes from [`Scenario::analyze`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// The blocking diagnostics, in report order.
    pub diagnostics: Vec<Diagnostic>,
}

impl ScenarioError {
    fn from_report(report: &AnalysisReport) -> ScenarioError {
        ScenarioError {
            diagnostics: report.denials().cloned().collect(),
        }
    }

    /// True when some blocking diagnostic carries `code` (`"S2G0xx"`).
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario analysis found {} blocking misconfiguration(s):",
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        write!(
            f,
            "(see docs/analysis.md for the catalog; `allow_deny_diagnostics()` overrides)"
        )
    }
}

impl std::error::Error for ScenarioError {}

/// The scenario under construction — stream2gym's task description.
pub struct Scenario {
    name: String,
    seed: u64,
    duration: SimTime,
    mode: CoordinationMode,
    server: ServerSpec,
    mem_model: MemModel,
    net_cfg: NetworkConfig,
    default_link: LinkSpec,
    host_links: BTreeMap<String, LinkSpec>,
    host_cpu_pct: BTreeMap<String, f64>,
    explicit_topology: Option<Topology>,
    controller_cfg: ControllerConfig,
    topics: Vec<TopicSpec>,
    brokers: Vec<(String, BrokerConfig)>,
    stores: Vec<(String, StoreConfig)>,
    store_replication: usize,
    partition_replication: Option<u32>,
    acks_override: Option<AckMode>,
    batching: BatchingOverrides,
    transactional_sinks: bool,
    spe_jobs: Vec<(String, SpeJobSpec)>,
    producers: Vec<(String, SourceSpec, ProducerConfig)>,
    consumers: Vec<(String, ConsumerConfig, Vec<String>, ConsumerSinkSpec)>,
    faults: FaultPlan,
    checkpointing: Option<CheckpointSpec>,
    broker_durability: Option<BrokerDurabilitySpec>,
    log_compaction: bool,
    log_retention_age: Option<SimDuration>,
    log_retention_bytes: Option<usize>,
    watch_tx: Vec<String>,
    tracing: bool,
    event_limit: u64,
    telemetry: bool,
    telemetry_interval: SimDuration,
    telemetry_trace: bool,
    allow_deny: bool,
}

impl Scenario {
    /// Starts an empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            seed: 1,
            duration: SimTime::from_secs(60),
            mode: CoordinationMode::Zk,
            server: ServerSpec::default(),
            mem_model: MemModel::default(),
            net_cfg: NetworkConfig::default(),
            default_link: LinkSpec::new(),
            host_links: BTreeMap::new(),
            host_cpu_pct: BTreeMap::new(),
            explicit_topology: None,
            controller_cfg: ControllerConfig::default(),
            topics: Vec::new(),
            brokers: Vec::new(),
            stores: Vec::new(),
            store_replication: 1,
            partition_replication: None,
            acks_override: None,
            batching: BatchingOverrides::default(),
            transactional_sinks: false,
            spe_jobs: Vec::new(),
            producers: Vec::new(),
            consumers: Vec::new(),
            faults: FaultPlan::new(),
            checkpointing: None,
            broker_durability: None,
            log_compaction: false,
            log_retention_age: None,
            log_retention_bytes: None,
            watch_tx: Vec::new(),
            tracing: false,
            event_limit: u64::MAX,
            telemetry: true,
            telemetry_interval: SimDuration::from_millis(500),
            telemetry_trace: false,
            allow_deny: false,
        }
    }

    /// Lets [`Scenario::run`] start despite `Deny`-level analyzer
    /// diagnostics — an explicit "I know, run it anyway" for experiments
    /// that deliberately misconfigure (the diagnostics still appear in
    /// [`Scenario::analyze`]).
    pub fn allow_deny_diagnostics(&mut self) -> &mut Self {
        self.allow_deny = true;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the experiment duration.
    pub fn duration(&mut self, d: SimTime) -> &mut Self {
        self.duration = d;
        self
    }

    /// Selects the coordination mode (ZooKeeper vs KRaft).
    pub fn coordination(&mut self, mode: CoordinationMode) -> &mut Self {
        self.mode = mode;
        self.controller_cfg.mode = mode;
        self
    }

    /// Overrides controller tunables.
    pub fn controller_config(&mut self, cfg: ControllerConfig) -> &mut Self {
        self.controller_cfg = cfg;
        self.controller_cfg.mode = self.mode;
        self
    }

    /// Models the underlying server (cores, memory, sampling).
    pub fn server(&mut self, spec: ServerSpec) -> &mut Self {
        self.server = spec;
        self
    }

    /// Overrides the memory model constants.
    pub fn mem_model(&mut self, model: MemModel) -> &mut Self {
        self.mem_model = model;
        self
    }

    /// Selects the network backend (emulation vs "hardware" — Fig. 8).
    pub fn network_profile(&mut self, cfg: NetworkConfig) -> &mut Self {
        self.net_cfg = cfg;
        self
    }

    /// Sets the default link attributes for the auto-built one-big-switch
    /// topology.
    pub fn default_link(&mut self, spec: LinkSpec) -> &mut Self {
        self.default_link = spec;
        self
    }

    /// Overrides the link attributes of one host's access link.
    pub fn host_link(&mut self, host: &str, spec: LinkSpec) -> &mut Self {
        self.host_links.insert(host.to_string(), spec);
        self
    }

    /// Caps a host's CPU share (the `cpuPercentage` attribute).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `(0, 100]`.
    pub fn host_cpu_percentage(&mut self, host: &str, pct: f64) -> &mut Self {
        assert!(
            pct > 0.0 && pct <= 100.0,
            "cpuPercentage must be in (0, 100], got {pct}"
        );
        self.host_cpu_pct.insert(host.to_string(), pct);
        self
    }

    /// Supplies an explicit topology instead of the auto one-big-switch.
    /// Controller hosts `ctl1[,ctl2,ctl3]` must exist in it.
    pub fn topology(&mut self, topo: Topology) -> &mut Self {
        self.explicit_topology = Some(topo);
        self
    }

    /// Declares a topic.
    pub fn topic(&mut self, spec: TopicSpec) -> &mut Self {
        self.topics.push(spec);
        self
    }

    /// Places a broker (id = declaration order) on a host.
    pub fn broker(&mut self, host: &str) -> &mut Self {
        self.broker_with(host, BrokerConfig::default())
    }

    /// Places a broker with an explicit configuration.
    pub fn broker_with(&mut self, host: &str, cfg: BrokerConfig) -> &mut Self {
        self.brokers.push((host.to_string(), cfg));
        self
    }

    /// Places a data-store server on a host.
    pub fn store(&mut self, host: &str, cfg: StoreConfig) -> &mut Self {
        self.stores.push((host.to_string(), cfg));
        self
    }

    /// Places a stream-processing job on a host.
    pub fn spe_job(&mut self, host: &str, job: SpeJobSpec) -> &mut Self {
        self.spe_jobs.push((host.to_string(), job));
        self
    }

    /// Places a producer stub (id = declaration order) on a host.
    pub fn producer(&mut self, host: &str, source: SourceSpec, cfg: ProducerConfig) -> &mut Self {
        self.producers.push((host.to_string(), source, cfg));
        self
    }

    /// Places a consumer stub (id = declaration order) subscribed to
    /// `topics` on a host.
    pub fn consumer(&mut self, host: &str, cfg: ConsumerConfig, topics: &[&str]) -> &mut Self {
        self.consumer_with_sink(host, cfg, topics, ConsumerSinkSpec::Collect)
    }

    /// Places a consumer with a custom sink.
    pub fn consumer_with_sink(
        &mut self,
        host: &str,
        cfg: ConsumerConfig,
        topics: &[&str],
        sink: ConsumerSinkSpec,
    ) -> &mut Self {
        self.consumers.push((
            host.to_string(),
            cfg,
            topics.iter().map(|t| t.to_string()).collect(),
            sink,
        ));
        self
    }

    /// Installs the fault plan (`faultCfg`).
    pub fn faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.faults = plan;
        self
    }

    /// Enables checkpointing for every SPE job (jobs that set their own
    /// `cfg.checkpoint` keep it), storing snapshots in memory outside the
    /// workers' failure domain.
    pub fn with_checkpointing(&mut self, cfg: CheckpointCfg) -> &mut Self {
        self.checkpointing = Some(CheckpointSpec {
            cfg,
            backend: CheckpointBackendSpec::InMemory,
        });
        self
    }

    /// Enables checkpointing with snapshots persisted through the store
    /// server on `store_host`, paying simulated CPU/network cost per
    /// snapshot and a read round trip on every restore.
    pub fn with_durable_checkpointing(
        &mut self,
        cfg: CheckpointCfg,
        store_host: &str,
    ) -> &mut Self {
        self.checkpointing = Some(CheckpointSpec {
            cfg,
            backend: CheckpointBackendSpec::StoreOn {
                host: store_host.to_string(),
            },
        });
        self
    }

    /// Replicates every declared store server across `n` replicas: the
    /// declared host carries replica 0 (the initial primary) and replicas
    /// `1..n` land on auto-added hosts `<host>-r<i>`. The primary
    /// quorum-replicates every `Put`/`Delete`/`Insert` before acking — a
    /// write is durable iff a majority applied it — and a crashed primary
    /// fails over to the lowest surviving member after the group session
    /// timeout, so checkpoints and durable broker logs survive any minority
    /// of store crashes ([`FaultPlan::crash_restart_store`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_core::Scenario;
    /// use s2g_spe::CheckpointCfg;
    /// use s2g_sim::SimDuration;
    /// use s2g_store::StoreConfig;
    ///
    /// let mut sc = Scenario::new("replicated-store");
    /// sc.store("h6", StoreConfig::default());
    /// sc.with_replicated_store(3);
    /// sc.with_durable_checkpointing(
    ///     CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
    ///     "h6",
    /// );
    /// ```
    pub fn with_replicated_store(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "a store group needs at least one replica");
        self.store_replication = n;
        self
    }

    /// Overrides the replication factor of **every** topic — the ones
    /// declared with [`topic`](Scenario::topic) *and* the shuffle topics
    /// parallel SPE jobs auto-declare — so a whole scenario can be run at
    /// RF=1 and RF=3 without touching each spec. The factor is capped at
    /// the declared broker count (a 2-broker cluster can't host 3
    /// replicas). Placement is rack-aware: each broker's rack is the host
    /// it was placed on, so replicas of one partition land on distinct
    /// hosts whenever enough hosts exist.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_core::Scenario;
    ///
    /// let mut sc = Scenario::new("replicated-partitions");
    /// sc.broker("h1").broker("h2").broker("h3");
    /// sc.with_replicated_partitions(3);
    /// ```
    pub fn with_replicated_partitions(&mut self, n: u32) -> &mut Self {
        assert!(n > 0, "replication factor must be at least 1");
        self.partition_replication = Some(n);
        self
    }

    /// Overrides the ack mode of **every** producer — standalone stubs and
    /// the embedded sink producers of topic-sink SPE jobs. With
    /// [`AckMode::All`] an append is only acknowledged once the in-sync
    /// replicas (minus each broker's configured `acks_all_slack`) have it,
    /// so a leader crash after the ack cannot lose the record.
    pub fn with_acks(&mut self, acks: AckMode) -> &mut Self {
        self.acks_override = Some(acks);
        self
    }

    /// Enables or disables producer batching for **every** producer —
    /// standalone stubs and embedded SPE sink producers. Batching is on by
    /// default; `with_batching(false)` degrades producers to one record per
    /// produce request (batch of 1, zero linger), which pays the full
    /// per-request broker CPU and RPC framing for every record — the
    /// baseline the `hotpath` micro-bench compares against.
    pub fn with_batching(&mut self, on: bool) -> &mut Self {
        self.batching.disabled = !on;
        self
    }

    /// Overrides every producer's linger (the wait for more records before
    /// a partial batch is sent, Kafka `linger.ms`).
    pub fn linger_ms(&mut self, ms: u64) -> &mut Self {
        self.batching.linger = Some(SimDuration::from_millis(ms));
        self
    }

    /// Overrides every producer's batch byte threshold (Kafka
    /// `batch.size`): a batch is sealed as soon as this many record bytes
    /// accumulate, even before the linger elapses.
    pub fn batch_max_bytes(&mut self, bytes: usize) -> &mut Self {
        self.batching.max_bytes = Some(bytes);
        self
    }

    /// Enables batch compression on every producer: sealed batches carry
    /// fewer bytes on every hop (produce, replication, fetch) in exchange
    /// for compress CPU at the producer and decompress CPU at consumers.
    pub fn with_compression(&mut self, on: bool) -> &mut Self {
        self.batching.compression = Some(if on {
            Compression::Lz4
        } else {
            Compression::None
        });
        self
    }

    /// Turns every topic-sink SPE job into a checkpoint-aligned
    /// *transactional* sink and every consumer stub into a read-committed
    /// reader: sink output is staged under a transaction marker per
    /// checkpoint epoch and only becomes visible once the covering
    /// checkpoint is durable and the marker flips — end-to-end exactly-once
    /// into the sink topic, not just state-level exactly-once. A crash
    /// between the snapshot persist and the commit either rolls the
    /// transaction forward (the prepare completed) or aborts it and
    /// replays, so the committed output stream equals the fault-free run's.
    /// Requires exactly-once checkpointing on the jobs.
    pub fn with_transactional_sinks(&mut self) -> &mut Self {
        self.transactional_sinks = true;
        self
    }

    /// Enables *incremental* checkpointing for every SPE job: after each
    /// full base snapshot, captures ship only the keys/windows touched
    /// since the previous capture, so snapshot bytes scale with churn
    /// instead of with total state. After `max_delta_chain` deltas the next
    /// capture is forced to re-base, bounding restore work. Composes with
    /// either backend — call this instead of
    /// [`with_checkpointing`](Scenario::with_checkpointing), or pass an
    /// [`incremental`](CheckpointCfg::incremental) config to
    /// [`with_durable_checkpointing`](Scenario::with_durable_checkpointing).
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_core::Scenario;
    /// use s2g_spe::CheckpointCfg;
    /// use s2g_sim::SimDuration;
    ///
    /// let mut sc = Scenario::new("incremental");
    /// sc.with_incremental_checkpointing(
    ///     CheckpointCfg::exactly_once(SimDuration::from_secs(1)),
    ///     8,
    /// );
    /// ```
    pub fn with_incremental_checkpointing(
        &mut self,
        cfg: CheckpointCfg,
        max_delta_chain: u32,
    ) -> &mut Self {
        self.checkpointing = Some(CheckpointSpec {
            cfg: cfg.incremental(max_delta_chain),
            backend: CheckpointBackendSpec::InMemory,
        });
        self
    }

    /// Enables keyed log compaction on every broker: the cleaner keeps only
    /// the latest committed record per key in sealed segments (Kafka's
    /// `cleanup.policy=compact`), deletes dead segment blobs through the
    /// log backend, and bounds restart replay by live keys instead of by
    /// history. Readers observe the same per-key final state as on the raw
    /// log.
    pub fn with_log_compaction(&mut self) -> &mut Self {
        self.log_compaction = true;
        self
    }

    /// Enables time- and/or size-based segment retention on every broker:
    /// sealed, fully committed segments older than `max_age` (or beyond
    /// `max_bytes` of retained data per partition) are dropped, the log
    /// start offset advances, and late readers get an out-of-range reset to
    /// the earliest retained record.
    pub fn with_log_retention(
        &mut self,
        max_age: Option<SimDuration>,
        max_bytes: Option<usize>,
    ) -> &mut Self {
        self.log_retention_age = max_age;
        self.log_retention_bytes = max_bytes;
        self
    }

    /// Gives every broker a recoverable log on an always-synced in-memory
    /// "local disk" outside the broker processes: a crashed-and-restarted
    /// broker ([`FaultPlan::crash_restart_broker`]) replays its segments,
    /// rebuilds its high watermarks and consumer-group offsets, and resumes
    /// serving with nothing lost. Persistence is instant and free — use
    /// [`with_durable_broker`](Scenario::with_durable_broker) to pay
    /// simulated cost through a store server instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_broker::TopicSpec;
    /// use s2g_core::Scenario;
    /// use s2g_net::FaultPlan;
    /// use s2g_sim::{SimDuration, SimTime};
    ///
    /// let mut sc = Scenario::new("broker-bounce");
    /// sc.topic(TopicSpec::new("events")).with_recoverable_broker();
    /// sc.broker("h1");
    /// sc.faults(FaultPlan::new().crash_restart_broker(
    ///     0,
    ///     SimTime::from_secs(10),
    ///     SimDuration::from_secs(2),
    /// ));
    /// let result = sc.run()?;
    /// let recovery = result.report.brokers[0].recovery.expect("broker bounced");
    /// assert!(recovery.recovered_at.is_some());
    /// # Ok::<(), s2g_core::ScenarioError>(())
    /// ```
    pub fn with_recoverable_broker(&mut self) -> &mut Self {
        self.broker_durability = Some(BrokerDurabilitySpec::InMemory);
        self
    }

    /// Gives every broker a durable log persisted through the store server
    /// on `store_host`: dirty segments and the committed-offset/metadata
    /// snapshot ship over the emulated network on every flush (paying the
    /// store's CPU cost), produce acknowledgements wait for the covering
    /// flush, and a restarted broker pays a read round trip per blob while
    /// it replays — the recovery-latency cost the report surfaces in
    /// [`BrokerRecoveryReport`].
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_broker::TopicSpec;
    /// use s2g_core::Scenario;
    /// use s2g_store::StoreConfig;
    ///
    /// let mut sc = Scenario::new("durable-broker");
    /// sc.topic(TopicSpec::new("events"));
    /// sc.broker("h1");
    /// sc.store("h2", StoreConfig::default());
    /// sc.with_durable_broker("h2");
    /// assert!(sc.run().is_ok());
    /// ```
    pub fn with_durable_broker(&mut self, store_host: &str) -> &mut Self {
        self.broker_durability = Some(BrokerDurabilitySpec::StoreOn {
            host: store_host.to_string(),
        });
        self
    }

    /// Samples per-second transmit throughput of the named nodes (Fig. 6d).
    pub fn watch_throughput(&mut self, nodes: &[&str]) -> &mut Self {
        self.watch_tx = nodes.iter().map(|n| n.to_string()).collect();
        self
    }

    /// Enables trace collection.
    pub fn tracing(&mut self, on: bool) -> &mut Self {
        self.tracing = on;
        self
    }

    /// Turns the always-on metrics registry's periodic sampling on or off.
    /// On (the default), a sampler process snapshots every registered
    /// metric — consumer lag, per-instance record counts, broker log
    /// sizes, checkpoint histograms, host CPU occupancy — into per-metric
    /// time series every [`telemetry_interval`](Scenario::telemetry_interval),
    /// surfaced through [`RunReport::metric_series`] and
    /// [`RunResult::telemetry`]. Sampling is a pure observer (no RNG, no
    /// messages), so same-seed runs are identical with it on or off.
    pub fn with_telemetry(&mut self, on: bool) -> &mut Self {
        self.telemetry = on;
        self
    }

    /// Sets the metric-sampling cadence (default 500 ms).
    pub fn telemetry_interval(&mut self, d: SimDuration) -> &mut Self {
        self.telemetry_interval = d;
        self
    }

    /// Enables causal event tracing: typed spans for record lifecycle
    /// (produce, broker append, fetch, shuffle hop, operator batch, sink
    /// commit), checkpoint barriers and persists, transaction phases, and
    /// every fault-injection and recovery phase. Off by default (traces
    /// grow with traffic); export with
    /// [`RunResult::telemetry`]`.chrome_json()` and open the file in
    /// `chrome://tracing` or Perfetto.
    pub fn with_telemetry_trace(&mut self, on: bool) -> &mut Self {
        self.telemetry_trace = on;
        self
    }

    /// Caps the total number of simulation events (livelock guard).
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    fn controller_hosts(&self) -> Vec<String> {
        let n = match self.mode {
            CoordinationMode::Zk => 1,
            CoordinationMode::Kraft => 3,
        };
        (1..=n).map(|i| format!("ctl{i}")).collect()
    }

    /// Hosts carrying one store declaration's replicas: the declared host
    /// first, then the auto-added `-r<i>` hosts.
    fn store_replica_hosts(&self, host: &str) -> Vec<String> {
        (0..self.store_replication)
            .map(|i| {
                if i == 0 {
                    host.to_string()
                } else {
                    format!("{host}-r{i}")
                }
            })
            .collect()
    }

    /// The host one parallel stage instance runs on (auto-added, so each
    /// instance gets its own access link and CPU — the point of scaling
    /// out).
    fn instance_host(host: &str, stage: usize, index: usize) -> String {
        format!("{host}-{stage}-{index}")
    }

    /// `(stage count, per-stage maximum instance count)` of one job —
    /// maximum covers both the initial parallelism and any rescale target,
    /// so hosts are provisioned for every instance that may ever exist.
    fn job_stage_layout(job: &SpeJobSpec) -> (usize, Vec<usize>) {
        let n_stages = *job.stage_count.get_or_init(|| (job.plan)().stage_count());
        let max_per: Vec<usize> = (0..n_stages)
            .map(|s| job.par_of(s).max(job.rescale_on_restart.unwrap_or(0)))
            .collect();
        (n_stages, max_per)
    }

    fn component_hosts(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let mut push = |h: &String| {
            if !seen.contains(h) {
                seen.push(h.clone());
            }
        };
        for (h, _) in &self.brokers {
            push(h);
        }
        for (h, _) in &self.stores {
            for rh in self.store_replica_hosts(h) {
                push(&rh);
            }
        }
        for (h, job) in &self.spe_jobs {
            if job.is_parallel() {
                let (n_stages, max_per) = Self::job_stage_layout(job);
                for (s, max) in max_per.iter().enumerate().take(n_stages) {
                    for i in 0..*max {
                        push(&Self::instance_host(h, s, i));
                    }
                }
            } else {
                push(h);
            }
        }
        for (h, _, _) in &self.producers {
            push(h);
        }
        for (h, _, _, _) in &self.consumers {
            push(h);
        }
        seen
    }

    /// Flattens the scenario into the plain-data facts the analyzer
    /// reads: effective configs (scenario-level overrides applied, exactly
    /// as `run` would), the would-be shuffle topics, the legal fault
    /// targets, and the fault plan normalized per target.
    fn build_facts(&self) -> ScenarioFacts {
        let cap = (self.brokers.len() as u32).max(1);
        let eff_rf = |declared: u32| match self.partition_replication {
            Some(rf) => rf.min(cap),
            None => declared,
        };
        let mut topics: Vec<TopicFacts> = self
            .topics
            .iter()
            .map(|t| TopicFacts {
                name: t.name.clone(),
                partitions: t.partitions,
                replication: eff_rf(t.replication),
                declared_replication: t.replication,
                shuffle: false,
            })
            .collect();
        for (_, job) in &self.spe_jobs {
            if job.is_parallel() {
                let (n_stages, _) = Self::job_stage_layout(job);
                for s in 1..n_stages {
                    topics.push(TopicFacts {
                        name: shuffle_topic(&job.name, s),
                        partitions: job.key_groups,
                        replication: eff_rf(1),
                        declared_replication: 1,
                        shuffle: true,
                    });
                }
            }
        }
        let brokers = self
            .brokers
            .iter()
            .map(|(host, cfg)| {
                let mut cfg = cfg.clone();
                cfg.log_compaction |= self.log_compaction;
                cfg.log_retention_age = cfg.log_retention_age.or(self.log_retention_age);
                cfg.log_retention_bytes = cfg.log_retention_bytes.or(self.log_retention_bytes);
                BrokerFacts {
                    host: host.clone(),
                    cfg,
                }
            })
            .collect();
        let mut controller = self.controller_cfg.clone();
        controller.mode = self.mode;
        let producers = self
            .producers
            .iter()
            .enumerate()
            .map(|(i, (_, src, cfg))| {
                let mut cfg = cfg.clone();
                if let Some(acks) = self.acks_override {
                    cfg.acks = acks;
                }
                self.batching.apply(&mut cfg);
                let (min_interval, max_payload) = source_hints(src);
                ProducerFacts {
                    name: format!("producer-{i}"),
                    topics: src.topics(),
                    cfg,
                    min_interval,
                    max_payload,
                }
            })
            .collect();
        let consumers = self
            .consumers
            .iter()
            .enumerate()
            .map(|(i, (_, cfg, topics, _))| {
                let mut cfg = cfg.clone();
                if self.transactional_sinks {
                    cfg.read_committed = true;
                }
                ConsumerFacts {
                    name: format!("consumer-{i}"),
                    topics: topics.clone(),
                    cfg,
                }
            })
            .collect();
        let jobs = self
            .spe_jobs
            .iter()
            .map(|(_, job)| {
                let mut cfg = job.cfg.clone();
                if cfg.checkpoint.is_none() {
                    if let Some(spec) = &self.checkpointing {
                        cfg.checkpoint = Some(spec.cfg);
                    }
                }
                if self.transactional_sinks {
                    cfg.transactional_sink = true;
                    cfg.consumer.read_committed = true;
                }
                if let Some(acks) = self.acks_override {
                    cfg.producer.acks = acks;
                }
                self.batching.apply(&mut cfg.producer);
                let parallel = job.is_parallel();
                let (n_stages, max_per) = if parallel {
                    Self::job_stage_layout(job)
                } else {
                    (1, vec![1])
                };
                let (sink_topic, sink_store_host) = match &job.sink {
                    SpeSinkSpec::Topic(t) => (Some(t.clone()), None),
                    SpeSinkSpec::StoreOn { host, .. } => (None, Some(host.clone())),
                    SpeSinkSpec::Collect => (None, None),
                };
                JobFacts {
                    name: job.name.clone(),
                    sources: job.sources.clone(),
                    sink_topic,
                    sink_store_host,
                    cfg,
                    parallel,
                    n_stages,
                    max_per,
                    key_groups: job.key_groups,
                    rescale: job.rescale_on_restart,
                }
            })
            .collect();
        let faults = self
            .faults
            .events()
            .iter()
            .map(|(at, action)| {
                let (target, kind) = match action {
                    FaultAction::CrashProcess(n) => {
                        (FaultTarget::Process(n.clone()), FaultKind::Crash)
                    }
                    FaultAction::RestartProcess(n) => {
                        (FaultTarget::Process(n.clone()), FaultKind::Restart)
                    }
                    FaultAction::CrashBroker(b) => (FaultTarget::Broker(*b), FaultKind::Crash),
                    FaultAction::RestartBroker(b) => (FaultTarget::Broker(*b), FaultKind::Restart),
                    FaultAction::CrashStore(r) => (FaultTarget::Store(*r), FaultKind::Crash),
                    FaultAction::RestartStore(r) => (FaultTarget::Store(*r), FaultKind::Restart),
                    FaultAction::Disconnect(h) | FaultAction::NodeDown(h) => {
                        (FaultTarget::Net(h.clone()), FaultKind::Crash)
                    }
                    FaultAction::Reconnect(h) | FaultAction::NodeUp(h) => {
                        (FaultTarget::Net(h.clone()), FaultKind::Restart)
                    }
                    FaultAction::LinkDown(a, b) => {
                        (FaultTarget::Net(format!("{a}-{b}")), FaultKind::Crash)
                    }
                    FaultAction::LinkUp(a, b) => {
                        (FaultTarget::Net(format!("{a}-{b}")), FaultKind::Restart)
                    }
                    FaultAction::SetLoss(a, b, _) | FaultAction::SetLatency(a, b, _) => {
                        (FaultTarget::Net(format!("{a}-{b}")), FaultKind::Other)
                    }
                    FaultAction::RecomputeRoutes => {
                        (FaultTarget::Net("routes".into()), FaultKind::Other)
                    }
                };
                FaultFacts {
                    at: *at,
                    target,
                    kind,
                }
            })
            .collect();
        let mut valid_process_targets: Vec<String> = Vec::new();
        for (_, job) in &self.spe_jobs {
            valid_process_targets.push(job.name.clone());
            if job.is_parallel() {
                let (n_stages, max_per) = Self::job_stage_layout(job);
                for (s, max) in max_per.iter().enumerate().take(n_stages) {
                    for i in 0..*max {
                        valid_process_targets.push(instance_name(&job.name, s, i));
                    }
                }
                // The `job/instance` shorthand targets the last stage.
                if let Some(last) = max_per.last() {
                    for i in 0..*last {
                        valid_process_targets.push(format!("{}/{i}", job.name));
                    }
                }
            }
        }
        for i in 0..self.producers.len() {
            valid_process_targets.push(format!("producer-{i}"));
        }
        for i in 0..self.consumers.len() {
            valid_process_targets.push(format!("consumer-{i}"));
        }
        let topology_hosts = self
            .explicit_topology
            .as_ref()
            .map(|t| t.nodes().map(|(_, n)| n.name.clone()).collect());
        let required_hosts: Vec<String> = self
            .component_hosts()
            .into_iter()
            .chain(self.controller_hosts())
            .collect();
        ScenarioFacts {
            name: self.name.clone(),
            duration: self.duration,
            link_latency: self.default_link.latency,
            controller,
            topics,
            partition_replication: self.partition_replication,
            brokers,
            store_hosts: self.stores.iter().map(|(h, _)| h.clone()).collect(),
            store_replication: self.store_replication,
            producers,
            consumers,
            jobs,
            faults,
            valid_process_targets,
            topology_hosts,
            required_hosts,
            checkpoint_interval: self.checkpointing.as_ref().map(|s| s.cfg.interval),
            checkpoint_store_host: match &self.checkpointing {
                Some(CheckpointSpec {
                    backend: CheckpointBackendSpec::StoreOn { host },
                    ..
                }) => Some(host.clone()),
                _ => None,
            },
            durability_store_host: match &self.broker_durability {
                Some(BrokerDurabilitySpec::StoreOn { host }) => Some(host.clone()),
                _ => None,
            },
            log_retention_age: self.log_retention_age,
            transactional_sinks: self.transactional_sinks,
        }
    }

    /// Runs the full static feasibility ruleset over this scenario without
    /// simulating anything: every `S2G0xx` diagnostic the description
    /// triggers, `Deny` and `Warn` alike (`docs/analysis.md` has the
    /// catalog). [`Scenario::run`] refuses to start while `Deny`
    /// diagnostics are present, unless [`Scenario::allow_deny_diagnostics`]
    /// was called.
    pub fn analyze(&self) -> AnalysisReport {
        analyze_facts(&self.build_facts())
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let report = self.analyze();
        if report.has_deny() && !self.allow_deny {
            return Err(ScenarioError::from_report(&report));
        }
        Ok(())
    }

    fn build_topology(&self) -> Topology {
        if let Some(t) = &self.explicit_topology {
            return t.clone();
        }
        let mut topo = Topology::new();
        topo.add_switch("s1").expect("fresh topology");
        for host in self
            .component_hosts()
            .iter()
            .chain(&self.controller_hosts())
        {
            if topo.lookup(host).is_some() {
                continue;
            }
            topo.add_host(host.as_str()).expect("unique hosts");
            let spec = self
                .host_links
                .get(host)
                .copied()
                .unwrap_or(self.default_link);
            topo.add_link(host, "s1", spec).expect("valid link");
        }
        topo
    }

    /// Validates, builds, runs, and reports.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the description is inconsistent.
    pub fn run(mut self) -> Result<RunResult, ScenarioError> {
        self.validate()?;
        // Baseline for the zero-copy regression gate: any delta over the
        // run means some path deep-copied a shared RecordBatch.
        let batch_copies_before = s2g_proto::shared_batch_copies();
        // Auto-declare the intermediate shuffle topics of parallel jobs
        // (before controllers are built — they own topic creation). One
        // topic per stage boundary, with exactly `key_groups` partitions so
        // the keyed partitioner *is* the shuffle router.
        let mut shuffle_specs: Vec<TopicSpec> = Vec::new();
        for (_, job) in &self.spe_jobs {
            if job.is_parallel() {
                let (n_stages, _) = Self::job_stage_layout(job);
                for s in 1..n_stages {
                    shuffle_specs.push(
                        TopicSpec::new(shuffle_topic(&job.name, s)).partitions(job.key_groups),
                    );
                }
            }
        }
        self.topics.extend(shuffle_specs);
        if let Some(rf) = self.partition_replication {
            // Applied after shuffle-topic finalization so auto-declared
            // topics replicate too; capped at the broker count so a small
            // cluster still runs.
            let cap = (self.brokers.len() as u32).max(1);
            for t in &mut self.topics {
                t.replication = rf.min(cap);
            }
        }
        let duration = self.duration;
        let topo = self.build_topology();
        let n_switches = topo
            .nodes()
            .filter(|(_, n)| n.kind == s2g_net::NodeKind::Switch)
            .count();
        let net = Network::with_config(topo, self.net_cfg).into_handle();
        let mut sim = Sim::new(self.seed);
        sim.set_transport(Box::new(NetTransport(net.clone())));
        sim.set_tracing(self.tracing);
        sim.set_event_limit(self.event_limit);

        // Run-wide telemetry: one shared registry/series/tracer handle every
        // component records into. Created before the components so build and
        // respawn recipes alike attach the same handle.
        let tele = Telemetry::new();
        tele.set_trace_enabled(self.telemetry_trace);

        // CPU per host; ledger for memory.
        let mut cpus: BTreeMap<String, CpuHandle> = BTreeMap::new();
        {
            let n = net.borrow();
            for (_, node) in n.topology().nodes() {
                if node.kind == s2g_net::NodeKind::Host {
                    let speed = self.host_cpu_pct.get(&node.name).copied().unwrap_or(100.0) / 100.0;
                    cpus.insert(
                        node.name.clone(),
                        HostCpu::shared(node.name.clone(), self.server.cores, speed),
                    );
                }
            }
        }
        let baseline = self.mem_model.os_base + self.mem_model.per_switch * n_switches as u64;
        let ledger: LedgerHandle = MemLedger::new(baseline).into_handle();

        // Deterministic pid layout.
        let ctrl_hosts = self.controller_hosts();
        let n_ctrl = ctrl_hosts.len() as u32;
        let nb = self.brokers.len() as u32;
        let controller_pids: Vec<ProcessId> = (0..n_ctrl).map(ProcessId).collect();
        let broker_pids: Vec<ProcessId> = (n_ctrl..n_ctrl + nb).map(ProcessId).collect();
        let brokers_btree: BTreeMap<BrokerId, ProcessId> = (0..nb)
            .map(|i| (BrokerId(i), broker_pids[i as usize]))
            .collect();
        let brokers_hash: BTreeMap<BrokerId, ProcessId> =
            brokers_btree.iter().map(|(k, v)| (*k, *v)).collect();
        let mut placements: Vec<(ProcessId, String)> = Vec::new();

        // Controllers. Each broker's rack is the host it is placed on, so
        // topic creation spreads a partition's replicas across hosts before
        // reusing one (Kafka's `broker.rack`).
        let racks: BTreeMap<BrokerId, String> = self
            .brokers
            .iter()
            .enumerate()
            .map(|(i, (host, _))| (BrokerId(i as u32), host.clone()))
            .collect();
        match self.mode {
            CoordinationMode::Zk => {
                let mut c = self.controller_cfg.clone();
                c.mode = CoordinationMode::Zk;
                let pid = sim.spawn(Box::new(ZkController::with_racks(
                    c,
                    brokers_btree.clone(),
                    &self.topics,
                    &racks,
                )));
                debug_assert_eq!(pid, controller_pids[0]);
                placements.push((pid, ctrl_hosts[0].clone()));
                let slot = ledger
                    .borrow_mut()
                    .register("zk-controller", self.mem_model.controller);
                let _ = slot;
            }
            CoordinationMode::Kraft => {
                let quorum: BTreeMap<BrokerId, ProcessId> = (0..n_ctrl)
                    .map(|i| (BrokerId(100_000 + i), controller_pids[i as usize]))
                    .collect();
                for i in 0..n_ctrl {
                    let mut c = self.controller_cfg.clone();
                    c.mode = CoordinationMode::Kraft;
                    let pid = sim.spawn(Box::new(KraftController::with_racks(
                        BrokerId(100_000 + i),
                        quorum.clone(),
                        brokers_btree.clone(),
                        c,
                        self.topics.clone(),
                        racks.clone(),
                    )));
                    debug_assert_eq!(pid, controller_pids[i as usize]);
                    placements.push((pid, ctrl_hosts[i as usize].clone()));
                    ledger
                        .borrow_mut()
                        .register(format!("kraft-{i}"), self.mem_model.controller);
                }
            }
        }

        // Brokers. Each build recipe is retained so a `RestartBroker` fault
        // can rebuild the broker (fresh process, bumped incarnation, same
        // pid/slot/durability backend) mid-run.
        let broker_durability = self.broker_durability.clone();
        let broker_log_store: LogStoreHandle = log_store();
        let mut broker_builds: Vec<BrokerBuild> = Vec::new();
        for (i, (host, cfg)) in self.brokers.iter().enumerate() {
            // Scenario-level cleaning knobs apply to every broker (a
            // per-broker config that already enables a policy keeps it).
            let mut cfg = cfg.clone();
            cfg.log_compaction |= self.log_compaction;
            cfg.log_retention_age = cfg.log_retention_age.or(self.log_retention_age);
            cfg.log_retention_bytes = cfg.log_retention_bytes.or(self.log_retention_bytes);
            let mut b = Broker::new(
                BrokerId(i as u32),
                cfg.clone(),
                self.mode,
                controller_pids.clone(),
                brokers_hash.clone(),
            );
            let slot = ledger
                .borrow_mut()
                .register(format!("broker-{i}"), self.mem_model.broker);
            b.set_mem_slot(ledger.clone(), slot);
            b.set_telemetry(tele.clone());
            let pid = sim.spawn(Box::new(b));
            debug_assert_eq!(pid, broker_pids[i]);
            if let Some(cpu) = cpus.get(host) {
                sim.attach_cpu(pid, cpu.clone());
            }
            placements.push((pid, host.clone()));
            broker_builds.push(BrokerBuild {
                host: host.clone(),
                cfg,
                slot,
                pid,
                incarnation: 0,
            });
        }

        let bootstrap_for = |host: &str| -> ProcessId {
            self.brokers
                .iter()
                .position(|(h, _)| h == host)
                .map(|i| broker_pids[i])
                .unwrap_or(broker_pids[0])
        };

        // Stores. With `with_replicated_store(n)` each declaration becomes
        // an n-member group: replica 0 on the declared host, the rest on
        // auto-added `<host>-r<i>` hosts. `store_pids` keeps the declared
        // host's replica-0 pid for components that address "the store on
        // host X" directly (SPE store sinks); durability clients get the
        // whole group and rotate through it on timeout.
        let store_replication = self.store_replication;
        let mut store_pids: BTreeMap<String, ProcessId> = BTreeMap::new();
        let mut store_groups: BTreeMap<String, Vec<ProcessId>> = BTreeMap::new();
        let mut store_builds: Vec<StoreBuild> = Vec::new();
        for (host, cfg) in &self.stores {
            let replica_hosts = self.store_replica_hosts(host);
            let mut group: Vec<ProcessId> = Vec::new();
            for (i, rh) in replica_hosts.iter().enumerate() {
                let mut st = StoreServer::new(cfg.clone());
                st.set_name(format!("store-{rh}"));
                let slot = ledger
                    .borrow_mut()
                    .register(format!("store-{rh}"), self.mem_model.store);
                st.set_mem_slot(ledger.clone(), slot);
                st.set_telemetry(tele.clone());
                let pid = sim.spawn(Box::new(st));
                if let Some(cpu) = cpus.get(rh) {
                    sim.attach_cpu(pid, cpu.clone());
                }
                placements.push((pid, rh.clone()));
                group.push(pid);
                store_builds.push(StoreBuild {
                    group_host: host.clone(),
                    replica_host: rh.clone(),
                    replica: i as u32,
                    cfg: cfg.clone(),
                    group: Vec::new(),
                    index: i,
                    slot,
                    pid,
                });
            }
            if store_replication > 1 {
                for (i, pid) in group.iter().enumerate() {
                    sim.process_mut::<StoreServer>(*pid)
                        .expect("store just spawned")
                        .set_group(group.clone(), i, false);
                }
            }
            store_pids.insert(host.clone(), group[0]);
            store_groups.insert(host.clone(), group.clone());
            let filled = store_builds.len();
            for b in &mut store_builds[filled - group.len()..] {
                b.group = group.clone();
            }
        }

        // Attach broker-log durability now that store pids are known. The
        // backend factory is shared with the restart path below.
        let make_log_backend = {
            let store_groups = store_groups.clone();
            let broker_log_store = broker_log_store.clone();
            move |spec: &BrokerDurabilitySpec, incarnation: u64| -> Box<dyn LogBackend> {
                match spec {
                    BrokerDurabilitySpec::InMemory => {
                        Box::new(InMemoryLogBackend::new(broker_log_store.clone()))
                    }
                    BrokerDurabilitySpec::StoreOn { host } => {
                        Box::new(DurableLogBackend::replicated(
                            store_groups
                                .get(host)
                                .expect("validated broker-log store")
                                .clone(),
                            incarnation,
                        ))
                    }
                }
            }
        };
        if let Some(spec) = &broker_durability {
            for build in &broker_builds {
                let b = sim
                    .process_mut::<Broker>(build.pid)
                    .expect("broker just spawned");
                b.set_durability(make_log_backend(spec, 0), false);
            }
        }

        // SPE jobs. Each job expands into one worker per (stage, instance):
        // the classic layout is the degenerate 1×1 case keeping the job
        // name, hosts, and producer ids it always had. Build recipes are
        // retained so crash/restart faults can rebuild any instance — and a
        // rescale restart can change how many there are — mid-run.
        let checkpoint_spec = self.checkpointing.clone();
        let checkpoint_snapshots: SnapshotStoreHandle = snapshot_store();
        let mut spe_pids: BTreeMap<String, ProcessId> = BTreeMap::new();
        let mut job_metas: Vec<SpeJobMeta> = Vec::new();
        let mut instance_builds: BTreeMap<(usize, usize, usize), SpeInstanceBuild> =
            BTreeMap::new();
        for (j, (host, job)) in self.spe_jobs.into_iter().enumerate() {
            let parallel = job.is_parallel();
            let (n_stages, _) = if parallel {
                Self::job_stage_layout(&job)
            } else {
                (1, vec![1])
            };
            let stage_par: Vec<usize> = (0..n_stages)
                .map(|s| if parallel { job.par_of(s) } else { 1 })
                .collect();
            let sink = match job.sink {
                SpeSinkSpec::Topic(t) => SpeSink::Topic(t),
                SpeSinkSpec::Collect => SpeSink::Collect,
                SpeSinkSpec::StoreOn { host: sh, table } => SpeSink::Store {
                    store: *store_pids.get(&sh).expect("validated store host"),
                    table,
                },
            };
            let mut cfg = job.cfg;
            if cfg.checkpoint.is_none() {
                if let Some(spec) = &checkpoint_spec {
                    cfg.checkpoint = Some(spec.cfg);
                }
            }
            if self.transactional_sinks {
                // Stage topic-sink (and shuffle) output under per-epoch
                // transaction markers, and read upstream (possibly also
                // transactional) topics with read-committed isolation.
                cfg.transactional_sink = true;
                cfg.consumer.read_committed = true;
            }
            if let Some(acks) = self.acks_override {
                cfg.producer.acks = acks;
            }
            self.batching.apply(&mut cfg.producer);
            let meta = SpeJobMeta {
                name: job.name.clone(),
                host: host.clone(),
                plan: job.plan,
                cfg,
                sources: job.sources,
                sink,
                parallel,
                n_stages,
                key_groups: job.key_groups,
                stage_par: stage_par.clone(),
                prev_stage_par: stage_par.clone(),
                rescale: job.rescale_on_restart,
                job_idx: j,
                bootstrap: bootstrap_for(&host),
            };
            for (s, par) in stage_par.iter().enumerate() {
                for i in 0..*par {
                    let name = meta.instance_name(s, i);
                    let ihost = meta.instance_host(s, i);
                    let slot = ledger
                        .borrow_mut()
                        .register(format!("spe-{name}"), self.mem_model.spe);
                    let inst = SpeInstanceBuild {
                        stage: s,
                        index: i,
                        name: name.clone(),
                        host: ihost.clone(),
                        slot,
                        pid: ProcessId(0),
                        incarnation: 0,
                    };
                    let w = build_instance_worker(
                        &meta,
                        &inst,
                        &brokers_hash,
                        &ledger,
                        &checkpoint_spec,
                        &checkpoint_snapshots,
                        &store_groups,
                        &tele,
                        false,
                    );
                    let pid = sim.spawn(Box::new(w));
                    if let Some(cpu) = cpus.get(&ihost) {
                        sim.attach_cpu(pid, cpu.clone());
                    }
                    placements.push((pid, ihost));
                    spe_pids.insert(name, pid);
                    instance_builds.insert((j, s, i), SpeInstanceBuild { pid, ..inst });
                }
            }
            job_metas.push(meta);
        }

        // Producers. Each build recipe is retained so a `RestartProcess`
        // fault on a `producer-<idx>` stub can rebuild it: the respawn
        // reuses the same producer id and epoch and restarts the source
        // from the beginning — the broker's idempotent dedup acknowledges
        // the already-appended prefix without a second copy, so the log
        // converges to exactly the no-fault contents.
        let mut producer_pids: Vec<ProcessId> = Vec::new();
        let mut producer_builds: Vec<ProducerStubBuild> = Vec::new();
        for (i, (host, source, mut cfg)) in self.producers.into_iter().enumerate() {
            if let Some(acks) = self.acks_override {
                cfg.acks = acks;
            }
            self.batching.apply(&mut cfg);
            let base = self.mem_model.producer_base
                + (cfg.buffer_memory as f64 * self.mem_model.producer_heap_factor) as u64;
            let slot = ledger.borrow_mut().register(format!("producer-{i}"), base);
            let build = ProducerStubBuild {
                host: host.clone(),
                source,
                cfg,
                bootstrap: bootstrap_for(&host),
                slot,
                pid: ProcessId(0),
            };
            let p = build_producer_stub(i, &build, &brokers_hash, &ledger, &tele);
            let pid = sim.spawn(Box::new(p));
            if let Some(cpu) = cpus.get(&host) {
                sim.attach_cpu(pid, cpu.clone());
            }
            placements.push((pid, host));
            producer_pids.push(pid);
            producer_builds.push(ProducerStubBuild { pid, ..build });
        }

        // Consumers, each wrapped by the monitor; recipes retained for
        // `consumer-<idx>` crash/restart faults. A respawned member of a
        // consumer group resumes from its broker-committed offsets; a
        // group-less consumer restarts at the log start and re-reads.
        let monitor: MonitorHandle = MonitorCore::new_handle();
        let mut consumer_pids: Vec<ProcessId> = Vec::new();
        let mut consumer_builds: Vec<ConsumerStubBuild> = Vec::new();
        for (i, (host, mut cfg, topics, sink)) in self.consumers.into_iter().enumerate() {
            if self.transactional_sinks {
                // Observing a transactional sink's exactly-once output
                // requires read-committed isolation on the reader.
                cfg.read_committed = true;
            }
            if cfg.group_membership && cfg.group_member_id.is_empty() {
                // A stable member id makes sticky assignment stick across
                // this stub's crash/restart.
                cfg.group_member_id = format!("consumer-{i}");
            }
            ledger
                .borrow_mut()
                .register(format!("consumer-{i}"), self.mem_model.consumer);
            let build = ConsumerStubBuild {
                host: host.clone(),
                cfg,
                topics,
                sink,
                bootstrap: bootstrap_for(&host),
                pid: ProcessId(0),
            };
            let p = build_consumer_stub(i, &build, &brokers_hash, &monitor, &tele);
            let pid = sim.spawn(Box::new(p));
            if let Some(cpu) = cpus.get(&host) {
                sim.attach_cpu(pid, cpu.clone());
            }
            placements.push((pid, host));
            consumer_pids.push(pid);
            consumer_builds.push(ConsumerStubBuild { pid, ..build });
        }

        // Fault injector, memory sampler, throughput sampler. Process-level
        // crash/restart events are applied by this orchestrator (it owns the
        // process table); the injector handles the network-level rest.
        let process_events: Vec<(SimTime, FaultAction)> =
            self.faults.process_events().cloned().collect();
        if self.faults.has_network_events() {
            sim.spawn(Box::new(FaultInjector::new(net.clone(), self.faults)));
        }
        let sampler_pid = sim.spawn(Box::new(MemSampler::new(
            ledger.clone(),
            self.server.sample_interval,
            duration,
        )));
        let tx_pid = if self.watch_tx.is_empty() {
            None
        } else {
            let names: Vec<&str> = self.watch_tx.iter().map(String::as_str).collect();
            Some(sim.spawn(Box::new(TxSampler::new(
                net.clone(),
                &names,
                SimDuration::from_secs(1),
                duration,
            ))))
        };
        // The telemetry sampler is spawned after every other process so
        // toggling it never shifts an existing pid (and with it the
        // deterministic event order of a seeded run).
        if self.telemetry {
            let sampler_cpus: Vec<(String, CpuHandle)> =
                cpus.iter().map(|(h, c)| (h.clone(), c.clone())).collect();
            sim.spawn(Box::new(
                tele.sampler(self.telemetry_interval, sampler_cpus),
            ));
        }

        // Placement.
        {
            let mut n = net.borrow_mut();
            for (pid, host) in &placements {
                let node = n
                    .topology()
                    .lookup(host)
                    .unwrap_or_else(|| panic!("host `{host}` missing from topology"));
                n.place(*pid, node);
            }
        }

        // Execute, pausing at each process-fault instant to kill or respawn
        // the targeted worker or broker. Crashed processes' remains are kept
        // so the report can still surface their pre-crash metrics.
        let mode = self.mode;
        let mut crashed_at: BTreeMap<String, SimTime> = BTreeMap::new();
        let mut corpses: BTreeMap<String, Box<dyn s2g_sim::Process>> = BTreeMap::new();
        let mut broker_crashed_at: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut broker_corpses: BTreeMap<u32, Box<dyn s2g_sim::Process>> = BTreeMap::new();
        let mut store_crashed_at: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut store_corpses: BTreeMap<u32, Box<dyn s2g_sim::Process>> = BTreeMap::new();
        let mut client_crashes: BTreeMap<String, ClientRecoveryReport> = BTreeMap::new();
        let mut client_corpses: BTreeMap<String, Box<dyn s2g_sim::Process>> = BTreeMap::new();
        for (at, action) in process_events {
            if at >= duration {
                break;
            }
            sim.run_until(at);
            match action {
                FaultAction::CrashProcess(name)
                    if resolve_spe_target(&job_metas, &name).is_some() =>
                {
                    tele.trace_instant(at, &name, "fault:crash", "fault");
                    // A job name kills every stage instance; an instance
                    // name kills exactly that one.
                    let targets: Vec<(usize, usize, usize)> =
                        match resolve_spe_target(&job_metas, &name).expect("guard") {
                            SpeFaultTarget::Job(j) => instance_builds
                                .range((j, 0, 0)..(j + 1, 0, 0))
                                .map(|(k, _)| *k)
                                .collect(),
                            SpeFaultTarget::Instance(j, s, i) => vec![(j, s, i)],
                        };
                    for key in targets {
                        let Some(inst) = instance_builds.get(&key) else {
                            continue;
                        };
                        if let Some(corpse) = sim.kill(inst.pid) {
                            crashed_at.insert(inst.name.clone(), at);
                            corpses.insert(inst.name.clone(), corpse);
                        }
                    }
                }
                FaultAction::CrashProcess(name) => {
                    tele.trace_instant(at, &name, "fault:crash", "fault");
                    // A client stub: `producer-<idx>` or `consumer-<idx>`
                    // (validated above).
                    let pid = if let Some(i) = stub_index(&name, "producer-") {
                        producer_builds[i].pid
                    } else {
                        consumer_builds[stub_index(&name, "consumer-").expect("validated")].pid
                    };
                    if let Some(corpse) = sim.kill(pid) {
                        client_crashes.insert(
                            name.clone(),
                            ClientRecoveryReport {
                                crashed_at: at,
                                restarted_at: None,
                            },
                        );
                        client_corpses.insert(name, corpse);
                    }
                }
                FaultAction::RestartProcess(name)
                    if resolve_spe_target(&job_metas, &name).is_none() =>
                {
                    tele.trace_instant(at, &name, "fault:restart", "fault");
                    if let Some(i) = stub_index(&name, "producer-") {
                        let build = &producer_builds[i];
                        if sim.is_alive(build.pid) {
                            continue; // restart without a preceding crash
                        }
                        let p = build_producer_stub(i, build, &brokers_hash, &ledger, &tele);
                        sim.respawn(build.pid, Box::new(p));
                        if let Some(cpu) = cpus.get(&build.host) {
                            sim.attach_cpu(build.pid, cpu.clone());
                        }
                    } else {
                        let i = stub_index(&name, "consumer-").expect("validated");
                        let build = &consumer_builds[i];
                        if sim.is_alive(build.pid) {
                            continue;
                        }
                        let p = build_consumer_stub(i, build, &brokers_hash, &monitor, &tele);
                        sim.respawn(build.pid, Box::new(p));
                        if let Some(cpu) = cpus.get(&build.host) {
                            sim.attach_cpu(build.pid, cpu.clone());
                        }
                    }
                    if let Some(rec) = client_crashes.get_mut(&name) {
                        rec.restarted_at = Some(at);
                    }
                    client_corpses.remove(&name);
                }
                FaultAction::RestartProcess(name) => {
                    tele.trace_instant(at, &name, "fault:restart", "fault");
                    let target = resolve_spe_target(&job_metas, &name).expect("validated");
                    let (j, keys) = match target {
                        SpeFaultTarget::Instance(j, s, i) => (j, vec![(s, i)]),
                        SpeFaultTarget::Job(j) => {
                            // A job-level restart is where a rescale takes
                            // effect: every stage adopts the target
                            // parallelism, and each respawned instance
                            // restores from the *previous* layout's chains.
                            let meta = &mut job_metas[j];
                            meta.prev_stage_par = meta.stage_par.clone();
                            if let (Some(m), true) = (meta.rescale, meta.parallel) {
                                for p in meta.stage_par.iter_mut() {
                                    *p = m;
                                }
                            }
                            // A rescale redraws every instance's key-group
                            // ownership, so still-running instances of the
                            // old layout are bounced too: left alive they
                            // would keep fetching their old partitions,
                            // overlapping the new layout's owners. Those
                            // within the new layout respawn below with the
                            // new wiring; those beyond it are retired.
                            if meta.stage_par != meta.prev_stage_par {
                                for ((jj, _, _), inst) in instance_builds.iter() {
                                    if *jj != j || !sim.is_alive(inst.pid) {
                                        continue;
                                    }
                                    if let Some(corpse) = sim.kill(inst.pid) {
                                        crashed_at.insert(inst.name.clone(), at);
                                        corpses.insert(inst.name.clone(), corpse);
                                    }
                                }
                            }
                            let keys: Vec<(usize, usize)> = (0..meta.n_stages)
                                .flat_map(|s| (0..meta.stage_par[s]).map(move |i| (s, i)))
                                .collect();
                            (j, keys)
                        }
                    };
                    for (s, i) in keys {
                        let meta = &job_metas[j];
                        match instance_builds.get_mut(&(j, s, i)) {
                            Some(inst) => {
                                if sim.is_alive(inst.pid) {
                                    continue; // restart without a crash: no-op
                                }
                                inst.incarnation += 1;
                                let inst = &*inst;
                                let mut w = build_instance_worker(
                                    meta,
                                    inst,
                                    &brokers_hash,
                                    &ledger,
                                    &checkpoint_spec,
                                    &checkpoint_snapshots,
                                    &store_groups,
                                    &tele,
                                    true,
                                );
                                w.mark_restarted();
                                w.set_producer_epoch(inst.incarnation as u32);
                                sim.respawn(inst.pid, Box::new(w));
                                if let Some(cpu) = cpus.get(&inst.host) {
                                    sim.attach_cpu(inst.pid, cpu.clone());
                                }
                                corpses.remove(&inst.name);
                            }
                            None => {
                                // A rescale grew the stage: spawn a brand-new
                                // instance on its pre-provisioned host. It
                                // still restores (filtered) state from the
                                // old instances' chains.
                                let iname = meta.instance_name(s, i);
                                let ihost = meta.instance_host(s, i);
                                let slot = ledger
                                    .borrow_mut()
                                    .register(format!("spe-{iname}"), self.mem_model.spe);
                                let mut inst = SpeInstanceBuild {
                                    stage: s,
                                    index: i,
                                    name: iname.clone(),
                                    host: ihost.clone(),
                                    slot,
                                    pid: ProcessId(0),
                                    incarnation: 1,
                                };
                                let mut w = build_instance_worker(
                                    meta,
                                    &inst,
                                    &brokers_hash,
                                    &ledger,
                                    &checkpoint_spec,
                                    &checkpoint_snapshots,
                                    &store_groups,
                                    &tele,
                                    true,
                                );
                                w.mark_restarted();
                                w.set_producer_epoch(1);
                                let pid = sim.spawn_at(at, Box::new(w));
                                if let Some(cpu) = cpus.get(&ihost) {
                                    sim.attach_cpu(pid, cpu.clone());
                                }
                                {
                                    let mut n = net.borrow_mut();
                                    let node = n
                                        .topology()
                                        .lookup(&ihost)
                                        .expect("pre-provisioned instance host");
                                    n.place(pid, node);
                                }
                                inst.pid = pid;
                                spe_pids.insert(iname, pid);
                                instance_builds.insert((j, s, i), inst);
                            }
                        }
                    }
                    if let SpeFaultTarget::Job(j) = target {
                        // Future single-instance respawns restore from the
                        // post-rescale layout.
                        let meta = &mut job_metas[j];
                        meta.prev_stage_par = meta.stage_par.clone();
                    }
                }
                FaultAction::CrashBroker(idx) => {
                    tele.trace_instant(at, &format!("broker-{idx}"), "fault:crash", "fault");
                    let build = &broker_builds[idx as usize];
                    if let Some(corpse) = sim.kill(build.pid) {
                        broker_crashed_at.insert(idx, at);
                        broker_corpses.insert(idx, corpse);
                    }
                }
                FaultAction::CrashStore(idx) => {
                    let build = &store_builds[idx as usize];
                    let scope = format!("store-{}", build.replica_host);
                    tele.trace_instant(at, &scope, "fault:crash", "fault");
                    if let Some(corpse) = sim.kill(build.pid) {
                        store_crashed_at.insert(idx, at);
                        store_corpses.insert(idx, corpse);
                    }
                }
                FaultAction::RestartStore(idx) => {
                    let build = &store_builds[idx as usize];
                    let scope = format!("store-{}", build.replica_host);
                    tele.trace_instant(at, &scope, "fault:restart", "fault");
                    if sim.is_alive(build.pid) {
                        continue; // restart without a preceding crash: no-op
                    }
                    let mut st = StoreServer::new(build.cfg.clone());
                    st.set_name(format!("store-{}", build.replica_host));
                    st.set_mem_slot(ledger.clone(), build.slot);
                    st.set_telemetry(tele.clone());
                    if build.group.len() > 1 {
                        // Rejoin recovering: pull the op log from a ready
                        // member before serving again.
                        st.set_group(build.group.clone(), build.index, true);
                    }
                    sim.respawn(build.pid, Box::new(st));
                    if let Some(cpu) = cpus.get(&build.replica_host) {
                        sim.attach_cpu(build.pid, cpu.clone());
                    }
                    store_corpses.remove(&idx);
                }
                FaultAction::RestartBroker(idx) => {
                    tele.trace_instant(at, &format!("broker-{idx}"), "fault:restart", "fault");
                    let build = &mut broker_builds[idx as usize];
                    if sim.is_alive(build.pid) {
                        continue; // restart without a preceding crash: no-op
                    }
                    build.incarnation += 1;
                    let mut b = Broker::new(
                        BrokerId(idx),
                        build.cfg.clone(),
                        mode,
                        controller_pids.clone(),
                        brokers_hash.clone(),
                    );
                    b.set_mem_slot(ledger.clone(), build.slot);
                    b.set_incarnation(build.incarnation);
                    b.set_telemetry(tele.clone());
                    match &broker_durability {
                        Some(spec) => {
                            b.set_durability(make_log_backend(spec, build.incarnation), true)
                        }
                        // Without a log backend the broker restarts empty
                        // (the data-loss contrast); still record metrics.
                        None => b.mark_restarted(),
                    }
                    sim.respawn(build.pid, Box::new(b));
                    if let Some(cpu) = cpus.get(&build.host) {
                        sim.attach_cpu(build.pid, cpu.clone());
                    }
                    broker_corpses.remove(&idx);
                }
                _ => unreachable!("process_events yields only process actions"),
            }
        }
        sim.run_until(duration);

        // Harvest the report. Crashed-and-not-restarted stubs are absent
        // from the process table; report from their corpses instead.
        let mut producers_report = Vec::new();
        for (i, pid) in producer_pids.iter().enumerate() {
            let name = format!("producer-{i}");
            let p = sim.process_ref::<ProducerProcess>(*pid).or_else(|| {
                client_corpses.get(&name).and_then(|c| {
                    (c.as_ref() as &dyn std::any::Any).downcast_ref::<ProducerProcess>()
                })
            });
            let p = p.expect("producer process (live or corpse)");
            producers_report.push(ProducerReport {
                id: ProducerId(i as u32),
                stats: p.client().stats(),
                outcomes: p.client().outcomes().to_vec(),
                sent_index: p.client().sent_index().to_vec(),
                recovery: client_crashes.get(&name).copied(),
            });
        }
        let mut consumers_report = Vec::new();
        for (i, pid) in consumer_pids.iter().enumerate() {
            let name = format!("consumer-{i}");
            let c = sim.process_ref::<ConsumerProcess>(*pid).or_else(|| {
                client_corpses.get(&name).and_then(|c| {
                    (c.as_ref() as &dyn std::any::Any).downcast_ref::<ConsumerProcess>()
                })
            });
            let c = c.expect("consumer process (live or corpse)");
            consumers_report.push(ConsumerReport {
                id: i as u32,
                stats: c.client().stats(),
                recovery: client_crashes.get(&name).copied(),
            });
        }
        // Two passes over the brokers: attributing leadership moves to one
        // crashed broker needs every *other* broker's election history.
        type BrokerView = (
            BrokerStats,
            Vec<(SimTime, TopicPartition, bool)>,
            Option<BrokerRecoveryInfo>,
        );
        let mut broker_views: Vec<BrokerView> = Vec::new();
        for (i, pid) in broker_pids.iter().enumerate() {
            // A crashed-and-not-restarted broker is absent from the process
            // table; report from its corpse instead.
            let b = sim.process_ref::<Broker>(*pid).or_else(|| {
                broker_corpses
                    .get(&(i as u32))
                    .and_then(|c| (c.as_ref() as &dyn std::any::Any).downcast_ref::<Broker>())
            });
            let b = b.expect("broker process (live or corpse)");
            broker_views.push((b.stats(), b.leadership_events().to_vec(), b.recovery_info()));
        }
        let isr_shrinks: u64 = broker_views.iter().map(|(s, _, _)| s.isr_shrinks).sum();
        let isr_expands: u64 = broker_views.iter().map(|(s, _, _)| s.isr_expands).sum();
        let mut brokers_report = Vec::new();
        for (i, (stats, events, info)) in broker_views.iter().enumerate() {
            let info = *info;
            let recovery = broker_crashed_at.get(&(i as u32)).map(|t| {
                // Partitions some *other* broker won at/after the crash:
                // leadership that moved off (or shuffled around) this
                // broker while it was down.
                let moved: std::collections::BTreeSet<&TopicPartition> = broker_views
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, (_, ev, _))| ev.iter())
                    .filter(|(at, _, became)| *became && *at >= *t)
                    .map(|(_, tp, _)| tp)
                    .collect();
                BrokerRecoveryReport {
                    crashed_at: *t,
                    restarted_at: info.map(|r| r.restarted_at),
                    recovered_at: info.and_then(|r| r.recovered_at),
                    replayed_records: info.map_or(0, |r| r.replayed_records),
                    replayed_bytes: info.map_or(0, |r| r.replayed_bytes),
                    replayed_segments: info.map_or(0, |r| r.replayed_segments),
                    replay_saved_bytes: info.map_or(0, |r| r.replay_saved_bytes),
                    leadership_moves: moved.len() as u64,
                    isr_shrinks,
                    isr_expands,
                }
            });
            brokers_report.push(BrokerReport {
                id: BrokerId(i as u32),
                stats: *stats,
                leadership_events: events.clone(),
                recovery,
            });
        }
        let mut stores_report = Vec::new();
        for (idx, build) in store_builds.iter().enumerate() {
            // A crashed-and-not-restarted replica is absent from the
            // process table; report from its corpse instead.
            let st = sim.process_ref::<StoreServer>(build.pid).or_else(|| {
                store_corpses
                    .get(&(idx as u32))
                    .and_then(|c| (c.as_ref() as &dyn std::any::Any).downcast_ref::<StoreServer>())
            });
            let recovery = store_crashed_at.get(&(idx as u32)).map(|t| {
                let info = st.and_then(StoreServer::recovery_info);
                StoreRecoveryReport {
                    crashed_at: *t,
                    restarted_at: info.map(|i| i.restarted_at),
                    resynced_at: info.and_then(|i| i.resynced_at),
                    sync_ops: info.map_or(0, |i| i.sync_ops),
                    sync_bytes: info.map_or(0, |i| i.sync_bytes),
                }
            });
            stores_report.push(StoreReport {
                host: build.group_host.clone(),
                replica: build.replica,
                kv_keys: st.map_or(0, |sv| sv.kv().len() as u64),
                is_primary: st.is_some_and(StoreServer::is_primary),
                oplog_len: st.map_or(0, |sv| sv.oplog_len() as u64),
                oplog_truncated: st.map_or(0, StoreServer::oplog_truncated),
                recovery,
            });
        }
        let mut spe_report = BTreeMap::new();
        let mut spe_instances = BTreeMap::new();
        for meta in &job_metas {
            let j = meta.job_idx;
            let mut per: Vec<(usize, SpeReport)> = Vec::new();
            for (key, inst) in instance_builds.range((j, 0, 0)..(j + 1, 0, 0)) {
                // A crashed-and-not-restarted instance is absent from the
                // process table; report from its corpse instead.
                let w = sim.process_ref::<SpeWorker>(inst.pid).or_else(|| {
                    corpses.get(&inst.name).and_then(|c| {
                        (c.as_ref() as &dyn std::any::Any).downcast_ref::<SpeWorker>()
                    })
                });
                let recovery = crashed_at.get(&inst.name).map(|t| {
                    let info = w.and_then(SpeWorker::recovery_info);
                    RecoveryReport {
                        crashed_at: *t,
                        restarted_at: info.map(|i| i.restarted_at),
                        restored_at: info.and_then(|i| i.restored_at),
                        snapshot_taken_at: info.and_then(|i| i.snapshot_taken_at),
                        snapshot_bytes: info.map_or(0, |i| i.snapshot_bytes),
                        delta_chain_len: info.map_or(0, |i| i.delta_chain),
                        first_batch_at: info.and_then(|i| i.first_batch_at),
                    }
                });
                let w = w.expect("spe instance (live or corpse)");
                let report = SpeReport {
                    metrics: w.metrics().to_vec(),
                    record_counts: w.plan().record_counts(),
                    collected: w.collected().to_vec(),
                    mean_busy_runtime: w.mean_busy_runtime(),
                    checkpoints: w.checkpoint_stats(),
                    checkpoint_log: w.checkpoint_persist_log(),
                    consumer_stats: w.consumer().stats(),
                    recovery,
                };
                if meta.parallel {
                    spe_instances.insert(inst.name.clone(), report.clone());
                }
                per.push((key.1, report));
            }
            let agg = if meta.parallel {
                aggregate_spe_reports(meta, &per)
            } else {
                per.into_iter()
                    .next()
                    .map(|(_, r)| r)
                    .expect("one worker per classic job")
            };
            spe_report.insert(meta.name.clone(), agg);
        }
        let sampler = sim
            .process_ref::<MemSampler>(sampler_pid)
            .expect("mem sampler");
        let mem_samples = sampler.samples().to_vec();
        let peak_mem_bytes = sampler.peak_bytes();
        let tx_series = tx_pid
            .map(|pid| {
                sim.process_ref::<TxSampler>(pid)
                    .expect("tx sampler")
                    .series()
                    .to_vec()
            })
            .unwrap_or_default();
        let cpu_handles: Vec<CpuHandle> = cpus.values().cloned().collect();
        let cpu_series = cpu_utilization_series(
            &cpu_handles,
            self.server.sample_interval,
            duration,
            self.server.cores,
        );

        // The data plane is designed so no hop ever deep-copies a shared
        // batch (producers retry Arc clones, brokers borrow, followers are
        // sole owners); surface the run's delta so tests and the CI perf
        // gate can assert it stayed zero.
        let shared_batch_copies = s2g_proto::shared_batch_copies() - batch_copies_before;
        tele.counter_add("runtime", "shared_batch_copies", shared_batch_copies);

        let metric_series: Vec<MetricSeries> = tele.series().all().to_vec();

        let report = RunReport {
            name: self.name,
            duration,
            server: self.server,
            sim_stats: sim.stats(),
            producers: producers_report,
            consumers: consumers_report,
            brokers: brokers_report,
            stores: stores_report,
            spe: spe_report,
            spe_instances,
            mem_samples,
            peak_mem_bytes,
            cpu_series,
            tx_series,
            metric_series,
            shared_batch_copies,
        };

        Ok(RunResult {
            sim,
            net,
            monitor,
            ledger,
            cpus,
            broker_pids,
            producer_pids,
            consumer_pids,
            spe_pids,
            store_pids,
            store_group_pids: store_groups,
            checkpoint_snapshots,
            telemetry: tele,
            report,
        })
    }
}

/// Scenario-wide batching overrides applied to every producer config
/// (standalone stubs and embedded SPE sink producers).
#[derive(Debug, Clone, Copy, Default)]
struct BatchingOverrides {
    /// `with_batching(false)`: collapse to one record per produce request.
    disabled: bool,
    linger: Option<SimDuration>,
    max_bytes: Option<usize>,
    compression: Option<Compression>,
}

impl BatchingOverrides {
    fn apply(&self, cfg: &mut ProducerConfig) {
        if let Some(l) = self.linger {
            cfg.linger = l;
        }
        if let Some(b) = self.max_bytes {
            cfg.batch_max_bytes = b;
        }
        if let Some(c) = self.compression {
            cfg.compression = c;
        }
        if self.disabled {
            // Per-record requests: every record pays the full request
            // overhead. Compression is pointless on batches of one.
            cfg.batch_max_records = 1;
            cfg.batch_max_bytes = 1;
            cfg.linger = SimDuration::ZERO;
            cfg.compression = Compression::None;
        }
    }
}

/// Parses a client-stub fault target of the form `<prefix><idx>` (e.g.
/// `producer-0`).
fn stub_index(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// Everything needed to (re)build one producer stub for a
/// `RestartProcess` fault: same host, pid, memory slot, producer id, and —
/// deliberately — the same producer epoch. The respawned source restarts
/// from record zero; the broker's idempotent dedup recognizes the
/// already-appended `(epoch, seq)` prefix and acknowledges it without
/// appending second copies, so the log converges to the no-fault contents.
struct ProducerStubBuild {
    host: String,
    source: SourceSpec,
    cfg: ProducerConfig,
    bootstrap: ProcessId,
    slot: MemSlot,
    pid: ProcessId,
}

fn build_producer_stub(
    idx: usize,
    build: &ProducerStubBuild,
    brokers: &BTreeMap<BrokerId, ProcessId>,
    ledger: &LedgerHandle,
    tele: &Telemetry,
) -> ProducerProcess {
    let mut client = ProducerClient::new(
        ProducerId(idx as u32),
        build.cfg.clone(),
        build.bootstrap,
        brokers.clone(),
        0,
    );
    client.set_mem_slot(ledger.clone(), build.slot);
    let mut p = ProducerProcess::new(client, build.source.build());
    p.set_telemetry(tele.clone());
    p
}

/// Everything needed to (re)build one consumer stub for a
/// `RestartProcess` fault. A respawned group member resumes from its
/// broker-committed offsets; without a group it restarts at the log start
/// and re-reads (duplicate deliveries the monitor makes observable).
struct ConsumerStubBuild {
    host: String,
    cfg: ConsumerConfig,
    topics: Vec<String>,
    sink: ConsumerSinkSpec,
    bootstrap: ProcessId,
    pid: ProcessId,
}

fn build_consumer_stub(
    idx: usize,
    build: &ConsumerStubBuild,
    brokers: &BTreeMap<BrokerId, ProcessId>,
    monitor: &MonitorHandle,
    tele: &Telemetry,
) -> ConsumerProcess {
    let inner = build.sink.build();
    let wrapped = MonitoredSink::new(monitor.clone(), idx as u32, inner);
    let client = ConsumerClient::new(
        build.cfg.clone(),
        build.bootstrap,
        brokers.clone(),
        build.topics.clone(),
    );
    let mut p = ConsumerProcess::new(idx as u32, client, Box::new(wrapped));
    p.set_telemetry(tele.clone());
    p
}

/// Everything needed to (re)build one broker: a `RestartBroker` respawn
/// reuses the original wiring (pid, memory slot, config) around a fresh
/// process with a bumped incarnation.
struct BrokerBuild {
    host: String,
    cfg: BrokerConfig,
    slot: MemSlot,
    pid: ProcessId,
    incarnation: u64,
}

/// Everything needed to (re)build one store-group replica: a `RestartStore`
/// respawn reuses the original wiring (pid, memory slot, config, group
/// membership) around a fresh recovering process.
struct StoreBuild {
    /// The declared host (names the group).
    group_host: String,
    /// The host this replica runs on (`<host>` or `<host>-r<i>`).
    replica_host: String,
    /// Member index within the group.
    replica: u32,
    cfg: StoreConfig,
    /// Every member's pid, in index order.
    group: Vec<ProcessId>,
    index: usize,
    slot: MemSlot,
    pid: ProcessId,
}

/// The per-job half of the SPE build state: everything shared by (and
/// needed to rebuild) the job's stage instances, plus the current and
/// previous per-stage parallelism — the rescale bookkeeping.
struct SpeJobMeta {
    name: String,
    host: String,
    plan: Box<dyn Fn() -> Plan>,
    cfg: SpeConfig,
    sources: Vec<String>,
    sink: SpeSink,
    parallel: bool,
    n_stages: usize,
    key_groups: u32,
    /// Current parallelism per stage (changes on a rescale restart).
    stage_par: Vec<usize>,
    /// Parallelism each stage ran at before the in-flight restart — the
    /// instance set whose chains a respawn restores from.
    prev_stage_par: Vec<usize>,
    rescale: Option<usize>,
    job_idx: usize,
    bootstrap: ProcessId,
}

impl SpeJobMeta {
    fn instance_name(&self, stage: usize, index: usize) -> String {
        if self.parallel {
            instance_name(&self.name, stage, index)
        } else {
            self.name.clone()
        }
    }

    fn instance_host(&self, stage: usize, index: usize) -> String {
        if self.parallel {
            Scenario::instance_host(&self.host, stage, index)
        } else {
            self.host.clone()
        }
    }

    /// Stable producer id per (job, stage, instance); the classic layout
    /// keeps its original `1000 + job` id.
    fn producer_id(&self, stage: usize, index: usize) -> ProducerId {
        if self.parallel {
            ProducerId(100_000 + self.job_idx as u32 * 10_000 + stage as u32 * 100 + index as u32)
        } else {
            ProducerId(1_000 + self.job_idx as u32)
        }
    }

    /// Stage 0 reads the job's declared sources; later stages read their
    /// keyed shuffle topic.
    fn stage_sources(&self, stage: usize) -> Vec<String> {
        if stage == 0 {
            self.sources.clone()
        } else {
            vec![shuffle_topic(&self.name, stage)]
        }
    }

    /// The last stage feeds the job's declared sink; earlier stages feed
    /// the next stage's shuffle topic.
    fn stage_sink(&self, stage: usize) -> SpeSink {
        if stage + 1 == self.n_stages {
            self.sink.clone()
        } else {
            SpeSink::Topic(shuffle_topic(&self.name, stage + 1))
        }
    }
}

/// Everything needed to (re)build one worker instance: the initial spawn
/// and any `RestartProcess` respawn share this recipe, so a restarted
/// instance gets the same wiring (pid, memory slot, clients) around a fresh
/// plan.
struct SpeInstanceBuild {
    stage: usize,
    index: usize,
    name: String,
    host: String,
    slot: MemSlot,
    pid: ProcessId,
    incarnation: u64,
}

#[allow(clippy::too_many_arguments)]
fn build_instance_worker(
    meta: &SpeJobMeta,
    inst: &SpeInstanceBuild,
    brokers: &BTreeMap<BrokerId, ProcessId>,
    ledger: &LedgerHandle,
    spec: &Option<CheckpointSpec>,
    snapshots: &SnapshotStoreHandle,
    store_groups: &BTreeMap<String, Vec<ProcessId>>,
    tele: &Telemetry,
    recover: bool,
) -> SpeWorker {
    let full = (meta.plan)();
    let plan = if meta.parallel {
        full.into_stages()
            .into_iter()
            .nth(inst.stage)
            .expect("stage index within the probed stage count")
    } else {
        full
    };
    let mut w = SpeWorker::new(
        inst.name.clone(),
        meta.cfg.clone(),
        meta.stage_sources(inst.stage),
        plan,
        meta.stage_sink(inst.stage),
        meta.bootstrap,
        brokers.clone(),
        meta.producer_id(inst.stage, inst.index),
    );
    w.set_mem_slot(ledger.clone(), inst.slot);
    if meta.parallel {
        // A recovering instance restores from every old instance of its
        // stage (under the pre-restart parallelism) and keeps only the key
        // groups it owns now — the rescale-correct redistribution.
        let old_par = meta.prev_stage_par[inst.stage];
        let restore_from: Vec<String> = if recover {
            (0..old_par)
                .map(|k| instance_name(&meta.name, inst.stage, k))
                .collect()
        } else {
            Vec::new()
        };
        let old_producers: Vec<ProducerId> = (0..old_par)
            .map(|k| meta.producer_id(inst.stage, k))
            .collect();
        w.set_instance(StageInstanceCfg {
            stage: inst.stage,
            instance: inst.index as u32,
            parallelism: meta.stage_par[inst.stage] as u32,
            key_groups: meta.key_groups,
            restore_from,
            old_producers,
        });
    }
    if meta.cfg.checkpoint.is_some() {
        let backend: Box<dyn StateBackend> = match spec.as_ref().map(|s| &s.backend) {
            Some(CheckpointBackendSpec::StoreOn { host }) => Box::new(DurableBackend::replicated(
                store_groups
                    .get(host)
                    .expect("validated checkpoint store host")
                    .clone(),
            )),
            _ => Box::new(InMemoryBackend::new(snapshots.clone())),
        };
        w.attach_checkpointing(backend, recover);
    }
    // After the checkpointing attach so the coordinator is covered too.
    w.set_telemetry(tele.clone());
    w
}

/// Folds a parallel job's per-instance reports into one job-level report:
/// input records are counted at stage 0, output records at the last stage,
/// batch metrics interleave in time order, checkpoint/consumer counters
/// add, and the recovery entry follows the earliest-crashed instance.
fn aggregate_spe_reports(meta: &SpeJobMeta, per: &[(usize, SpeReport)]) -> SpeReport {
    let mut metrics: Vec<BatchMetric> = per
        .iter()
        .flat_map(|(_, r)| r.metrics.iter().copied())
        .collect();
    metrics.sort_by_key(|m| (m.start, m.end));
    let records_in: u64 = per
        .iter()
        .filter(|(s, _)| *s == 0)
        .map(|(_, r)| r.record_counts.0)
        .sum();
    let records_out: u64 = per
        .iter()
        .filter(|(s, _)| *s + 1 == meta.n_stages)
        .map(|(_, r)| r.record_counts.1)
        .sum();
    let collected: Vec<Event> = per
        .iter()
        .flat_map(|(_, r)| r.collected.iter().cloned())
        .collect();
    let busy: Vec<&BatchMetric> = metrics.iter().filter(|m| m.records_in > 0).collect();
    let mean_busy_runtime = if busy.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration::from_nanos(
            busy.iter().map(|m| m.runtime().as_nanos()).sum::<u64>() / busy.len() as u64,
        )
    };
    let mut checkpoints = CheckpointStats::default();
    for (_, r) in per {
        checkpoints.absorb(&r.checkpoints);
    }
    let mut checkpoint_log: Vec<(SimTime, SimTime)> = per
        .iter()
        .flat_map(|(_, r)| r.checkpoint_log.iter().copied())
        .collect();
    checkpoint_log.sort();
    let mut consumer_stats = ConsumerStats::default();
    for (_, r) in per {
        let c = &r.consumer_stats;
        consumer_stats.fetches += c.fetches;
        consumer_stats.records += c.records;
        consumer_stats.timeouts += c.timeouts;
        consumer_stats.offset_resets += c.offset_resets;
        consumer_stats.offset_commits += c.offset_commits;
        consumer_stats.resumed_partitions += c.resumed_partitions;
        consumer_stats.group_joins += c.group_joins;
        consumer_stats.rebalances += c.rebalances;
    }
    let recovery = per
        .iter()
        .filter_map(|(_, r)| r.recovery)
        .min_by_key(|r| r.crashed_at);
    SpeReport {
        metrics,
        record_counts: (records_in, records_out),
        collected,
        mean_busy_runtime,
        checkpoints,
        checkpoint_log,
        consumer_stats,
        recovery,
    }
}

/// What an SPE crash/restart fault resolves to.
enum SpeFaultTarget {
    /// The whole job (every instance of every stage).
    Job(usize),
    /// One stage instance: `(job index, stage, instance)`.
    Instance(usize, usize, usize),
}

/// Resolves a fault-plan target name against the built jobs: the exact job
/// name, `job/stage/instance`, or the `job/instance` last-stage shorthand.
fn resolve_spe_target(job_metas: &[SpeJobMeta], name: &str) -> Option<SpeFaultTarget> {
    if let Some(j) = job_metas.iter().position(|m| m.name == name) {
        return Some(SpeFaultTarget::Job(j));
    }
    for (j, m) in job_metas.iter().enumerate() {
        if !m.parallel {
            continue;
        }
        let Some(rest) = name
            .strip_prefix(m.name.as_str())
            .and_then(|r| r.strip_prefix('/'))
        else {
            continue;
        };
        if let Some((s, i)) = parse_instance_suffix(rest, m.n_stages - 1) {
            return Some(SpeFaultTarget::Instance(j, s, i));
        }
    }
    None
}

/// Parses the `stage/instance` (or bare `instance`, meaning the last —
/// keyed — stage) suffix of a `job/...` fault target. Bounds are the
/// caller's concern: `validate` checks them against the stage layout, the
/// fault executor relies on its build-map lookups.
fn parse_instance_suffix(rest: &str, last_stage: usize) -> Option<(usize, usize)> {
    let parts: Vec<&str> = rest.split('/').collect();
    match parts.as_slice() {
        [i] => i.parse().ok().map(|i| (last_stage, i)),
        [s, i] => match (s.parse(), i.parse()) {
            (Ok(s), Ok(i)) => Some((s, i)),
            _ => None,
        },
        _ => None,
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("brokers", &self.brokers.len())
            .field("producers", &self.producers.len())
            .field("consumers", &self.consumers.len())
            .field("spe_jobs", &self.spe_jobs.len())
            .field("topics", &self.topics.len())
            .finish()
    }
}

/// Crash/restart bookkeeping for one client stub targeted by the fault
/// plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRecoveryReport {
    /// When the fault plan killed the stub.
    pub crashed_at: SimTime,
    /// When the respawned stub started (`None`: never restarted).
    pub restarted_at: Option<SimTime>,
}

/// Per-producer results.
#[derive(Debug, Clone)]
pub struct ProducerReport {
    /// Producer id (declaration order).
    pub id: ProducerId,
    /// Counters. For a crashed-and-restarted stub these reflect the
    /// respawned incarnation (the pre-crash one died with its process).
    pub stats: ProducerStats,
    /// Completed record outcomes.
    pub outcomes: Vec<ProduceOutcome>,
    /// All sends as `(topic, seq, created)`.
    pub sent_index: Vec<(String, u64, SimTime)>,
    /// Crash/restart metrics; present when this stub was crashed by the
    /// fault plan.
    pub recovery: Option<ClientRecoveryReport>,
}

/// Per-consumer results.
#[derive(Debug, Clone, Copy)]
pub struct ConsumerReport {
    /// Consumer index.
    pub id: u32,
    /// Counters. For a crashed-and-restarted stub these reflect the
    /// respawned incarnation.
    pub stats: ConsumerStats,
    /// Crash/restart metrics; present when this stub was crashed by the
    /// fault plan.
    pub recovery: Option<ClientRecoveryReport>,
}

/// Per-broker results.
#[derive(Debug, Clone)]
pub struct BrokerReport {
    /// Broker id.
    pub id: BrokerId,
    /// Counters.
    pub stats: BrokerStats,
    /// Leadership transitions (time, partition, became-leader).
    pub leadership_events: Vec<(SimTime, TopicPartition, bool)>,
    /// Crash/recovery metrics; present when this broker was crashed by the
    /// fault plan.
    pub recovery: Option<BrokerRecoveryReport>,
}

/// Recovery metrics for one crashed (and possibly restarted) broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerRecoveryReport {
    /// When the fault plan killed the broker.
    pub crashed_at: SimTime,
    /// When the respawned broker started (`None`: never restarted).
    pub restarted_at: Option<SimTime>,
    /// When log replay completed and the broker resumed serving.
    pub recovered_at: Option<SimTime>,
    /// Records rebuilt from persisted segments.
    pub replayed_records: u64,
    /// Encoded segment bytes read back during replay.
    pub replayed_bytes: u64,
    /// Segments read back during replay.
    pub replayed_segments: u64,
    /// Bytes compaction/retention reclaimed before the crash — replay work
    /// the restarted broker never had to do. The replay-savings half of the
    /// bounded-recovery story.
    pub replay_saved_bytes: u64,
    /// Distinct partitions some *other* broker was elected leader of at or
    /// after the crash — leadership that moved off (or shuffled around)
    /// this broker while it was down. Zero at RF=1: nobody else can take
    /// over, the partitions just go dark.
    pub leadership_moves: u64,
    /// ISR shrink events recorded cluster-wide over the run (leaders
    /// dropping a lagging or dead replica from the in-sync set).
    pub isr_shrinks: u64,
    /// ISR expand events recorded cluster-wide over the run (caught-up
    /// followers re-admitted to the in-sync set).
    pub isr_expands: u64,
}

impl BrokerRecoveryReport {
    /// Restart-to-serving latency: what durable-log replay costs.
    pub fn replay_latency(&self) -> Option<SimDuration> {
        match (self.restarted_at, self.recovered_at) {
            (Some(a), Some(b)) => Some(b.saturating_since(a)),
            _ => None,
        }
    }

    /// Crash-to-serving latency: the broker's unavailability window.
    pub fn unavailability(&self) -> Option<SimDuration> {
        self.recovered_at
            .map(|t| t.saturating_since(self.crashed_at))
    }
}

/// Per-store-replica results.
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// The declared store host (the group's name).
    pub host: String,
    /// Replica index within the group (0 = initial primary).
    pub replica: u32,
    /// KV keys resident at the end of the run.
    pub kv_keys: u64,
    /// Whether this replica was the acting primary at the end of the run.
    pub is_primary: bool,
    /// Group op-log entries still retained at the end of the run (bounded
    /// by peer-acked truncation).
    pub oplog_len: u64,
    /// Ops this replica discarded as primary via peer-acked truncation.
    pub oplog_truncated: u64,
    /// Crash/recovery metrics; present when this replica was crashed by the
    /// fault plan.
    pub recovery: Option<StoreRecoveryReport>,
}

/// Recovery metrics for one crashed (and possibly restarted) store replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreRecoveryReport {
    /// When the fault plan killed the replica.
    pub crashed_at: SimTime,
    /// When the respawned replica started (`None`: never restarted).
    pub restarted_at: Option<SimTime>,
    /// When op-log catch-up completed and the replica rejoined its group.
    pub resynced_at: Option<SimTime>,
    /// Ops pulled from a peer during catch-up.
    pub sync_ops: u64,
    /// Approximate bytes transferred during catch-up.
    pub sync_bytes: u64,
}

impl StoreRecoveryReport {
    /// Restart-to-rejoined latency: what op-log catch-up costs.
    pub fn resync_latency(&self) -> Option<SimDuration> {
        match (self.restarted_at, self.resynced_at) {
            (Some(a), Some(b)) => Some(b.saturating_since(a)),
            _ => None,
        }
    }

    /// Crash-to-rejoined latency: how long the group ran a member short.
    pub fn unavailability(&self) -> Option<SimDuration> {
        self.resynced_at
            .map(|t| t.saturating_since(self.crashed_at))
    }
}

/// Per-SPE-job results.
#[derive(Debug, Clone)]
pub struct SpeReport {
    /// Per-batch metrics.
    pub metrics: Vec<BatchMetric>,
    /// `(records_in, records_out)` through the plan.
    pub record_counts: (u64, u64),
    /// Locally collected results (Collect sink only).
    pub collected: Vec<Event>,
    /// Mean runtime over non-empty batches.
    pub mean_busy_runtime: SimDuration,
    /// Checkpoint counters (zeros when checkpointing is disabled).
    pub checkpoints: CheckpointStats,
    /// `(accepted, durable)` instants of every persisted capture — the
    /// per-checkpoint latency series (what store replication inflates).
    pub checkpoint_log: Vec<(SimTime, SimTime)>,
    /// The worker's embedded consumer counters; `offset_resets == 0` on a
    /// recovery run means the worker resumed from committed offsets.
    pub consumer_stats: ConsumerStats,
    /// Crash/recovery metrics; present when this job was crashed by the
    /// fault plan.
    pub recovery: Option<RecoveryReport>,
}

/// Recovery metrics for one crashed (and possibly restarted) SPE job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// When the fault plan killed the worker.
    pub crashed_at: SimTime,
    /// When the respawned worker started (None: never restarted).
    pub restarted_at: Option<SimTime>,
    /// When state restoration completed.
    pub restored_at: Option<SimTime>,
    /// Capture time of the newest restored chain element.
    pub snapshot_taken_at: Option<SimTime>,
    /// Encoded bytes read back during restore (base + deltas).
    pub snapshot_bytes: u64,
    /// Deltas applied on top of the base during restore (0 for a full
    /// snapshot restore).
    pub delta_chain_len: u64,
    /// Completion time of the first post-restart batch with input.
    pub first_batch_at: Option<SimTime>,
}

impl RecoveryReport {
    /// Crash-to-first-processed-batch latency: the user-visible outage.
    pub fn recovery_latency(&self) -> Option<SimDuration> {
        self.first_batch_at
            .map(|t| t.saturating_since(self.crashed_at))
    }

    /// Restart-to-restore latency: what the state backend costs.
    pub fn restore_latency(&self) -> Option<SimDuration> {
        match (self.restarted_at, self.restored_at) {
            (Some(a), Some(b)) => Some(b.saturating_since(a)),
            _ => None,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub name: String,
    /// Configured duration.
    pub duration: SimTime,
    /// The modeled server.
    pub server: ServerSpec,
    /// Kernel counters.
    pub sim_stats: SimStats,
    /// Producer results, by declaration order.
    pub producers: Vec<ProducerReport>,
    /// Consumer results, by declaration order.
    pub consumers: Vec<ConsumerReport>,
    /// Broker results, by id.
    pub brokers: Vec<BrokerReport>,
    /// Store-replica results, in flattened replica order (declaration
    /// order x replication factor). Empty when no store is declared.
    pub stores: Vec<StoreReport>,
    /// SPE results, by job name. For parallel jobs this is the aggregated
    /// view (stage-0 input, last-stage output, summed counters); the
    /// per-instance breakdown is in
    /// [`spe_instances`](RunReport::spe_instances).
    pub spe: BTreeMap<String, SpeReport>,
    /// Per-instance SPE results of parallel jobs, keyed by
    /// `job/stage/instance` (empty when no job is parallel).
    pub spe_instances: BTreeMap<String, SpeReport>,
    /// Memory samples (500 ms cadence).
    pub mem_samples: Vec<(SimTime, u64)>,
    /// Peak memory observed.
    pub peak_mem_bytes: u64,
    /// Server CPU utilization per sampling window.
    pub cpu_series: Vec<(SimTime, f64)>,
    /// Per-node transmit throughput series (when watched).
    pub tx_series: Vec<TxSeries>,
    /// Every metric time series the telemetry sampler collected (empty when
    /// sampling is disabled via [`Scenario::with_telemetry`]): consumer lag
    /// per partition, per-instance record counts, broker log/LSO gauges,
    /// checkpoint counters, store op-log lengths, host CPU occupancy.
    pub metric_series: Vec<MetricSeries>,
    /// Times a shared [`RecordBatch`](s2g_proto::RecordBatch) had to be
    /// deep-copied during the run. The batch-first data plane keeps this at
    /// zero; a regression that reintroduces per-consumer record cloning
    /// shows up here (also exported as the `runtime/shared_batch_copies`
    /// telemetry counter).
    pub shared_batch_copies: u64,
}

impl RunReport {
    /// Peak memory as a fraction of the server's memory.
    pub fn peak_mem_fraction(&self) -> f64 {
        self.peak_mem_bytes as f64 / self.server.mem_bytes as f64
    }

    /// CPU utilization samples as plain numbers (for CDFs).
    pub fn cpu_samples(&self) -> Vec<f64> {
        self.cpu_series.iter().map(|(_, u)| *u).collect()
    }
}

/// A finished run: the report plus live handles for deeper inspection.
pub struct RunResult {
    /// The simulator (query processes via `process_ref`).
    pub sim: Sim,
    /// The emulated network.
    pub net: NetHandle,
    /// The delivery monitor.
    pub monitor: MonitorHandle,
    /// The memory ledger.
    pub ledger: LedgerHandle,
    /// Per-host CPU models.
    pub cpus: BTreeMap<String, CpuHandle>,
    /// Broker process ids, by broker id.
    pub broker_pids: Vec<ProcessId>,
    /// Producer process ids, by declaration order.
    pub producer_pids: Vec<ProcessId>,
    /// Consumer process ids, by declaration order.
    pub consumer_pids: Vec<ProcessId>,
    /// SPE worker process ids: by job name for classic jobs, by
    /// `job/stage/instance` for parallel jobs' instances.
    pub spe_pids: BTreeMap<String, ProcessId>,
    /// Store process ids, by host (a replicated store's replica 0).
    pub store_pids: BTreeMap<String, ProcessId>,
    /// Every store replica's process id, by declared host, in member-index
    /// order (equals `store_pids` singletons without replication).
    pub store_group_pids: BTreeMap<String, Vec<ProcessId>>,
    /// The in-memory checkpoint snapshots taken during the run, by job name
    /// (empty for durable backends, whose snapshots live in the store).
    pub checkpoint_snapshots: SnapshotStoreHandle,
    /// The run-wide telemetry handle: the live metrics registry, the
    /// sampled time series (`tidy_csv()`), and the causal event trace
    /// (`chrome_json()` when tracing was enabled).
    pub telemetry: Telemetry,
    /// The measurements.
    pub report: RunReport,
}

impl RunResult {
    /// Builds the Fig. 6b delivery matrix for one producer across all
    /// consumers.
    pub fn delivery_matrix(&self, producer_idx: usize) -> DeliveryMatrix {
        let p = &self.report.producers[producer_idx];
        let consumers: Vec<u32> = self.report.consumers.iter().map(|c| c.id).collect();
        let core = self.monitor.borrow();
        DeliveryMatrix::build(&core, p.id, p.sent_index.clone(), &consumers)
    }

    /// Mean end-to-end latency over a topic's deliveries.
    pub fn mean_latency(&self, topic: &str) -> Option<SimDuration> {
        self.monitor.borrow().mean_latency(topic)
    }

    /// Total records delivered across all consumers.
    pub fn total_deliveries(&self) -> usize {
        self.monitor.borrow().deliveries.len()
    }
}

impl fmt::Debug for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunResult")
            .field("report", &self.report.name)
            .field("deliveries", &self.total_deliveries())
            .finish()
    }
}
