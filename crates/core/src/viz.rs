//! Visualization: ASCII charts and CSV export.
//!
//! stream2gym's visualization module "presents a rich set of statistics to
//! the user, which includes per-port throughput, message latency, and event
//! ordering". We render the same artifacts as terminal-friendly ASCII plots
//! and machine-readable CSV, which is what the figure-regeneration harness
//! writes under `target/figures/`.

use std::fmt::Write as _;

/// Renders an XY line chart as ASCII. Multiple series share the canvas;
/// each uses its own glyph, listed in the legend.
///
/// # Examples
///
/// ```
/// use s2g_core::ascii_chart;
///
/// let s1: Vec<(f64, f64)> = (0..20).map(|x| (x as f64, (x * x) as f64)).collect();
/// let out = ascii_chart("quadratic", &[("x^2", &s1)], 40, 10, "x", "y");
/// assert!(out.contains("quadratic"));
/// assert!(out.contains("x^2"));
/// ```
pub fn ascii_chart(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
    x_label: &str,
    y_label: &str,
) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in pts.iter() {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let _ = writeln!(out, "{y_label}");
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_val:>10.2} |{line}");
    }
    let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>12}{x_min:<12.2}{: >pad$}{x_max:.2}  ({x_label})",
        "",
        "",
        pad = width.saturating_sub(24)
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "    {} {name}", GLYPHS[si % GLYPHS.len()]);
    }
    out
}

/// Renders a delivery matrix (consumers × messages) as an ASCII heatmap,
/// downsampling the message axis to `width` columns. A cell is dark (`#`)
/// when any message in its bucket was missed — the Fig. 6b artifact.
pub fn ascii_matrix(title: &str, rows: &[(String, &[bool])], width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "('.' delivered, '#' lost; message order left to right)"
    );
    for (label, cells) in rows {
        if cells.is_empty() {
            let _ = writeln!(out, "{label:>12} | (no messages)");
            continue;
        }
        let mut line = String::with_capacity(width);
        let per_bucket = (cells.len() as f64 / width as f64).max(1.0);
        for b in 0..width.min(cells.len()) {
            let lo = (b as f64 * per_bucket) as usize;
            let hi = (((b + 1) as f64 * per_bucket) as usize).min(cells.len());
            let all_ok = cells[lo..hi.max(lo + 1)].iter().all(|c| *c);
            line.push(if all_ok { '.' } else { '#' });
        }
        let _ = writeln!(out, "{label:>12} |{line}|");
    }
    out
}

/// Serializes series to CSV with an `x` column and one column per series
/// (empty cell when a series has no point at that x).
pub fn csv_series(header_x: &str, series: &[(&str, &[(f64, f64)])]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN x"));
    xs.dedup();
    let mut out = String::new();
    let names: Vec<&str> = series.iter().map(|(n, _)| *n).collect();
    let _ = writeln!(out, "{header_x},{}", names.join(","));
    for x in xs {
        let mut row = format!("{x}");
        for (_, pts) in series {
            match pts.iter().find(|(px, _)| (px - x).abs() < 1e-12) {
                Some((_, y)) => {
                    let _ = write!(row, ",{y}");
                }
                None => row.push(','),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Formats a two-column table (e.g. the Table II inventory).
pub fn ascii_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series() {
        let a: Vec<(f64, f64)> = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)];
        let b: Vec<(f64, f64)> = vec![(0.0, 4.0), (1.0, 2.0), (2.0, 0.0)];
        let out = ascii_chart("t", &[("up", &a), ("down", &b)], 30, 8, "x", "y");
        assert!(out.contains("== t =="));
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("up"));
        assert!(out.contains("down"));
    }

    #[test]
    fn chart_handles_empty() {
        let out = ascii_chart("empty", &[("s", &[])], 10, 5, "x", "y");
        assert!(out.contains("(no data)"));
    }

    #[test]
    fn chart_handles_constant_series() {
        let flat: Vec<(f64, f64)> = vec![(0.0, 1.0), (1.0, 1.0)];
        let out = ascii_chart("flat", &[("s", &flat)], 10, 5, "x", "y");
        assert!(out.contains('*'));
    }

    #[test]
    fn matrix_marks_losses() {
        let row0 = vec![true, true, false, true];
        let row1 = vec![true; 4];
        let out = ascii_matrix("m", &[("c0".into(), &row0), ("c1".into(), &row1)], 4);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[2].contains('#'));
        assert!(!lines[3].contains('#'));
    }

    #[test]
    fn csv_aligns_on_x() {
        let a: Vec<(f64, f64)> = vec![(1.0, 10.0), (2.0, 20.0)];
        let b: Vec<(f64, f64)> = vec![(2.0, 200.0)];
        let csv = csv_series("x", &[("a", &a), ("b", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
    }

    #[test]
    fn table_aligns_columns() {
        let out = ascii_table(
            "apps",
            &["Application", "LoC"],
            &[
                vec!["word count".into(), "167".into()],
                vec!["fraud".into(), "185".into()],
            ],
        );
        assert!(out.contains("Application"));
        assert!(out.contains("word count"));
    }
}
