//! Component configuration files: the flat `key: value` format.
//!
//! stream2gym configures each component with a small YAML file (Fig. 3 shows
//! the data-source and word-count examples). We support the flat subset
//! those files actually use — `key: value` pairs, comments, `---` document
//! markers — plus typed getters with unit suffixes (`2000ms`, `32m`, `1g`).

use std::collections::BTreeMap;
use std::fmt;

use s2g_sim::SimDuration;

/// A parsed component configuration.
///
/// # Examples
///
/// ```
/// use s2g_core::ComponentConfig;
///
/// let cfg = ComponentConfig::parse(
///     "---\n# the data source from Fig. 3a\nfilePath: test-data.csv\n\
///      topicName: raw-data\ntotalMessages: 1000\nrequestTimeout: 2000ms\n\
///      bufferMemory: 32m\n---\n",
/// )?;
/// assert_eq!(cfg.get("topicName"), Some("raw-data"));
/// assert_eq!(cfg.get_u64("totalMessages")?, Some(1000));
/// assert_eq!(cfg.get_duration("requestTimeout")?.unwrap().as_millis(), 2000);
/// assert_eq!(cfg.get_bytes("bufferMemory")?, Some(32 * 1024 * 1024));
/// # Ok::<(), s2g_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentConfig {
    entries: BTreeMap<String, String>,
}

/// A configuration parsing or typing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A non-empty line had no `key: value` shape.
    BadLine(usize, String),
    /// A value could not be parsed as the requested type.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadLine(n, l) => write!(f, "line {n}: not a `key: value` pair: {l:?}"),
            ConfigError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "key `{key}`: expected {expected}, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ComponentConfig {
    /// An empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses the flat `key: value` format.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadLine`] for malformed lines.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("---") {
                continue;
            }
            // Strip trailing comments.
            let line = line.split(" #").next().unwrap_or(line).trim();
            let Some((key, value)) = line.split_once(':') else {
                return Err(ConfigError::BadLine(i + 1, raw.to_string()));
            };
            entries.insert(key.trim().to_string(), value.trim().to_string());
        }
        Ok(ComponentConfig { entries })
    }

    /// Sets a key (builder style, for programmatic configs).
    pub fn set(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.entries.insert(key.to_string(), value.to_string());
        self
    }

    /// The raw value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadValue`] when present but unparsable.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, ConfigError> {
        self.get(key)
            .map(|v| {
                v.parse::<u64>().map_err(|_| ConfigError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "an unsigned integer",
                })
            })
            .transpose()
    }

    /// The value as an `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadValue`] when present but unparsable.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, ConfigError> {
        self.get(key)
            .map(|v| {
                v.parse::<f64>().map_err(|_| ConfigError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "a number",
                })
            })
            .transpose()
    }

    /// The value as a boolean (`true`/`false`/`yes`/`no`/`1`/`0`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadValue`] when present but unparsable.
    pub fn get_bool(&self, key: &str) -> Result<Option<bool>, ConfigError> {
        self.get(key)
            .map(|v| match v.to_lowercase().as_str() {
                "true" | "yes" | "1" | "on" => Ok(true),
                "false" | "no" | "0" | "off" => Ok(false),
                _ => Err(ConfigError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "a boolean",
                }),
            })
            .transpose()
    }

    /// The value as a duration: plain numbers are milliseconds; `ms`, `s`,
    /// `us`, `m` suffixes are honored (`2000ms`, `2s`, `5m`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadValue`] when present but unparsable.
    pub fn get_duration(&self, key: &str) -> Result<Option<SimDuration>, ConfigError> {
        let Some(v) = self.get(key) else {
            return Ok(None);
        };
        let bad = || ConfigError::BadValue {
            key: key.to_string(),
            value: v.to_string(),
            expected: "a duration like 2000ms, 2s, 5m",
        };
        let parse_num = |s: &str| s.trim().parse::<f64>().map_err(|_| bad());
        let d = if let Some(num) = v.strip_suffix("ms") {
            SimDuration::from_secs_f64(parse_num(num)? / 1e3)
        } else if let Some(num) = v.strip_suffix("us") {
            SimDuration::from_secs_f64(parse_num(num)? / 1e6)
        } else if let Some(num) = v.strip_suffix('s') {
            SimDuration::from_secs_f64(parse_num(num)?)
        } else if let Some(num) = v.strip_suffix('m') {
            SimDuration::from_secs_f64(parse_num(num)? * 60.0)
        } else {
            SimDuration::from_secs_f64(parse_num(v)? / 1e3)
        };
        Ok(Some(d))
    }

    /// The value as a byte size: `32m`, `1g`, `512k`, or plain bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadValue`] when present but unparsable.
    pub fn get_bytes(&self, key: &str) -> Result<Option<usize>, ConfigError> {
        let Some(v) = self.get(key) else {
            return Ok(None);
        };
        let bad = || ConfigError::BadValue {
            key: key.to_string(),
            value: v.to_string(),
            expected: "a size like 32m, 1g, 512k",
        };
        let lower = v.to_lowercase();
        let (num, mult) = if let Some(n) = lower.strip_suffix('g') {
            (n, 1usize << 30)
        } else if let Some(n) = lower.strip_suffix('m') {
            (n, 1 << 20)
        } else if let Some(n) = lower.strip_suffix('k') {
            (n, 1 << 10)
        } else {
            (lower.as_str(), 1)
        };
        let n: f64 = num.trim().parse().map_err(|_| bad())?;
        Ok(Some((n * mult as f64) as usize))
    }

    /// Iterates over all `(key, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3_configs() {
        // Fig. 3a (data source) and Fig. 3b (word count SPE job).
        let src = ComponentConfig::parse(
            "---\nfilePath : test-data.csv\ntopicName : raw-data\n\
             totalMessages : 1000\nrequestTimeout : 2000ms\nbufferMemory : 32m\n---\n",
        )
        .unwrap();
        assert_eq!(src.get("filePath"), Some("test-data.csv"));
        assert_eq!(src.get_u64("totalMessages").unwrap(), Some(1000));
        assert_eq!(
            src.get_duration("requestTimeout")
                .unwrap()
                .unwrap()
                .as_millis(),
            2000
        );
        assert_eq!(src.get_bytes("bufferMemory").unwrap(), Some(32 << 20));

        let spe = ComponentConfig::parse(
            "---\napp : word-count.py\nexecutorMemory : 1g\neventLog : true\n---\n",
        )
        .unwrap();
        assert_eq!(spe.get("app"), Some("word-count.py"));
        assert_eq!(spe.get_bytes("executorMemory").unwrap(), Some(1 << 30));
        assert_eq!(spe.get_bool("eventLog").unwrap(), Some(true));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let cfg = ComponentConfig::parse("# header\n\nkey: value # trailing\n").unwrap();
        assert_eq!(cfg.get("key"), Some("value"));
        assert_eq!(cfg.len(), 1);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = ComponentConfig::parse("good: 1\nnot a pair\n").unwrap_err();
        assert_eq!(err, ConfigError::BadLine(2, "not a pair".into()));
    }

    #[test]
    fn duration_units() {
        let cfg = ComponentConfig::parse("a: 500\nb: 2s\nc: 250ms\nd: 5m\ne: 100us\n").unwrap();
        assert_eq!(cfg.get_duration("a").unwrap().unwrap().as_millis(), 500);
        assert_eq!(cfg.get_duration("b").unwrap().unwrap().as_secs(), 2);
        assert_eq!(cfg.get_duration("c").unwrap().unwrap().as_millis(), 250);
        assert_eq!(cfg.get_duration("d").unwrap().unwrap().as_secs(), 300);
        assert_eq!(cfg.get_duration("e").unwrap().unwrap().as_micros(), 100);
        assert_eq!(cfg.get_duration("missing").unwrap(), None);
    }

    #[test]
    fn byte_sizes() {
        let cfg = ComponentConfig::parse("a: 16m\nb: 1g\nc: 512k\nd: 1000\n").unwrap();
        assert_eq!(cfg.get_bytes("a").unwrap(), Some(16 << 20));
        assert_eq!(cfg.get_bytes("b").unwrap(), Some(1 << 30));
        assert_eq!(cfg.get_bytes("c").unwrap(), Some(512 << 10));
        assert_eq!(cfg.get_bytes("d").unwrap(), Some(1000));
    }

    #[test]
    fn typed_errors_carry_context() {
        let cfg = ComponentConfig::parse("n: xyz\n").unwrap();
        match cfg.get_u64("n") {
            Err(ConfigError::BadValue { key, .. }) => assert_eq!(key, "n"),
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn builder_set() {
        let cfg = ComponentConfig::new().set("rate", 30).set("topic", "ta");
        assert_eq!(cfg.get_u64("rate").unwrap(), Some(30));
        assert_eq!(cfg.get("topic"), Some("ta"));
    }
}
