//! From GraphML task descriptions to runnable scenarios.
//!
//! This is the full §III-C workflow: a GraphML document names components per
//! node (Table I attributes) and points at component configuration files;
//! [`scenario_from_graphml`] resolves everything against a
//! [`ResourceBundle`] (file contents + registered stream-job plans) and
//! produces a [`Scenario`] ready to run. The decoupling the paper
//! emphasizes — application logic vs. testing setup — is exactly the split
//! between the bundle's plan registry and the GraphML description.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use s2g_broker::{ConsumerConfig, ProducerConfig, TopicSpec};
use s2g_net::{FaultAction, FaultPlan, LinkSpec, Topology};
use s2g_proto::AckMode;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Plan, SpeConfig};
use s2g_store::StoreConfig;

use crate::config::{ComponentConfig, ConfigError};
use crate::graphml::{parse_graphml, GraphmlError, GraphmlNode};
use crate::scenario::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};

/// Everything a GraphML description references by name: configuration files
/// and registered stream-job plans.
#[derive(Default)]
pub struct ResourceBundle {
    files: BTreeMap<String, String>,
    plans: BTreeMap<String, Rc<dyn Fn() -> Plan>>,
}

impl ResourceBundle {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file's contents under a path name.
    pub fn file(mut self, path: &str, contents: impl Into<String>) -> Self {
        self.files.insert(path.to_string(), contents.into());
        self
    }

    /// Registers a stream-job plan factory under an `app` name.
    pub fn plan(mut self, name: &str, factory: impl Fn() -> Plan + 'static) -> Self {
        self.plans.insert(name.to_string(), Rc::new(factory));
        self
    }

    fn get_file(&self, path: &str) -> Result<&str, DescError> {
        self.files
            .get(path)
            .map(String::as_str)
            .ok_or_else(|| DescError::MissingFile(path.to_string()))
    }

    fn config(&self, path: &str) -> Result<ComponentConfig, DescError> {
        if path.is_empty() || path == "default" {
            return Ok(ComponentConfig::new());
        }
        ComponentConfig::parse(self.get_file(path)?).map_err(DescError::Config)
    }
}

impl fmt::Debug for ResourceBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceBundle")
            .field("files", &self.files.keys().collect::<Vec<_>>())
            .field("plans", &self.plans.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// A task-description resolution error.
#[derive(Debug)]
pub enum DescError {
    /// The GraphML itself failed to parse.
    Graphml(GraphmlError),
    /// A component configuration file failed to parse.
    Config(ConfigError),
    /// A referenced file is not in the bundle.
    MissingFile(String),
    /// An unrecognized `prodType`.
    UnknownProdType(String),
    /// An unrecognized `consType`.
    UnknownConsType(String),
    /// An unrecognized `streamProcType`.
    UnknownStreamProcType(String),
    /// An unregistered stream-job `app`.
    UnknownPlan(String),
    /// A component config is missing a required key.
    MissingKey {
        /// The node the config belongs to.
        node: String,
        /// The missing key.
        key: &'static str,
    },
    /// A fault line could not be parsed.
    BadFault(String),
    /// A topic line could not be parsed.
    BadTopic(String),
}

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescError::Graphml(e) => write!(f, "graphml: {e}"),
            DescError::Config(e) => write!(f, "config: {e}"),
            DescError::MissingFile(p) => write!(f, "file `{p}` not in resource bundle"),
            DescError::UnknownProdType(t) => write!(f, "unknown prodType `{t}`"),
            DescError::UnknownConsType(t) => write!(f, "unknown consType `{t}`"),
            DescError::UnknownStreamProcType(t) => write!(f, "unknown streamProcType `{t}`"),
            DescError::UnknownPlan(p) => write!(f, "no plan registered for app `{p}`"),
            DescError::MissingKey { node, key } => {
                write!(f, "node `{node}` config is missing key `{key}`")
            }
            DescError::BadFault(l) => write!(f, "bad fault line: {l:?}"),
            DescError::BadTopic(l) => write!(f, "bad topic line: {l:?}"),
        }
    }
}

impl std::error::Error for DescError {}

impl From<GraphmlError> for DescError {
    fn from(e: GraphmlError) -> Self {
        DescError::Graphml(e)
    }
}

fn is_component_node(n: &GraphmlNode) -> bool {
    const KEYS: &[&str] = &[
        "prodType",
        "prodCfg",
        "consType",
        "consCfg",
        "streamProcType",
        "streamProcCfg",
        "storeType",
        "storeCfg",
        "brokerCfg",
        "cpuPercentage",
    ];
    KEYS.iter().any(|k| n.data.contains_key(*k))
}

fn parse_topics(text: &str) -> Result<Vec<TopicSpec>, DescError> {
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let mut spec = TopicSpec::new(parts[0]);
        if let Some(p) = parts.get(1) {
            let n: u32 = p
                .parse()
                .map_err(|_| DescError::BadTopic(raw.to_string()))?;
            spec = spec.partitions(n);
        }
        if let Some(r) = parts.get(2) {
            let n: u32 = r
                .parse()
                .map_err(|_| DescError::BadTopic(raw.to_string()))?;
            spec = spec.replication(n);
        }
        if let Some(pr) = parts.get(3) {
            let n: u32 = pr
                .parse()
                .map_err(|_| DescError::BadTopic(raw.to_string()))?;
            spec = spec.primary(n);
        }
        out.push(spec);
    }
    Ok(out)
}

fn parse_faults(text: &str) -> Result<FaultPlan, DescError> {
    let mut plan = FaultPlan::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let bad = || DescError::BadFault(raw.to_string());
        let at_secs: f64 = parts.first().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let at = SimTime::ZERO + SimDuration::from_secs_f64(at_secs);
        let action = match *parts.get(1).ok_or_else(bad)? {
            "disconnect" => FaultAction::Disconnect(parts.get(2).ok_or_else(bad)?.to_string()),
            "reconnect" => FaultAction::Reconnect(parts.get(2).ok_or_else(bad)?.to_string()),
            "linkdown" => FaultAction::LinkDown(
                parts.get(2).ok_or_else(bad)?.to_string(),
                parts.get(3).ok_or_else(bad)?.to_string(),
            ),
            "linkup" => FaultAction::LinkUp(
                parts.get(2).ok_or_else(bad)?.to_string(),
                parts.get(3).ok_or_else(bad)?.to_string(),
            ),
            "nodedown" => FaultAction::NodeDown(parts.get(2).ok_or_else(bad)?.to_string()),
            "nodeup" => FaultAction::NodeUp(parts.get(2).ok_or_else(bad)?.to_string()),
            "loss" => FaultAction::SetLoss(
                parts.get(2).ok_or_else(bad)?.to_string(),
                parts.get(3).ok_or_else(bad)?.to_string(),
                parts.get(4).ok_or_else(bad)?.parse().map_err(|_| bad())?,
            ),
            "latency" => FaultAction::SetLatency(
                parts.get(2).ok_or_else(bad)?.to_string(),
                parts.get(3).ok_or_else(bad)?.to_string(),
                SimDuration::from_millis(parts.get(4).ok_or_else(bad)?.parse().map_err(|_| bad())?),
            ),
            "recompute" => FaultAction::RecomputeRoutes,
            _ => return Err(bad()),
        };
        plan = plan.at(at, action);
    }
    Ok(plan)
}

fn producer_config(cfg: &ComponentConfig) -> Result<ProducerConfig, DescError> {
    let mut pc = ProducerConfig::default();
    if let Some(b) = cfg.get_bytes("bufferMemory").map_err(DescError::Config)? {
        pc.buffer_memory = b;
    }
    if let Some(d) = cfg
        .get_duration("requestTimeout")
        .map_err(DescError::Config)?
    {
        pc.request_timeout = d;
    }
    if let Some(d) = cfg
        .get_duration("deliveryTimeout")
        .map_err(DescError::Config)?
    {
        pc.delivery_timeout = d;
    }
    if let Some(d) = cfg.get_duration("linger").map_err(DescError::Config)? {
        pc.linger = d;
    }
    if let Some(a) = cfg.get("acks") {
        pc.acks = if a == "all" {
            AckMode::All
        } else {
            AckMode::Leader
        };
    }
    Ok(pc)
}

/// Resolves a GraphML task description into a runnable [`Scenario`].
///
/// Controller hosts (`ctl1`, and `ctl2`/`ctl3` under KRaft) are added to the
/// described topology automatically, attached to the first switch.
///
/// # Errors
///
/// Returns a [`DescError`] when the document, a referenced file, or a
/// component type cannot be resolved.
pub fn scenario_from_graphml(
    name: &str,
    xml: &str,
    bundle: &ResourceBundle,
) -> Result<Scenario, DescError> {
    let doc = parse_graphml(xml)?;
    let mut sc = Scenario::new(name);

    // Optional graph-level settings.
    if let Some(seed) = doc.graph_data.get("seed") {
        if let Ok(s) = seed.parse() {
            sc.seed(s);
        }
    }
    if let Some(d) = doc.graph_data.get("durationS") {
        if let Ok(s) = d.parse::<u64>() {
            sc.duration(SimTime::from_secs(s));
        }
    }
    let mode = match doc.graph_data.get("mode").map(String::as_str) {
        Some("kraft") => s2g_broker::CoordinationMode::Kraft,
        _ => s2g_broker::CoordinationMode::Zk,
    };
    sc.coordination(mode);

    // Topics.
    if let Some(path) = doc.graph_data.get("topicCfg") {
        for t in parse_topics(bundle.get_file(path)?)? {
            sc.topic(t);
        }
    }
    // Faults.
    if let Some(path) = doc.graph_data.get("faultCfg") {
        sc.faults(parse_faults(bundle.get_file(path)?)?);
    }

    // Topology from the document's nodes and edges.
    let mut topo = Topology::new();
    let mut first_switch: Option<String> = None;
    for n in &doc.nodes {
        if is_component_node(n) {
            topo.add_host(n.id.as_str())
                .map_err(|_| DescError::BadTopic(n.id.clone()))?;
        } else {
            topo.add_switch(n.id.as_str())
                .map_err(|_| DescError::BadTopic(n.id.clone()))?;
            if first_switch.is_none() {
                first_switch = Some(n.id.clone());
            }
        }
    }
    for e in &doc.edges {
        let mut spec = LinkSpec::new();
        if let Some(lat) = e.data.get("lat").and_then(|v| v.parse::<u64>().ok()) {
            spec = spec.latency_ms(lat);
        }
        if let Some(bw) = e.data.get("bw").and_then(|v| v.parse::<f64>().ok()) {
            spec = spec.bandwidth_mbps(bw);
        }
        if let Some(loss) = e.data.get("loss").and_then(|v| v.parse::<f64>().ok()) {
            spec = spec.loss_pct(loss);
        }
        if let Some(st) = e.data.get("st").and_then(|v| v.parse::<u16>().ok()) {
            spec = spec.src_port(st);
        }
        if let Some(dt) = e.data.get("dt").and_then(|v| v.parse::<u16>().ok()) {
            spec = spec.dst_port(dt);
        }
        topo.add_link(&e.source, &e.target, spec)
            .map_err(|_| DescError::BadTopic(format!("{}->{}", e.source, e.target)))?;
    }
    // Controller hosts, attached to the first switch (or a dedicated one).
    let hub = match first_switch {
        Some(s) => s,
        None => {
            topo.add_switch("ctl-sw")
                .map_err(|_| DescError::BadTopic("ctl-sw".into()))?;
            "ctl-sw".to_string()
        }
    };
    let n_ctl = match mode {
        s2g_broker::CoordinationMode::Zk => 1,
        s2g_broker::CoordinationMode::Kraft => 3,
    };
    for i in 1..=n_ctl {
        let h = format!("ctl{i}");
        topo.add_host(h.as_str())
            .map_err(|_| DescError::BadTopic(h.clone()))?;
        topo.add_link(&h, &hub, LinkSpec::new())
            .map_err(|_| DescError::BadTopic(h.clone()))?;
    }
    sc.topology(topo);

    // Components per node.
    for n in &doc.nodes {
        if let Some(pct) = n
            .data
            .get("cpuPercentage")
            .and_then(|v| v.parse::<f64>().ok())
        {
            sc.host_cpu_percentage(&n.id, pct);
        }
        if n.data.contains_key("brokerCfg") {
            let cfg = bundle.config(n.data.get("brokerCfg").map(String::as_str).unwrap_or(""))?;
            let mut bc = s2g_broker::BrokerConfig::default();
            if let Some(d) = cfg
                .get_duration("replicaLagMax")
                .map_err(DescError::Config)?
            {
                bc.replica_lag_max = d;
            }
            if let Some(d) = cfg
                .get_duration("sessionTimeout")
                .map_err(DescError::Config)?
            {
                bc.session_timeout = d;
            }
            sc.broker_with(&n.id, bc);
        }
        if let Some(ptype) = n.data.get("prodType") {
            let cfg = bundle.config(n.data.get("prodCfg").map(String::as_str).unwrap_or(""))?;
            let pc = producer_config(&cfg)?;
            let need = |key: &'static str| -> Result<String, DescError> {
                cfg.get(key)
                    .map(str::to_string)
                    .ok_or(DescError::MissingKey {
                        node: n.id.clone(),
                        key,
                    })
            };
            let interval = cfg
                .get_duration("messageInterval")
                .map_err(DescError::Config)?
                .unwrap_or(SimDuration::from_millis(100));
            let payload = cfg
                .get_u64("payloadBytes")
                .map_err(DescError::Config)?
                .unwrap_or(200) as usize;
            let until_s = cfg
                .get_u64("untilS")
                .map_err(DescError::Config)?
                .unwrap_or(3_600);
            let source = match ptype.as_str() {
                "SFST" => {
                    let file = need("filePath")?;
                    let items: Vec<String> = bundle
                        .get_file(&file)?
                        .lines()
                        .map(str::to_string)
                        .collect();
                    SourceSpec::Items {
                        topic: need("topicName")?,
                        items,
                        interval,
                    }
                }
                "RATE" => SourceSpec::Rate {
                    topic: need("topicName")?,
                    count: cfg
                        .get_u64("totalMessages")
                        .map_err(DescError::Config)?
                        .ok_or(DescError::MissingKey {
                            node: n.id.clone(),
                            key: "totalMessages",
                        })?,
                    interval,
                    payload,
                },
                "RANDOM" => SourceSpec::RandomTopics {
                    topics: need("topics")?
                        .split(',')
                        .map(|t| t.trim().to_string())
                        .collect(),
                    kbps: cfg
                        .get_u64("kbps")
                        .map_err(DescError::Config)?
                        .unwrap_or(30),
                    payload,
                    until: SimTime::from_secs(until_s),
                },
                "POISSON" => SourceSpec::Poisson {
                    topic: need("topicName")?,
                    rate_per_sec: cfg
                        .get_f64("ratePerSec")
                        .map_err(DescError::Config)?
                        .unwrap_or(10.0),
                    payload,
                    until: SimTime::from_secs(until_s),
                },
                other => return Err(DescError::UnknownProdType(other.to_string())),
            };
            sc.producer(&n.id, source, pc);
        }
        if let Some(ctype) = n.data.get("consType") {
            if ctype != "STANDARD" && ctype != "LOGGING" {
                return Err(DescError::UnknownConsType(ctype.clone()));
            }
            let cfg = bundle.config(n.data.get("consCfg").map(String::as_str).unwrap_or(""))?;
            let topics_str = cfg.get("topics").ok_or(DescError::MissingKey {
                node: n.id.clone(),
                key: "topics",
            })?;
            let topics: Vec<&str> = topics_str.split(',').map(str::trim).collect();
            let mut cc = ConsumerConfig::default();
            if let Some(d) = cfg
                .get_duration("pollInterval")
                .map_err(DescError::Config)?
            {
                cc.poll_interval = d;
            }
            sc.consumer(&n.id, cc, &topics);
        }
        if let Some(stype) = n.data.get("streamProcType") {
            if stype != "SPARK" && stype != "FLINK" && stype != "KSTREAM" {
                return Err(DescError::UnknownStreamProcType(stype.clone()));
            }
            let cfg = bundle.config(
                n.data
                    .get("streamProcCfg")
                    .map(String::as_str)
                    .unwrap_or(""),
            )?;
            let app = cfg.get("app").ok_or(DescError::MissingKey {
                node: n.id.clone(),
                key: "app",
            })?;
            let factory = bundle
                .plans
                .get(app)
                .cloned()
                .ok_or_else(|| DescError::UnknownPlan(app.to_string()))?;
            let sources: Vec<String> = cfg
                .get("sourceTopics")
                .ok_or(DescError::MissingKey {
                    node: n.id.clone(),
                    key: "sourceTopics",
                })?
                .split(',')
                .map(|t| t.trim().to_string())
                .collect();
            let sink = if let Some(t) = cfg.get("sinkTopic") {
                SpeSinkSpec::Topic(t.to_string())
            } else if let Some(h) = cfg.get("sinkStoreHost") {
                SpeSinkSpec::StoreOn {
                    host: h.to_string(),
                    table: cfg.get("sinkTable").unwrap_or("results").to_string(),
                }
            } else {
                SpeSinkSpec::Collect
            };
            let mut scfg = SpeConfig::default();
            if let Some(d) = cfg
                .get_duration("batchInterval")
                .map_err(DescError::Config)?
            {
                scfg.batch_interval = d;
            }
            sc.spe_job(
                &n.id,
                SpeJobSpec::new(
                    format!("{}-{}", n.id, app),
                    sources,
                    move || factory(),
                    sink,
                    scfg,
                ),
            );
        }
        if n.data.contains_key("storeType") {
            sc.store(&n.id, StoreConfig::default());
        }
    }
    Ok(sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_spe::{Event, Value};

    fn word_split_plan() -> Plan {
        Plan::new().flat_map("split", |e| {
            e.value
                .as_str()
                .unwrap_or("")
                .split_whitespace()
                .map(|w| Event {
                    value: Value::Str(w.to_string()),
                    ..e.clone()
                })
                .collect()
        })
    }

    fn bundle() -> ResourceBundle {
        ResourceBundle::new()
            .file("topics.cfg", "raw-data 1 1\nwords 1 1\n")
            .file(
                "data-src.yaml",
                "filePath: corpus.txt\ntopicName: raw-data\nmessageInterval: 50ms\n",
            )
            .file("corpus.txt", "hello world\nfoo bar baz\n")
            .file("data-sink.yaml", "topics: words\n")
            .file(
                "spe.yaml",
                "app: word-split\nsourceTopics: raw-data\nsinkTopic: words\n",
            )
            .plan("word-split", word_split_plan)
    }

    const PIPELINE: &str = r#"
    <graph edgedefault="undirected">
      <data key="topicCfg">topics.cfg</data>
      <data key="durationS">40</data>
      <data key="seed">5</data>
      <node id="h1">
        <data key="prodType">SFST</data>
        <data key="prodCfg">data-src.yaml</data>
      </node>
      <node id="h2"><data key="brokerCfg">default</data></node>
      <node id="h3">
        <data key="streamProcType">SPARK</data>
        <data key="streamProcCfg">spe.yaml</data>
      </node>
      <node id="h5">
        <data key="consType">STANDARD</data>
        <data key="consCfg">data-sink.yaml</data>
      </node>
      <node id="s1"/>
      <edge source="s1" target="h1"><data key="lat">5</data></edge>
      <edge source="s1" target="h2"><data key="lat">5</data></edge>
      <edge source="s1" target="h3"><data key="lat">5</data></edge>
      <edge source="s1" target="h5"><data key="lat">5</data></edge>
    </graph>"#;

    #[test]
    fn fig4_style_pipeline_runs_end_to_end() {
        let sc = scenario_from_graphml("fig4", PIPELINE, &bundle()).expect("resolves");
        let result = sc.run().expect("runs");
        // 2 documents → 5 words delivered to the consumer via the SPE job.
        let words: Vec<DeliveryCount> = vec![];
        let _ = words;
        let monitor = result.monitor.borrow();
        let delivered: Vec<&crate::monitor::DeliveryRecord> = monitor.for_topic("words").collect();
        assert_eq!(delivered.len(), 5, "five words through the pipeline");
    }

    type DeliveryCount = usize;

    #[test]
    fn topics_file_parses_fields() {
        let topics = parse_topics("ta 2 3 0\ntb\n# comment\n").unwrap();
        assert_eq!(topics[0].partitions, 2);
        assert_eq!(topics[0].replication, 3);
        assert_eq!(topics[0].primary, Some(0));
        assert_eq!(topics[1].name, "tb");
        assert!(parse_topics("ta x\n").is_err());
    }

    #[test]
    fn faults_file_parses_actions() {
        let plan =
            parse_faults("60 disconnect h1\n120 reconnect h1\n10 loss h1 s1 2.5\n5 linkdown a b\n")
                .unwrap();
        assert_eq!(plan.len(), 4);
        assert!(parse_faults("oops\n").is_err());
        assert!(parse_faults("10 explode h1\n").is_err());
    }

    #[test]
    fn missing_file_is_reported() {
        let err = scenario_from_graphml("x", PIPELINE, &ResourceBundle::new()).unwrap_err();
        assert!(matches!(err, DescError::MissingFile(_)), "{err}");
    }

    #[test]
    fn unknown_plan_is_reported() {
        let b = bundle();
        let b = ResourceBundle {
            files: b.files,
            plans: BTreeMap::new(),
        };
        let err = scenario_from_graphml("x", PIPELINE, &b).unwrap_err();
        assert!(matches!(err, DescError::UnknownPlan(_)), "{err}");
    }

    #[test]
    fn unknown_prod_type_is_reported() {
        let xml = r#"<graph>
          <node id="h1"><data key="prodType">MAGIC</data></node>
          <node id="h2"><data key="brokerCfg">default</data></node>
          <node id="s1"/>
        </graph>"#;
        let err = scenario_from_graphml("x", xml, &bundle()).unwrap_err();
        assert!(matches!(err, DescError::UnknownProdType(_)), "{err}");
    }
}
