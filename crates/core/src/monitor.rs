//! Monitoring: delivery records, latency series, delivery matrices.
//!
//! stream2gym "triggers a series of monitoring tasks that are responsible
//! for logging relevant information from both the network and the
//! application perspective". This module is the application side: every
//! consumer sink is wrapped by a [`MonitoredSink`] that records who received
//! which record when, from which the latency plots (Fig. 5, Fig. 6c) and
//! the message delivery matrix (Fig. 6b) are derived.

use std::cell::RefCell;
use std::rc::Rc;

use s2g_broker::DataSink;
use s2g_proto::{ProducerId, Record, TopicPartition};
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::Event;
use s2g_telemetry::{Histogram, SummaryStats};

/// One observed delivery: a record reaching a consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryRecord {
    /// The receiving consumer's index.
    pub consumer: u32,
    /// Topic the record came from. Interned (`Rc<str>`): the monitor sees
    /// every delivered record in the run, so a per-record `String` clone
    /// here would be one of the hottest allocations in the simulator.
    pub topic: Rc<str>,
    /// The producer that created the record (or the original source record,
    /// for SPE outputs carrying provenance).
    pub producer: ProducerId,
    /// Producer sequence number.
    pub seq: u64,
    /// When the data unit entered the pipeline (origin timestamp for SPE
    /// outputs, produce time otherwise).
    pub produced: SimTime,
    /// When the consumer received it.
    pub delivered: SimTime,
}

impl DeliveryRecord {
    /// End-to-end latency of this delivery. A delivery whose origin
    /// timestamp lies *after* its arrival (possible when an SPE operator
    /// stamps synthetic origins) clamps to zero; the monitor counts those
    /// in [`MonitorCore::clamped_latencies`] so they can't silently skew
    /// latency statistics toward zero.
    pub fn latency(&self) -> SimDuration {
        self.delivered.saturating_since(self.produced)
    }

    /// Whether [`latency`](Self::latency) clamped a negative interval.
    pub fn latency_clamped(&self) -> bool {
        self.produced > self.delivered
    }
}

/// Shared collection of all deliveries in a run.
#[derive(Debug, Default)]
pub struct MonitorCore {
    /// Every delivery, in arrival order.
    pub deliveries: Vec<DeliveryRecord>,
    /// Deliveries whose produced-after-delivered latency was clamped to
    /// zero by [`DeliveryRecord::latency`].
    pub clamped_latencies: u64,
}

/// Shared handle to the monitor.
pub type MonitorHandle = Rc<RefCell<MonitorCore>>;

impl MonitorCore {
    /// Creates a shared monitor.
    pub fn new_handle() -> MonitorHandle {
        Rc::new(RefCell::new(MonitorCore::default()))
    }

    /// Deliveries for one topic (any consumer).
    pub fn for_topic<'a>(&'a self, topic: &'a str) -> impl Iterator<Item = &'a DeliveryRecord> {
        self.deliveries.iter().filter(move |d| &*d.topic == topic)
    }

    /// Deliveries seen by one consumer.
    pub fn for_consumer(&self, consumer: u32) -> impl Iterator<Item = &DeliveryRecord> {
        self.deliveries
            .iter()
            .filter(move |d| d.consumer == consumer)
    }

    /// Mean end-to-end latency over a topic, if any deliveries exist.
    pub fn mean_latency(&self, topic: &str) -> Option<SimDuration> {
        let lats: Vec<u64> = self
            .for_topic(topic)
            .map(|d| d.latency().as_nanos())
            .collect();
        if lats.is_empty() {
            return None;
        }
        Some(SimDuration::from_nanos(
            lats.iter().sum::<u64>() / lats.len() as u64,
        ))
    }

    /// Mean and tail latency (p50/p95/p99, in seconds) over a topic's
    /// deliveries, computed through the telemetry latency histogram —
    /// `None` when the topic saw no deliveries.
    pub fn latency_stats(&self, topic: &str) -> Option<SummaryStats> {
        let mut hist = Histogram::latency_seconds();
        for d in self.for_topic(topic) {
            hist.observe(d.latency().as_secs_f64());
        }
        hist.stats()
    }

    /// Latency series for one consumer and topic, ordered by delivery time
    /// (the paper's Fig. 6c axes: message order vs latency).
    pub fn latency_series(&self, consumer: u32, topic: &str) -> Vec<(SimTime, SimDuration)> {
        let mut v: Vec<(SimTime, SimDuration)> = self
            .deliveries
            .iter()
            .filter(|d| d.consumer == consumer && &*d.topic == topic)
            .map(|d| (d.delivered, d.latency()))
            .collect();
        v.sort();
        v
    }

    /// Whether `(producer, seq)` on `topic` reached `consumer`.
    pub fn was_delivered(
        &self,
        consumer: u32,
        topic: &str,
        producer: ProducerId,
        seq: u64,
    ) -> bool {
        self.deliveries.iter().any(|d| {
            d.consumer == consumer && &*d.topic == topic && d.producer == producer && d.seq == seq
        })
    }
}

/// A [`DataSink`] wrapper that records deliveries into the shared monitor
/// and forwards to the inner sink.
pub struct MonitoredSink {
    handle: MonitorHandle,
    consumer: u32,
    inner: Box<dyn DataSink>,
    /// Interned topic of the last delivery — consumers poll per partition,
    /// so the same topic repeats and one `Rc` bump replaces a `String`
    /// clone per record.
    topic_cache: Option<Rc<str>>,
}

impl MonitoredSink {
    /// Wraps `inner` for consumer index `consumer`.
    pub fn new(handle: MonitorHandle, consumer: u32, inner: Box<dyn DataSink>) -> Self {
        MonitoredSink {
            handle,
            consumer,
            inner,
            topic_cache: None,
        }
    }

    /// The wrapped sink, for post-run downcasting.
    pub fn inner(&self) -> &dyn DataSink {
        self.inner.as_ref()
    }
}

impl DataSink for MonitoredSink {
    fn on_records(&mut self, now: SimTime, tp: &TopicPartition, records: &[Record]) {
        let topic: Rc<str> = match &self.topic_cache {
            Some(t) if **t == *tp.topic => t.clone(),
            _ => {
                let t: Rc<str> = Rc::from(tp.topic.as_str());
                self.topic_cache = Some(t.clone());
                t
            }
        };
        {
            let mut core = self.handle.borrow_mut();
            for r in records {
                // SPE outputs carry their provenance in the encoded event;
                // raw records use their own produce time. `peek_origin`
                // walks the borrowed payload without decoding it — the
                // monitor never copies record bytes.
                let produced = Event::peek_origin(&r.value).unwrap_or(r.timestamp);
                if produced > now {
                    core.clamped_latencies += 1;
                }
                core.deliveries.push(DeliveryRecord {
                    consumer: self.consumer,
                    topic: topic.clone(),
                    producer: r.producer,
                    seq: r.producer_seq,
                    produced,
                    delivered: now,
                });
            }
        }
        self.inner.on_records(now, tp, records);
    }
}

/// The Fig. 6b artifact: for one producer's messages (in production order),
/// which consumers received each one.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryMatrix {
    /// The producer whose messages are tracked.
    pub producer: ProducerId,
    /// Consumer indices (rows).
    pub consumers: Vec<u32>,
    /// Tracked messages as `(topic, seq, produced)` (columns, by seq order).
    pub messages: Vec<(String, u64, SimTime)>,
    /// `received[row][col]` — whether consumer `row` got message `col`.
    pub received: Vec<Vec<bool>>,
}

impl DeliveryMatrix {
    /// Builds the matrix for `producer` from the monitor and the producer's
    /// send log (`(topic, seq, produced)` per message).
    pub fn build(
        core: &MonitorCore,
        producer: ProducerId,
        messages: Vec<(String, u64, SimTime)>,
        consumers: &[u32],
    ) -> Self {
        let mut received = vec![vec![false; messages.len()]; consumers.len()];
        for d in &core.deliveries {
            if d.producer != producer {
                continue;
            }
            let Some(row) = consumers.iter().position(|c| *c == d.consumer) else {
                continue;
            };
            if let Some(col) = messages
                .iter()
                .position(|(t, s, _)| *s == d.seq && *t == *d.topic)
            {
                received[row][col] = true;
            }
        }
        DeliveryMatrix {
            producer,
            consumers: consumers.to_vec(),
            messages,
            received,
        }
    }

    /// Messages not received by a given consumer row.
    pub fn losses_for_row(&self, row: usize) -> Vec<&(String, u64, SimTime)> {
        self.messages
            .iter()
            .enumerate()
            .filter(|(col, _)| !self.received[row][*col])
            .map(|(_, m)| m)
            .collect()
    }

    /// Messages missed by every consumer.
    pub fn total_losses(&self) -> Vec<&(String, u64, SimTime)> {
        self.messages
            .iter()
            .enumerate()
            .filter(|(col, _)| self.received.iter().all(|row| !row[*col]))
            .map(|(_, m)| m)
            .collect()
    }

    /// The fraction of (message, consumer) cells delivered.
    pub fn delivery_rate(&self) -> f64 {
        let total = self.messages.len() * self.consumers.len();
        if total == 0 {
            return 1.0;
        }
        let hit: usize = self
            .received
            .iter()
            .map(|row| row.iter().filter(|b| **b).count())
            .sum();
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_broker::CollectingSink;

    fn record(producer: u32, seq: u64, ts_ms: u64) -> Record {
        use s2g_proto::Record as R;
        R::keyless(vec![1, 2, 3], SimTime::from_millis(ts_ms))
            .from_producer(ProducerId(producer), seq)
    }

    #[test]
    fn monitored_sink_records_and_forwards() {
        let handle = MonitorCore::new_handle();
        let mut sink = MonitoredSink::new(handle.clone(), 3, Box::new(CollectingSink::default()));
        let tp = TopicPartition::new("t", 0);
        sink.on_records(
            SimTime::from_millis(500),
            &tp,
            &[record(1, 0, 100), record(1, 1, 200)],
        );
        let core = handle.borrow();
        assert_eq!(core.deliveries.len(), 2);
        assert_eq!(core.deliveries[0].consumer, 3);
        assert_eq!(core.deliveries[0].latency(), SimDuration::from_millis(400));
        assert!(core.was_delivered(3, "t", ProducerId(1), 1));
        assert!(!core.was_delivered(3, "t", ProducerId(1), 2));
        // Forwarded to the inner CollectingSink too.
        let inner: &dyn DataSink = sink.inner();
        let inner = (inner as &dyn std::any::Any)
            .downcast_ref::<CollectingSink>()
            .unwrap();
        assert_eq!(inner.deliveries.len(), 2);
    }

    #[test]
    fn mean_latency_and_series() {
        let handle = MonitorCore::new_handle();
        let mut sink = MonitoredSink::new(handle.clone(), 0, Box::new(CollectingSink::default()));
        let tp = TopicPartition::new("t", 0);
        sink.on_records(SimTime::from_millis(300), &tp, &[record(1, 0, 100)]);
        sink.on_records(SimTime::from_millis(600), &tp, &[record(1, 1, 200)]);
        let core = handle.borrow();
        assert_eq!(core.mean_latency("t"), Some(SimDuration::from_millis(300)));
        assert_eq!(core.mean_latency("zz"), None);
        let series = core.latency_series(0, "t");
        assert_eq!(series.len(), 2);
        assert!(series[0].0 < series[1].0);
    }

    #[test]
    fn spe_events_use_origin_for_latency() {
        let handle = MonitorCore::new_handle();
        let mut sink = MonitoredSink::new(handle.clone(), 0, Box::new(CollectingSink::default()));
        let ev = Event::new(s2g_spe::Value::Int(1), SimTime::from_millis(900))
            .with_origin(SimTime::from_millis(100));
        let rec = Record::keyless(ev.to_bytes(), SimTime::from_millis(900))
            .from_producer(ProducerId(5), 0);
        sink.on_records(
            SimTime::from_millis(1_000),
            &TopicPartition::new("out", 0),
            &[rec],
        );
        let core = handle.borrow();
        assert_eq!(core.deliveries[0].produced, SimTime::from_millis(100));
        assert_eq!(core.deliveries[0].latency(), SimDuration::from_millis(900));
    }

    #[test]
    fn latency_stats_cover_tail_quantiles() {
        let handle = MonitorCore::new_handle();
        let mut sink = MonitoredSink::new(handle.clone(), 0, Box::new(CollectingSink::default()));
        let tp = TopicPartition::new("t", 0);
        // 90 deliveries at ~10 ms and 10 stragglers at ~1 s: the median
        // stays near the bulk while p99 lands among the stragglers.
        for i in 0..90 {
            sink.on_records(
                SimTime::from_millis(i * 20 + 10),
                &tp,
                &[record(1, i, i * 20)],
            );
        }
        for i in 90..100 {
            sink.on_records(
                SimTime::from_millis(i * 20 + 1_000),
                &tp,
                &[record(1, i, i * 20)],
            );
        }
        let core = handle.borrow();
        let stats = core.latency_stats("t").expect("deliveries exist");
        assert_eq!(stats.count, 100);
        assert!(stats.p50 < 0.05, "median near the 10ms bulk: {}", stats.p50);
        assert!(stats.p99 > 0.5, "p99 sees the 1s straggler: {}", stats.p99);
        assert!(stats.mean > stats.p50);
        assert!(core.latency_stats("zz").is_none());
    }

    #[test]
    fn clamped_negative_latencies_are_counted() {
        let handle = MonitorCore::new_handle();
        let mut sink = MonitoredSink::new(handle.clone(), 0, Box::new(CollectingSink::default()));
        let tp = TopicPartition::new("t", 0);
        // Produced at 500 ms but "delivered" at 100 ms: the latency clamps
        // to zero and the clamp is counted instead of silently vanishing.
        sink.on_records(SimTime::from_millis(100), &tp, &[record(1, 0, 500)]);
        sink.on_records(SimTime::from_millis(700), &tp, &[record(1, 1, 600)]);
        let core = handle.borrow();
        assert_eq!(core.clamped_latencies, 1);
        assert!(core.deliveries[0].latency_clamped());
        assert_eq!(core.deliveries[0].latency(), SimDuration::ZERO);
        assert!(!core.deliveries[1].latency_clamped());
    }

    #[test]
    fn delivery_matrix_marks_losses() {
        let handle = MonitorCore::new_handle();
        let tp = TopicPartition::new("ta", 0);
        let mut sink0 = MonitoredSink::new(handle.clone(), 0, Box::new(CollectingSink::default()));
        let mut sink1 = MonitoredSink::new(handle.clone(), 1, Box::new(CollectingSink::default()));
        // Consumer 0 gets messages 0 and 1; consumer 1 only message 0.
        sink0.on_records(
            SimTime::from_millis(10),
            &tp,
            &[record(7, 0, 1), record(7, 1, 2)],
        );
        sink1.on_records(SimTime::from_millis(10), &tp, &[record(7, 0, 1)]);
        let messages = vec![
            ("ta".to_string(), 0, SimTime::from_millis(1)),
            ("ta".to_string(), 1, SimTime::from_millis(2)),
            ("ta".to_string(), 2, SimTime::from_millis(3)), // never delivered
        ];
        let core = handle.borrow();
        let m = DeliveryMatrix::build(&core, ProducerId(7), messages, &[0, 1]);
        assert_eq!(m.received[0], vec![true, true, false]);
        assert_eq!(m.received[1], vec![true, false, false]);
        assert_eq!(m.losses_for_row(1).len(), 2);
        assert_eq!(m.total_losses().len(), 1);
        assert!((m.delivery_rate() - 0.5).abs() < 1e-9);
    }
}
