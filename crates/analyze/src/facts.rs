//! A plain-data view of a scenario, extracted by `s2g-core` before a run.
//!
//! The analyzer never sees the `Scenario` type itself (that would make
//! `s2g-core` and `s2g-analyze` mutually dependent); core flattens the
//! builder state — with every scenario-level override already applied, so
//! rules reason about *effective* configs — into these structs and hands
//! them to [`crate::analyze`].

use s2g_broker::{BrokerConfig, ConsumerConfig, ControllerConfig, ProducerConfig};
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::SpeConfig;

/// One declared (or auto-declared shuffle) topic.
#[derive(Debug, Clone)]
pub struct TopicFacts {
    /// Topic name.
    pub name: String,
    /// Partition count.
    pub partitions: u32,
    /// Effective replication factor (after any
    /// `with_replicated_partitions` override and broker-count cap).
    pub replication: u32,
    /// Replication factor as literally declared on the `TopicSpec`,
    /// before any override/cap — what the author asked for.
    pub declared_replication: u32,
    /// True for a generated `__shuffle.<job>.<stage>` topic.
    pub shuffle: bool,
}

/// One broker, with its post-override config.
#[derive(Debug, Clone)]
pub struct BrokerFacts {
    /// Placement host.
    pub host: String,
    /// Effective config (scenario-level retention/compaction knobs folded
    /// in, as `run` would).
    pub cfg: BrokerConfig,
}

/// One producer stub, with rate/size hints recovered from its source spec.
#[derive(Debug, Clone)]
pub struct ProducerFacts {
    /// Fault-target name (`producer-<idx>`).
    pub name: String,
    /// Topics the source emits to.
    pub topics: Vec<String>,
    /// Effective config (acks override and batching overrides applied).
    pub cfg: ProducerConfig,
    /// Smallest inter-record interval the source can sustain, when the
    /// spec implies one (`Rate`/`Items` intervals, `Poisson` mean,
    /// `RandomTopics` bitrate).
    pub min_interval: Option<SimDuration>,
    /// Largest payload the source emits, when the spec declares one.
    pub max_payload: Option<usize>,
}

/// One consumer stub.
#[derive(Debug, Clone)]
pub struct ConsumerFacts {
    /// Fault-target name (`consumer-<idx>`).
    pub name: String,
    /// Subscribed topics.
    pub topics: Vec<String>,
    /// Effective config (`with_transactional_sinks` read-committed fold
    /// applied).
    pub cfg: ConsumerConfig,
}

/// One stream job, flattened to its effective engine config and stage
/// layout.
#[derive(Debug, Clone)]
pub struct JobFacts {
    /// Job name (also its fault-target name).
    pub name: String,
    /// Source topics.
    pub sources: Vec<String>,
    /// Sink topic, when the sink is a topic.
    pub sink_topic: Option<String>,
    /// Store host, when the sink is a store.
    pub sink_store_host: Option<String>,
    /// Effective engine config: scenario-level checkpointing fallback,
    /// transactional-sink fold, acks override, and batching overrides all
    /// applied, exactly as `run` would.
    pub cfg: SpeConfig,
    /// True when the job uses the parallel stage machinery.
    pub parallel: bool,
    /// Stage count of the job's plan.
    pub n_stages: usize,
    /// Per-stage maximum instance count (covers initial parallelism and
    /// any rescale target).
    pub max_per: Vec<usize>,
    /// Fixed key-group count.
    pub key_groups: u32,
    /// Rescale-on-restart target parallelism, when set.
    pub rescale: Option<usize>,
}

/// What a fault event acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// A named process: an SPE job, a `job/stage/instance` stage
    /// instance, or a `producer-<idx>`/`consumer-<idx>` stub.
    Process(String),
    /// A broker by declaration index.
    Broker(u32),
    /// A store replica by global replica index.
    Store(u32),
    /// A link/node/routing action; the label names the affected host or
    /// `a-b` link so outage windows can be paired up.
    Net(String),
}

/// Crash/restart polarity of a fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Takes the target down.
    Crash,
    /// Brings the target back.
    Restart,
    /// Anything else (loss/latency/routing tweaks).
    Other,
}

/// One fault-plan event, normalized.
#[derive(Debug, Clone)]
pub struct FaultFacts {
    /// Scheduled time.
    pub at: SimTime,
    /// Target.
    pub target: FaultTarget,
    /// Polarity.
    pub kind: FaultKind,
}

/// The flattened scenario handed to the analyzer.
#[derive(Debug, Clone)]
pub struct ScenarioFacts {
    /// Scenario name (for messages only).
    pub name: String,
    /// Simulated run length.
    pub duration: SimTime,
    /// One-way latency of the default access link (round-trip estimates).
    pub link_latency: SimDuration,
    /// Controller config (election timing).
    pub controller: ControllerConfig,
    /// Declared topics plus the shuffle topics `run` would auto-declare.
    pub topics: Vec<TopicFacts>,
    /// `with_replicated_partitions` override, when set.
    pub partition_replication: Option<u32>,
    /// Brokers in declaration order (`CrashBroker(i)` indexes this).
    pub brokers: Vec<BrokerFacts>,
    /// Declared store hosts (replica 0 of each group).
    pub store_hosts: Vec<String>,
    /// Replicas per store declaration.
    pub store_replication: usize,
    /// Producer stubs.
    pub producers: Vec<ProducerFacts>,
    /// Consumer stubs.
    pub consumers: Vec<ConsumerFacts>,
    /// Stream jobs.
    pub jobs: Vec<JobFacts>,
    /// The fault plan, normalized and time-ordered.
    pub faults: Vec<FaultFacts>,
    /// Every process name a fault may legally target (job names, stage
    /// instances, stubs) — the typo-suggestion corpus.
    pub valid_process_targets: Vec<String>,
    /// Hosts of the explicit topology, when one was set (`None` means the
    /// star topology is generated and always fits).
    pub topology_hosts: Option<Vec<String>>,
    /// Hosts every component and controller needs to exist.
    pub required_hosts: Vec<String>,
    /// Scenario-level checkpoint interval, when checkpointing is on.
    pub checkpoint_interval: Option<SimDuration>,
    /// Store host backing scenario checkpoints, when store-backed.
    pub checkpoint_store_host: Option<String>,
    /// Store host backing broker durability, when store-backed.
    pub durability_store_host: Option<String>,
    /// Scenario-level retention age (per-broker configs are in
    /// [`BrokerFacts::cfg`], already folded).
    pub log_retention_age: Option<SimDuration>,
    /// `with_transactional_sinks` was called.
    pub transactional_sinks: bool,
}

impl ScenarioFacts {
    /// Largest effective replication factor across topics (1 when no
    /// topics are declared).
    pub fn max_replication(&self) -> u32 {
        self.topics.iter().map(|t| t.replication).max().unwrap_or(1)
    }

    /// True when any producer stub or topic-sink job produces with
    /// `acks=all`.
    pub fn any_acks_all(&self) -> bool {
        use s2g_proto::AckMode;
        self.producers.iter().any(|p| p.cfg.acks == AckMode::All)
            || self
                .jobs
                .iter()
                .any(|j| j.sink_topic.is_some() && j.cfg.producer.acks == AckMode::All)
    }
}
