//! Workspace determinism linter.
//!
//! ```text
//! cargo run -p s2g-analyze --bin s2g-lint -- [--deny] [--json] [--config lint.toml] [root]
//! ```
//!
//! Scans the workspace's non-test, non-vendor Rust sources for
//! determinism/safety hazards (see `s2g_analyze::lint`). With `--deny`,
//! exits nonzero when any deny-tier finding survives its escape comments —
//! the CI `lint-static` job runs exactly that.

use s2g_analyze::lint::{lint, LintConfig};
use std::path::PathBuf;

fn main() {
    let mut deny = false;
    let mut json = false;
    let mut config: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--config" => match args.next() {
                Some(p) => config = Some(PathBuf::from(p)),
                None => die("--config needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: s2g-lint [--deny] [--json] [--config lint.toml] [root]");
                return;
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag `{flag}`")),
            path => root = PathBuf::from(path),
        }
    }

    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        match std::fs::read_to_string(&config_path) {
            Ok(text) => match LintConfig::parse(&text) {
                Ok(cfg) => cfg,
                Err(e) => die(&e),
            },
            Err(e) => die(&format!("reading {}: {e}", config_path.display())),
        }
    } else {
        LintConfig::default()
    };

    let report = match lint(&root, &cfg) {
        Ok(r) => r,
        Err(e) => die(&format!("scanning {}: {e}", root.display())),
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "s2g-lint: {} file(s) scanned, {} finding(s) ({} deny)",
            report.files_scanned,
            report.findings.len(),
            report
                .findings
                .iter()
                .filter(|f| f.level == s2g_analyze::lint::LintLevel::Deny)
                .count()
        );
    }
    if deny && report.has_deny() {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("s2g-lint: {msg}");
    std::process::exit(2)
}
