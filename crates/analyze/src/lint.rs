//! The determinism source linter behind the `s2g-lint` binary.
//!
//! The build environment has no crates.io access, so this is a hand-rolled
//! **token scan**, not an AST pass (no `syn`, no dylint): comments and
//! string-literal contents are stripped, `#[cfg(test)]` blocks are
//! skipped, and the rules below match on what remains. That catches the
//! hazard classes that have actually bitten this codebase while staying
//! dependency-free; it also means a sufficiently creative alias can evade
//! it — the linter is a tripwire, not a proof.
//!
//! Rules (configured in `lint.toml`, deny/warn tiers per rule):
//!
//! * `wall-clock` — `SystemTime`/`Instant::now`/`UNIX_EPOCH`: real time
//!   observed inside a simulated timeline breaks same-seed reproducibility.
//! * `os-entropy` — `thread_rng`/`OsRng`/`from_entropy`/`getrandom`: OS
//!   randomness is unseeded by definition.
//! * `hash-iteration` — iteration over identifiers declared as
//!   `HashMap`/`HashSet` in sim-visible paths: `RandomState` makes the
//!   order differ per process, so any message/event sequence derived from
//!   it diverges across runs.
//! * `unchecked-narrowing` — `as u8`/`as u16`/`as u32` in codec paths:
//!   silent truncation corrupts framing; `try_from` makes it loud.
//! * `event-queue` — `BinaryHeap` in sim-visible paths: ad-hoc heap event
//!   queues bypass the calendar-queue scheduler (`crates/sim/src/queue.rs`)
//!   and its `(at, seq)` tie-break contract; the only sanctioned heap is
//!   the `reference-sched` differential oracle.
//!
//! A finding is suppressed by an escape comment on the same or preceding
//! line, which must carry a justification:
//!
//! ```text
//! // s2g-lint: allow(hash-iteration) — drained into a BTreeMap first
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Severity tier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Report but never fail the build.
    Warn,
    /// Fail `s2g-lint --deny`.
    Deny,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintLevel::Warn => write!(f, "warn"),
            LintLevel::Deny => write!(f, "deny"),
        }
    }
}

/// Per-rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Severity; `None` disables the rule.
    pub level: Option<LintLevel>,
    /// When non-empty, the rule only applies to files whose (forward-slash)
    /// path contains one of these substrings.
    pub paths: Vec<String>,
}

/// The linter configuration (`lint.toml`).
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories scanned, relative to the root passed to [`lint`].
    pub roots: Vec<String>,
    /// Path substrings excluded from every rule.
    pub exclude: Vec<String>,
    /// Per-rule settings, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

/// The five rule names, in catalog order.
pub const RULE_NAMES: [&str; 5] = [
    "wall-clock",
    "os-entropy",
    "hash-iteration",
    "unchecked-narrowing",
    "event-queue",
];

impl Default for LintConfig {
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        for name in RULE_NAMES {
            rules.insert(
                name.to_string(),
                RuleConfig {
                    level: Some(LintLevel::Deny),
                    paths: Vec::new(),
                },
            );
        }
        LintConfig {
            roots: vec!["crates".into(), "src".into()],
            exclude: vec![
                "vendor/".into(),
                "/target/".into(),
                "/tests/".into(),
                "/examples/".into(),
            ],
            rules,
        }
    }
}

impl LintConfig {
    /// Parses the `lint.toml` subset this linter uses: `[lint]` with
    /// `roots`/`exclude` string arrays, and `[rules.<name>]` sections with
    /// a `level` string (`"deny"`, `"warn"`, `"off"`) and an optional
    /// `paths` string array.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();
        // Fold multi-line arrays into one logical line (kept with the line
        // number of their first physical line, for error messages).
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let open = |s: &str| s.matches('[').count() > s.matches(']').count() && s.contains('=');
            match logical.last_mut() {
                Some((_, prev)) if open(prev) => {
                    prev.push(' ');
                    prev.push_str(trimmed);
                }
                _ => logical.push((i, trimmed.to_string())),
            }
        }
        for (i, raw) in logical {
            let line = raw.as_str();
            let err = |m: &str| format!("lint.toml line {}: {m}", i + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if section != "lint" && section.strip_prefix("rules.").is_none() {
                    return Err(err("unknown section"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("lint", "roots") => {
                    cfg.roots = parse_str_array(value).ok_or_else(|| err("bad array"))?
                }
                ("lint", "exclude") => {
                    cfg.exclude = parse_str_array(value).ok_or_else(|| err("bad array"))?;
                }
                (s, k) => {
                    let Some(rule) = s.strip_prefix("rules.") else {
                        return Err(err("key outside a known section"));
                    };
                    if !RULE_NAMES.contains(&rule) {
                        return Err(err("unknown rule"));
                    }
                    let entry = cfg.rules.get_mut(rule).expect("default rules are complete");
                    match k {
                        "level" => {
                            entry.level = match parse_str(value).as_deref() {
                                Some("deny") => Some(LintLevel::Deny),
                                Some("warn") => Some(LintLevel::Warn),
                                Some("off") => None,
                                _ => return Err(err("level must be deny|warn|off")),
                            };
                        }
                        "paths" => {
                            entry.paths = parse_str_array(value).ok_or_else(|| err("bad array"))?;
                        }
                        _ => return Err(err("unknown rule key")),
                    }
                }
            }
        }
        Ok(cfg)
    }
}

/// Parses `"a"` → `a`.
fn parse_str(v: &str) -> Option<String> {
    v.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// Parses `["a", "b"]` (possibly with a trailing comma).
fn parse_str_array(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item)?);
    }
    Some(out)
}

/// One finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// File, relative to the scanned root.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name.
    pub rule: String,
    /// Severity (from the config).
    pub level: LintLevel,
    /// What was matched and why it is a hazard.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}\n    {}",
            self.path, self.line, self.level, self.rule, self.message, self.snippet
        )
    }
}

/// Everything one scan produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in path/line order.
    pub findings: Vec<LintFinding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when a deny-tier finding is present.
    pub fn has_deny(&self) -> bool {
        self.findings.iter().any(|f| f.level == LintLevel::Deny)
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"files_scanned\":{},\"findings\":[", self.files_scanned);
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"path\":{},\"line\":{},\"rule\":{},\"level\":{},\"message\":{}}}",
                crate::json_str(&f.path),
                f.line,
                crate::json_str(&f.rule),
                crate::json_str(&f.level.to_string()),
                crate::json_str(&f.message),
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Scans every configured root under `root` and returns the findings.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn lint(root: &Path, cfg: &LintConfig) -> std::io::Result<LintReport> {
    let mut files: Vec<PathBuf> = Vec::new();
    for r in &cfg.roots {
        collect_rs_files(&root.join(r), &mut files)?;
    }
    files.sort();
    let mut report = LintReport::default();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        if cfg.exclude.iter().any(|e| rel.contains(e.as_str())) {
            continue;
        }
        let text = std::fs::read_to_string(f)?;
        report.files_scanned += 1;
        report.findings.extend(lint_source(&rel, &text, cfg));
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one source text. Pure — the self-tests feed fixture snippets
/// through this directly.
pub fn lint_source(path: &str, text: &str, cfg: &LintConfig) -> Vec<LintFinding> {
    let raw_lines: Vec<&str> = text.lines().collect();
    let code = strip_comments_and_strings(&raw_lines);
    let skip = test_block_lines(&raw_lines, &code);
    let allows: Vec<Option<AllowDirective>> = raw_lines.iter().map(|l| parse_allow(l)).collect();

    let mut findings: Vec<LintFinding> = Vec::new();
    let active = |rule: &str| -> Option<LintLevel> {
        let rc = cfg.rules.get(rule)?;
        let level = rc.level?;
        if !rc.paths.is_empty() && !rc.paths.iter().any(|p| path.contains(p.as_str())) {
            return None;
        }
        Some(level)
    };

    let mut push = |rule: &str, level: LintLevel, line_idx: usize, message: String| {
        // An allow on the finding's own line or the line above suppresses
        // it — but only when it names the rule and carries a reason.
        for idx in [Some(line_idx), line_idx.checked_sub(1)]
            .into_iter()
            .flatten()
        {
            if let Some(a) = &allows[idx] {
                if a.rules.iter().any(|r| r == rule) {
                    if a.justified {
                        return;
                    }
                    findings.push(LintFinding {
                        path: path.to_string(),
                        line: idx + 1,
                        rule: rule.to_string(),
                        level,
                        message: format!(
                            "allow({rule}) without a justification; write \
                             `// s2g-lint: allow({rule}) — <reason>`"
                        ),
                        snippet: raw_lines[idx].trim().to_string(),
                    });
                    return;
                }
            }
        }
        findings.push(LintFinding {
            path: path.to_string(),
            line: line_idx + 1,
            rule: rule.to_string(),
            level,
            message,
            snippet: raw_lines[line_idx].trim().to_string(),
        });
    };

    if let Some(level) = active("wall-clock") {
        for (i, line) in code.iter().enumerate() {
            if skip[i] {
                continue;
            }
            for needle in ["SystemTime", "Instant::now", "UNIX_EPOCH"] {
                if line.contains(needle) {
                    push(
                        "wall-clock",
                        level,
                        i,
                        format!("`{needle}` reads the wall clock; sim code must use `SimTime`"),
                    );
                    break;
                }
            }
        }
    }

    if let Some(level) = active("os-entropy") {
        for (i, line) in code.iter().enumerate() {
            if skip[i] {
                continue;
            }
            for needle in ["thread_rng", "OsRng", "from_entropy", "getrandom"] {
                if line.contains(needle) {
                    push(
                        "os-entropy",
                        level,
                        i,
                        format!(
                            "`{needle}` draws OS entropy; sim code must derive from the run seed"
                        ),
                    );
                    break;
                }
            }
        }
    }

    if let Some(level) = active("hash-iteration") {
        let tracked = hash_decls(&code, &skip);
        for (i, line) in code.iter().enumerate() {
            if skip[i] {
                continue;
            }
            if let Some((name, op)) = hash_iteration_on(line, &tracked) {
                push(
                    "hash-iteration",
                    level,
                    i,
                    format!(
                        "`{name}` is a HashMap/HashSet and `{op}` observes its nondeterministic \
                         order; use BTreeMap/BTreeSet or sort first"
                    ),
                );
            }
        }
    }

    if let Some(level) = active("unchecked-narrowing") {
        for (i, line) in code.iter().enumerate() {
            if skip[i] {
                continue;
            }
            for needle in [" as u8", " as u16", " as u32"] {
                // Require a word boundary after the type so ` as u32` does
                // not also match ` as u32x4`-style names.
                if let Some(pos) = line.find(needle) {
                    let after = line[pos + needle.len()..].chars().next();
                    if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                        push(
                            "unchecked-narrowing",
                            level,
                            i,
                            format!(
                                "unchecked `{}` narrowing in a codec path; use \
                                 `{}::try_from(..)` so truncation is loud",
                                needle.trim_start(),
                                needle.trim_start().trim_start_matches("as ")
                            ),
                        );
                        break;
                    }
                }
            }
        }
    }

    if let Some(level) = active("event-queue") {
        for (i, line) in code.iter().enumerate() {
            if skip[i] {
                continue;
            }
            if line.contains("BinaryHeap") {
                push(
                    "event-queue",
                    level,
                    i,
                    "`BinaryHeap` event queues bypass the calendar-queue scheduler's \
                     `(at, seq)` ordering contract; schedule through `s2g-sim` \
                     (`crates/sim/src/queue.rs`) instead"
                        .to_string(),
                );
            }
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule.clone()));
    findings
}

/// A parsed `s2g-lint: allow(...)` escape comment.
struct AllowDirective {
    rules: Vec<String>,
    justified: bool,
}

fn parse_allow(raw_line: &str) -> Option<AllowDirective> {
    let at = raw_line.find("s2g-lint: allow(")?;
    let rest = &raw_line[at + "s2g-lint: allow(".len()..];
    let close = rest.find(')')?;
    let rules = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_matches(|c: char| c.is_whitespace() || c == '-' || c == '—');
    Some(AllowDirective {
        rules,
        justified: !tail.is_empty(),
    })
}

/// Replaces comments and string-literal *contents* with spaces, line by
/// line, tracking block comments across lines. Keeping the quotes
/// themselves preserves column positions well enough for snippets while
/// guaranteeing pattern tables (like this linter's own) never self-match.
fn strip_comments_and_strings(lines: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(lines.len());
    let mut in_block_comment = false;
    for line in lines {
        let mut s = String::with_capacity(line.len());
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        let mut in_string = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_block_comment {
                if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '"' {
                        in_string = false;
                        s.push('"');
                    }
                    i += 1;
                }
                continue;
            }
            match c {
                '/' if bytes.get(i + 1) == Some(&'/') => break, // rest is comment
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    in_block_comment = true;
                    i += 2;
                }
                '"' => {
                    in_string = true;
                    s.push('"');
                    i += 1;
                }
                c => {
                    s.push(c);
                    i += 1;
                }
            }
        }
        out.push(s);
    }
    out
}

/// Marks the lines inside `#[cfg(test)] mod ... { ... }` blocks (and any
/// other `#[cfg(test)]`-attributed item with a brace block).
fn test_block_lines(raw_lines: &[&str], code: &[String]) -> Vec<bool> {
    let mut skip = vec![false; raw_lines.len()];
    let mut i = 0;
    while i < raw_lines.len() {
        if raw_lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the attributed item, then skip to
            // its matching close.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            'outer: while j < code.len() {
                skip[j] = true;
                for c in code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                // An attributed item with no block at all (e.g. a use
                // declaration ending in `;`) stops at the semicolon.
                if !opened && code[j].contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    skip
}

/// Collects identifiers declared with a HashMap/HashSet type or
/// constructor anywhere in the (non-test) file.
fn hash_decls(code: &[String], skip: &[bool]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, line) in code.iter().enumerate() {
        if skip[i] {
            continue;
        }
        for kind in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(kind) {
                let at = from + pos;
                from = at + kind.len();
                // Word boundary before (allowing a `::` path prefix).
                let before = &line[..at];
                let after = &line[at + kind.len()..];
                let is_type_use = after.starts_with('<');
                let is_ctor = after.starts_with("::");
                if !is_type_use && !is_ctor {
                    continue;
                }
                if is_type_use {
                    // `name: [path::]HashMap<` — the binding name sits
                    // before the last *single* colon (doubles are path
                    // separators).
                    let trimmed = before.trim_end();
                    let chars: Vec<char> = trimmed.chars().collect();
                    let single_colon = (0..chars.len()).rev().find(|&i| {
                        chars[i] == ':'
                            && chars.get(i.wrapping_sub(1)) != Some(&':')
                            && chars.get(i + 1) != Some(&':')
                    });
                    if let Some(ci) = single_colon {
                        let head: String = chars[..ci].iter().collect();
                        if let Some(name) = trailing_ident(head.trim_end()) {
                            push_unique(&mut names, name);
                        }
                    }
                } else if let Some(eq_head) = before.trim_end().strip_suffix('=') {
                    // `let [mut] name = HashMap::new()` / `= HashSet::from(..)`.
                    if let Some(name) = trailing_ident(eq_head.trim_end()) {
                        push_unique(&mut names, name);
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !names.contains(&name) {
        names.push(name);
    }
}

/// The identifier a string ends with, if any.
fn trailing_ident(s: &str) -> Option<String> {
    let end = s.len();
    let start = s
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map_or(0, |p| p + c_len(s, p));
    let ident = &s[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

fn c_len(s: &str, pos: usize) -> usize {
    s[pos..].chars().next().map_or(1, char::len_utf8)
}

/// Finds order-observing iteration over one of the tracked identifiers.
fn hash_iteration_on(line: &str, tracked: &[String]) -> Option<(String, String)> {
    const METHODS: [&str; 9] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
    ];
    for name in tracked {
        for m in METHODS {
            let needle = format!("{name}{m}");
            if let Some(pos) = line.find(&needle) {
                // Word boundary before the identifier: a path separator or
                // receiver dot is fine, another ident char is not.
                let ok = line[..pos]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
                if ok {
                    return Some((name.clone(), m.trim_end_matches('(').to_string()));
                }
            }
        }
    }
    // `for x in [&][mut ]receiver.name {` — the expression between `in`
    // and the block, stripped of borrows, ending in a tracked name.
    let for_pos = find_word(line, "for")?;
    let in_pos = find_word(&line[for_pos..], "in").map(|p| p + for_pos)?;
    let expr = line[in_pos + 2..]
        .split(['{', ';'])
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    if expr.contains('(') || expr.contains("..") || expr.is_empty() {
        return None;
    }
    let last = expr.rsplit('.').next().unwrap_or(expr);
    let last = last.rsplit("::").next().unwrap_or(last);
    tracked
        .iter()
        .find(|n| n.as_str() == last)
        .map(|n| (n.clone(), "for .. in".to_string()))
}

/// Finds `word` delimited by non-ident chars.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let at = from + pos;
        let before_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        let after_ok = line[at + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all() -> LintConfig {
        LintConfig::default()
    }

    #[test]
    fn flags_wall_clock_and_entropy() {
        let src = "fn f() {\n    let t = std::time::SystemTime::now();\n    let r = rand::thread_rng();\n}\n";
        let f = lint_source("x.rs", src, &cfg_all());
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"wall-clock"), "{f:?}");
        assert!(rules.contains(&"os-entropy"), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_with_reason_only() {
        let with_reason =
            "// s2g-lint: allow(wall-clock) — boot banner only, outside the sim\nlet t = SystemTime::now();\n";
        assert!(lint_source("x.rs", with_reason, &cfg_all()).is_empty());
        let without_reason = "// s2g-lint: allow(wall-clock)\nlet t = SystemTime::now();\n";
        let f = lint_source("x.rs", without_reason, &cfg_all());
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("justification"), "{f:?}");
    }

    #[test]
    fn clean_file_is_clean() {
        let src = "fn main() {\n    let m: std::collections::BTreeMap<u32, u32> = Default::default();\n    for (k, v) in &m { let _ = (k, v); }\n}\n";
        assert!(lint_source("x.rs", src, &cfg_all()).is_empty());
    }

    #[test]
    fn flags_hash_iteration_by_decl_and_for_loop() {
        let src = "struct S { pending: HashMap<u64, u32> }\nfn f(s: &S) {\n    for v in s.pending.values() { drop(v); }\n}\nfn g() {\n    let mut seen = HashSet::new();\n    for x in &seen { drop(x); }\n    seen.insert(1);\n}\n";
        let f = lint_source("x.rs", src, &cfg_all());
        let lines: Vec<usize> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 7], "{f:?}");
    }

    #[test]
    fn entry_and_get_on_hashmap_are_fine() {
        let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.entry(1).or_insert(2);\n    let _ = m.get(&1);\n    m.insert(3, 4);\n}\n";
        assert!(lint_source("x.rs", src, &cfg_all()).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = SystemTime::now(); }\n}\n";
        assert!(lint_source("x.rs", src, &cfg_all()).is_empty());
    }

    #[test]
    fn string_literals_and_comments_do_not_match() {
        let src = "fn f() {\n    let s = \"SystemTime::now\";\n    // SystemTime in prose\n}\n";
        assert!(lint_source("x.rs", src, &cfg_all()).is_empty());
    }

    #[test]
    fn narrowing_only_in_configured_paths() {
        let mut cfg = cfg_all();
        cfg.rules.get_mut("unchecked-narrowing").unwrap().paths = vec!["src/codec.rs".to_string()];
        let src = "fn f(n: usize) -> u32 { n as u32 }\n";
        assert_eq!(lint_source("crates/proto/src/codec.rs", src, &cfg).len(), 1);
        assert!(lint_source("crates/proto/src/hash.rs", src, &cfg).is_empty());
    }

    #[test]
    fn flags_binary_heap_event_queues() {
        let src = "use std::collections::BinaryHeap;\nstruct Q { heap: BinaryHeap<u64> }\n";
        let f = lint_source("x.rs", src, &cfg_all());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "event-queue"), "{f:?}");
        let escaped = "// s2g-lint: allow(event-queue) — reference-sched differential oracle\nuse std::collections::BinaryHeap;\n";
        assert!(lint_source("x.rs", escaped, &cfg_all()).is_empty());
    }

    #[test]
    fn parses_lint_toml() {
        let toml = "# comment\n[lint]\nroots = [\"crates\"]\nexclude = [\"vendor/\"]\n\n[rules.wall-clock]\nlevel = \"warn\"\n\n[rules.unchecked-narrowing]\nlevel = \"deny\"\npaths = [\"src/codec.rs\", \"src/batch.rs\"]\n";
        let cfg = LintConfig::parse(toml).unwrap();
        assert_eq!(cfg.roots, vec!["crates"]);
        assert_eq!(cfg.rules["wall-clock"].level, Some(LintLevel::Warn));
        assert_eq!(cfg.rules["unchecked-narrowing"].paths.len(), 2);
        assert!(LintConfig::parse("[rules.nope]\nlevel = \"deny\"\n").is_err());
    }
}
