//! The scenario feasibility ruleset.
//!
//! Each rule reads the flattened [`ScenarioFacts`] and pushes coded
//! diagnostics. `Deny` rules reject scenarios that cannot mean what their
//! author intended; `Warn` rules encode tuning traps where the run would
//! start but the outcome would mislead (the catalog with rationale per
//! code lives in `docs/analysis.md`).

use crate::facts::{FaultKind, FaultTarget, ScenarioFacts};
use crate::{nearest, AnalysisReport, Diagnostic, Level};
use s2g_proto::AckMode;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::CheckpointMode;

/// Prefix of the generated shuffle-topic namespace.
const SHUFFLE_PREFIX: &str = "__shuffle.";

/// Runs every rule over `facts`.
pub fn analyze(facts: &ScenarioFacts) -> AnalysisReport {
    let mut out: Vec<Diagnostic> = Vec::new();
    rule_no_brokers(facts, &mut out);
    rule_unknown_topics(facts, &mut out);
    rule_store_hosts(facts, &mut out);
    rule_duplicate_jobs(facts, &mut out);
    rule_topology_hosts(facts, &mut out);
    rule_fault_targets(facts, &mut out);
    rule_key_groups(facts, &mut out);
    rule_shuffle_namespace(facts, &mut out);
    rule_replication_bounds(facts, &mut out);
    rule_min_insync(facts, &mut out);
    rule_transactional_sinks(facts, &mut out);
    rule_heartbeat_sessions(facts, &mut out);
    rule_election_window(facts, &mut out);
    rule_replicated_without_acks_all(facts, &mut out);
    rule_acks_all_unbatched(facts, &mut out);
    rule_retention_vs_offsets(facts, &mut out);
    rule_batch_never_fills(facts, &mut out);
    rule_read_committed_without_txn(facts, &mut out);
    rule_fault_after_end(facts, &mut out);
    rule_internal_topic_clients(facts, &mut out);
    rule_replica_lag(facts, &mut out);
    rule_store_crash_durability(facts, &mut out);
    rule_restart_without_crash(facts, &mut out);
    AnalysisReport::new(out)
}

/// S2G001 (deny): clients exist but no broker does.
fn rule_no_brokers(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let has_clients = !f.producers.is_empty() || !f.consumers.is_empty() || !f.jobs.is_empty();
    if has_clients && f.brokers.is_empty() {
        out.push(Diagnostic::new(
            "S2G001",
            Level::Deny,
            "scenario has producers/consumers/jobs but no brokers",
            &["broker"],
            "declare at least one broker with `.broker(host)`",
        ));
    }
}

/// S2G002 (deny): a component references an undeclared topic.
fn rule_unknown_topics(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let declared: Vec<&str> = f.topics.iter().map(|t| t.name.as_str()).collect();
    let check = |component: &str, who: &str, topic: &str, out: &mut Vec<Diagnostic>| {
        if !declared.contains(&topic) {
            let hint = nearest(topic, declared.iter().copied())
                .map(|n| format!("did you mean `{n}`? otherwise "))
                .unwrap_or_default();
            out.push(Diagnostic::new(
                "S2G002",
                Level::Deny,
                format!("{component} `{who}` references undeclared topic `{topic}`"),
                &["topic"],
                format!("{hint}declare it with `.topic(TopicSpec::new(\"{topic}\"))`"),
            ));
        }
    };
    for p in &f.producers {
        for t in &p.topics {
            check("producer", &p.name, t, out);
        }
    }
    for c in &f.consumers {
        for t in &c.topics {
            check("consumer", &c.name, t, out);
        }
    }
    for j in &f.jobs {
        for t in &j.sources {
            check("SPE job source", &j.name, t, out);
        }
        if let Some(t) = &j.sink_topic {
            check("SPE job sink", &j.name, t, out);
        }
    }
}

/// S2G003 (deny): a store-backed sink/checkpoint/durability host has no
/// store declared on it.
fn rule_store_hosts(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let check = |what: &str, host: &str, knob: &str, out: &mut Vec<Diagnostic>| {
        if !f.store_hosts.iter().any(|h| h == host) {
            out.push(Diagnostic::new(
                "S2G003",
                Level::Deny,
                format!("{what} references host `{host}`, which has no store server"),
                &[knob],
                format!("declare one with `.store(\"{host}\")`"),
            ));
        }
    };
    for j in &f.jobs {
        if let Some(h) = &j.sink_store_host {
            check(&format!("SPE job `{}` store sink", j.name), h, "store", out);
        }
    }
    if let Some(h) = &f.checkpoint_store_host {
        check("store-backed checkpointing", h, "with_checkpointing", out);
    }
    if let Some(h) = &f.durability_store_host {
        check(
            "store-backed broker durability",
            h,
            "with_broker_durability",
            out,
        );
    }
}

/// S2G004 (deny): two SPE jobs share a name.
fn rule_duplicate_jobs(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let mut seen: Vec<&str> = Vec::new();
    for j in &f.jobs {
        if seen.contains(&j.name.as_str()) {
            out.push(Diagnostic::new(
                "S2G004",
                Level::Deny,
                format!("duplicate SPE job name `{}`", j.name),
                &["spe_job"],
                "job names double as fault targets and shuffle-topic prefixes; rename one",
            ));
        } else {
            seen.push(&j.name);
        }
    }
}

/// S2G005 (deny): the explicit topology is missing a required host.
fn rule_topology_hosts(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let Some(topo) = &f.topology_hosts else {
        return;
    };
    for h in &f.required_hosts {
        if !topo.contains(h) {
            let hint = nearest(h, topo.iter().map(String::as_str))
                .map(|n| format!("nearest declared host is `{n}`; "))
                .unwrap_or_default();
            out.push(Diagnostic::new(
                "S2G005",
                Level::Deny,
                format!("explicit topology has no host `{h}`, but a component or controller is placed there"),
                &["topology"],
                format!("{hint}add the host (and a link) to the topology"),
            ));
        }
    }
}

/// S2G006/S2G007/S2G008 (deny): fault-plan targets that name nothing.
fn rule_fault_targets(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for ev in &f.faults {
        if ev.kind == FaultKind::Other {
            continue;
        }
        match &ev.target {
            FaultTarget::Process(n) => {
                if !f.valid_process_targets.iter().any(|t| t == n) {
                    let hint = nearest(n, f.valid_process_targets.iter().map(String::as_str))
                        .map(|t| format!("did you mean `{t}`? "))
                        .unwrap_or_default();
                    out.push(Diagnostic::new(
                        "S2G006",
                        Level::Deny,
                        format!(
                            "fault plan targets process `{n}`, which is neither an SPE job, \
                             a `<job>/<stage>/<instance>` (or `<job>/<instance>`) stage \
                             instance, nor a `producer-<idx>`/`consumer-<idx>` stub"
                        ),
                        &["crash_process", "crash_restart"],
                        format!("{hint}valid targets follow the job/stage/instance grammar"),
                    ));
                }
            }
            FaultTarget::Broker(b) => {
                if *b as usize >= f.brokers.len() {
                    out.push(Diagnostic::new(
                        "S2G007",
                        Level::Deny,
                        format!(
                            "fault plan targets broker b{b}, but only {} broker(s) are declared",
                            f.brokers.len()
                        ),
                        &["crash_restart_broker"],
                        "broker indices follow declaration order, starting at 0",
                    ));
                }
            }
            FaultTarget::Store(r) => {
                let bound = f.store_hosts.len() * f.store_replication;
                if *r as usize >= bound {
                    out.push(Diagnostic::new(
                        "S2G008",
                        Level::Deny,
                        format!(
                            "fault plan targets store replica {r}, but only {bound} exist \
                             ({} store(s) x replication {})",
                            f.store_hosts.len(),
                            f.store_replication
                        ),
                        &["crash_restart_store", "store_replication"],
                        "replica indices are global: declaration order x replication factor",
                    ));
                }
            }
            FaultTarget::Net(_) => {}
        }
    }
}

/// S2G009 (deny): key groups below a stage's parallelism (or rescale
/// target) — some instance would own zero groups.
fn rule_key_groups(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for j in &f.jobs {
        if !j.parallel {
            continue;
        }
        let max_par = j.max_per.iter().copied().max().unwrap_or(1);
        if (j.key_groups as usize) < max_par {
            out.push(Diagnostic::new(
                "S2G009",
                Level::Deny,
                format!(
                    "job `{}` has key_groups {} < its largest stage parallelism {max_par}{}",
                    j.name,
                    j.key_groups,
                    if j.rescale.is_some_and(|r| r == max_par) {
                        " (the rescale_on_restart target)"
                    } else {
                        ""
                    }
                ),
                &["key_groups", "parallelism", "rescale_on_restart"],
                format!("raise key_groups to at least {max_par}; whole key groups are the unit of state distribution"),
            ));
        }
    }
}

/// S2G010 (deny): a declared topic squats the generated `__shuffle.`
/// namespace — its partition count would not match the key-group routing.
fn rule_shuffle_namespace(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for t in f.topics.iter().filter(|t| !t.shuffle) {
        if !t.name.starts_with(SHUFFLE_PREFIX) {
            continue;
        }
        let collides = f.topics.iter().any(|g| g.shuffle && g.name == t.name);
        let detail = if collides {
            "collides with the shuffle topic generated for that job and stage \
             (shuffle partitions must equal the job's key_groups)"
        } else {
            "squats the reserved shuffle namespace"
        };
        out.push(Diagnostic::new(
            "S2G010",
            Level::Deny,
            format!("declared topic `{}` {detail}", t.name),
            &["topic", "parallelism"],
            "rename the topic; `__shuffle.<job>.<stage>` topics are declared automatically",
        ));
    }
}

/// S2G011: a replication factor above the broker count — deny when
/// declared per-topic (the assignment cannot exist), warn when the
/// scenario-wide override was silently capped.
fn rule_replication_bounds(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.brokers.is_empty() {
        return; // S2G001 covers clientful broker-less scenarios.
    }
    let nb = f.brokers.len() as u32;
    for t in &f.topics {
        if f.partition_replication.is_none() && t.declared_replication > nb {
            out.push(Diagnostic::new(
                "S2G011",
                Level::Deny,
                format!(
                    "topic `{}` declares replication {} but only {nb} broker(s) exist",
                    t.name, t.declared_replication
                ),
                &["topic", "broker"],
                format!("declare more brokers or lower the factor to at most {nb}"),
            ));
        }
    }
    if let Some(rf) = f.partition_replication {
        if rf > nb {
            out.push(Diagnostic::new(
                "S2G011",
                Level::Warn,
                format!(
                    "with_replicated_partitions({rf}) exceeds the broker count {nb}; \
                     the factor is capped at {nb}"
                ),
                &["with_replicated_partitions", "broker"],
                "declare more brokers if you meant the higher factor",
            ));
        }
    }
}

/// S2G012: `min_insync_replicas` above the largest replication factor —
/// with an `acks=all` producer every produce fails (deny); without one
/// the knob is inert (warn).
fn rule_min_insync(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let max_rf = f.max_replication();
    for b in &f.brokers {
        if b.cfg.min_insync_replicas > max_rf {
            let acks_all = f.any_acks_all();
            out.push(Diagnostic::new(
                "S2G012",
                if acks_all { Level::Deny } else { Level::Warn },
                format!(
                    "broker on `{}` requires min_insync_replicas {} but the largest \
                     replication factor is {max_rf}{}",
                    b.host,
                    b.cfg.min_insync_replicas,
                    if acks_all {
                        "; every acks=all produce will fail NotEnoughReplicas"
                    } else {
                        " (inert until a producer uses acks=all)"
                    }
                ),
                &["min_insync_replicas", "with_replicated_partitions", "topic"],
                format!(
                    "raise the replication factor to at least {} or lower min_insync_replicas",
                    b.cfg.min_insync_replicas
                ),
            ));
        }
    }
}

/// S2G013 (deny): a transactional topic sink without exactly-once
/// checkpointing — the engine silently ignores the knob and the sink
/// degrades to plain visibility.
fn rule_transactional_sinks(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for j in &f.jobs {
        if !j.cfg.transactional_sink || j.sink_topic.is_none() {
            continue;
        }
        let ok = j
            .cfg
            .checkpoint
            .is_some_and(|c| c.mode == CheckpointMode::ExactlyOnce);
        if !ok {
            let why = match j.cfg.checkpoint {
                None => "no checkpointing is configured".to_string(),
                Some(c) => format!("checkpoint mode is {:?}, not ExactlyOnce", c.mode),
            };
            out.push(Diagnostic::new(
                "S2G013",
                Level::Deny,
                format!(
                    "job `{}` requests a transactional sink but {why}; transactions commit \
                     per checkpoint epoch, so the knob would be silently ignored",
                    j.name
                ),
                &["with_transactional_sinks", "with_checkpointing", "checkpoint"],
                "enable exactly-once checkpointing (e.g. `.with_checkpointing(CheckpointCfg::exactly_once(interval))`)",
            ));
        }
    }
}

/// S2G014 (deny): a heartbeat interval at or above the session timeout
/// judging it — the session expires between heartbeats, forever.
fn rule_heartbeat_sessions(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for b in &f.brokers {
        if b.cfg.heartbeat_interval >= f.controller.session_timeout {
            out.push(Diagnostic::new(
                "S2G014",
                Level::Deny,
                format!(
                    "broker on `{}` heartbeats every {} but the controller expires sessions \
                     after {}; every broker flaps dead/alive forever",
                    b.host, b.cfg.heartbeat_interval, f.controller.session_timeout
                ),
                &["heartbeat_interval", "controller_config"],
                "keep the controller session_timeout at 2-3x the broker heartbeat_interval",
            ));
        }
    }
    for c in &f.consumers {
        if !c.cfg.group_membership {
            continue;
        }
        for b in &f.brokers {
            if c.cfg.group_heartbeat_interval >= b.cfg.group_session_timeout {
                out.push(Diagnostic::new(
                    "S2G014",
                    Level::Deny,
                    format!(
                        "consumer `{}` heartbeats its group every {} but broker `{}` evicts \
                         members after {}; the member is evicted between heartbeats",
                        c.name, c.cfg.group_heartbeat_interval, b.host, b.cfg.group_session_timeout
                    ),
                    &["group_heartbeat_interval", "group_session_timeout"],
                    "keep group_session_timeout at 2-3x the member heartbeat interval",
                ));
                break;
            }
        }
    }
}

/// S2G015 (warn): a broker outage shorter than the controller's failure
/// detection — the default 6 s session timeout waits out a shorter
/// outage, no election happens, and the replicated run silently shows
/// nothing of failover.
fn rule_election_window(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.max_replication() < 2 {
        return;
    }
    let detection = f.controller.session_timeout + f.controller.session_check_interval;
    for (target, down, up) in down_windows(f) {
        let label = match target {
            FaultTarget::Broker(b) => format!("broker b{b}"),
            FaultTarget::Net(n) if f.brokers.iter().any(|b| b.host == n) => {
                format!("broker host `{n}`")
            }
            _ => continue,
        };
        let window = up.saturating_since(down);
        if window < detection {
            out.push(Diagnostic::new(
                "S2G015",
                Level::Warn,
                format!(
                    "{label} is down {window} (t={down}..{up}) but failure detection needs \
                     {detection} (session_timeout + session_check_interval); the controller \
                     waits out the outage and no leader election happens",
                    ),
                &["controller_config", "crash_restart_broker", "transient_disconnect"],
                format!("shorten session_timeout below {window} or lengthen the outage past {detection}"),
            ));
        }
    }
}

/// S2G016 (warn): replicated partitions with every producer on
/// `acks=leader` — replicas trail the leader and a failover can lose
/// acknowledged records, which defeats the point of replicating.
fn rule_replicated_without_acks_all(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.max_replication() < 2 {
        return;
    }
    let any_producer = !f.producers.is_empty() || f.jobs.iter().any(|j| j.sink_topic.is_some());
    if any_producer && !f.any_acks_all() {
        out.push(Diagnostic::new(
            "S2G016",
            Level::Warn,
            format!(
                "partitions replicate {}x but every producer uses acks=leader; a failover \
                 can drop acknowledged records",
                f.max_replication()
            ),
            &["with_acks", "with_replicated_partitions"],
            "produce with `.with_acks(AckMode::All)` to make acknowledgements cover the ISR",
        ));
    }
}

/// S2G017 (warn): an unbatched `acks=all` producer whose inter-record
/// interval is below the replication round trip — every record queues
/// behind the previous one's follower fetch and latency collapses.
fn rule_acks_all_unbatched(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.max_replication() < 2 {
        return;
    }
    let min_fetch = f
        .brokers
        .iter()
        .map(|b| b.cfg.replica_fetch_interval)
        .min()
        .unwrap_or(SimDuration::ZERO);
    let round_trip = min_fetch + f.link_latency * 4;
    for p in &f.producers {
        if p.cfg.acks != AckMode::All || p.cfg.batch_max_records > 1 {
            continue;
        }
        if let Some(interval) = p.min_interval {
            if interval < round_trip {
                out.push(Diagnostic::new(
                    "S2G017",
                    Level::Warn,
                    format!(
                        "producer `{}` sends a record every {interval} unbatched at acks=all, \
                         but one produce takes ~{round_trip} (replica fetch + acks round trip); \
                         the send queue grows without bound",
                        p.name
                    ),
                    &["with_batching", "with_acks", "replica_fetch_interval"],
                    format!("re-enable batching, slow the source past {round_trip}, or shorten replica_fetch_interval"),
                ));
            }
        }
    }
}

/// S2G018 (warn): retention tight enough to advance the log start past
/// offsets a recovering consumer/checkpoint would resume from.
fn rule_retention_vs_offsets(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let age = f
        .brokers
        .iter()
        .filter_map(|b| b.cfg.log_retention_age)
        .min();
    let Some(age) = age else { return };
    let has_committed = f.consumers.iter().any(|c| c.cfg.group.is_some())
        || f.jobs.iter().any(|j| j.cfg.checkpoint.is_some());
    if !has_committed {
        return;
    }
    let mut hazard: Option<(SimDuration, String)> = None;
    let mut consider = |window: SimDuration, what: String| {
        if window > age && hazard.as_ref().is_none_or(|(w, _)| window > *w) {
            hazard = Some((window, what));
        }
    };
    for j in &f.jobs {
        if let Some(c) = j.cfg.checkpoint {
            consider(
                c.interval,
                format!("job `{}`'s checkpoint interval", j.name),
            );
        }
    }
    for (target, down, up) in down_windows(f) {
        let label = match target {
            FaultTarget::Process(n) => format!("`{n}`'s crash window"),
            FaultTarget::Broker(b) => format!("broker b{b}'s crash window"),
            _ => continue,
        };
        consider(up.saturating_since(down), label);
    }
    if let Some((window, what)) = hazard {
        out.push(Diagnostic::new(
            "S2G018",
            Level::Warn,
            format!(
                "log retention age {age} is shorter than {what} ({window}); cleanup can \
                 advance the log start past committed offsets and a recovery replays from \
                 a truncated log"
            ),
            &["with_log_retention_age", "with_checkpointing", "fault plan"],
            format!("keep retention above {window}, or accept the offset reset"),
        ));
    }
}

/// S2G019 (warn): a batch byte budget below one record — batching is
/// requested but every batch degenerates to a single record.
fn rule_batch_never_fills(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for p in &f.producers {
        if p.cfg.batch_max_records <= 1 {
            continue; // batching deliberately off
        }
        if let Some(payload) = p.max_payload {
            if p.cfg.batch_max_bytes < payload {
                out.push(Diagnostic::new(
                    "S2G019",
                    Level::Warn,
                    format!(
                        "producer `{}` caps batches at {} bytes but emits {payload}-byte \
                         records; every batch overflows to a single record and the linger \
                         delay buys nothing",
                        p.name, p.cfg.batch_max_bytes
                    ),
                    &["batch_max_bytes", "with_batch_max_bytes"],
                    format!("raise batch_max_bytes past {payload} or disable batching explicitly"),
                ));
            }
        }
    }
}

/// S2G020 (warn): read-committed isolation with no transactional
/// producer anywhere — the isolation level is inert.
fn rule_read_committed_without_txn(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let any_txn = f.transactional_sinks || f.jobs.iter().any(|j| j.cfg.transactional_sink);
    if any_txn {
        return;
    }
    for c in &f.consumers {
        if c.cfg.read_committed {
            out.push(Diagnostic::new(
                "S2G020",
                Level::Warn,
                format!(
                    "consumer `{}` reads with read-committed isolation but no producer in \
                     the scenario is transactional; the isolation level changes nothing",
                    c.name
                ),
                &["read_committed", "with_transactional_sinks"],
                "enable `.with_transactional_sinks()` on the producing jobs, or drop the isolation level",
            ));
        }
    }
}

/// S2G021 (warn): a fault scheduled at or after the run ends.
fn rule_fault_after_end(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    for ev in &f.faults {
        if ev.at >= f.duration {
            let label = match &ev.target {
                FaultTarget::Process(n) => format!("process `{n}`"),
                FaultTarget::Broker(b) => format!("broker b{b}"),
                FaultTarget::Store(r) => format!("store replica {r}"),
                FaultTarget::Net(n) => format!("network ({n})"),
            };
            out.push(Diagnostic::new(
                "S2G021",
                Level::Warn,
                format!(
                    "fault on {label} is scheduled at t={} but the run ends at t={}; it never fires",
                    ev.at, f.duration
                ),
                &["duration", "fault plan"],
                "lengthen the run or move the fault earlier",
            ));
        }
    }
}

/// S2G022 (warn): a client stub or job attached to a generated
/// `__shuffle.` topic — internal framing records, not application data.
fn rule_internal_topic_clients(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let check = |who: String, topic: &str, out: &mut Vec<Diagnostic>| {
        if topic.starts_with(SHUFFLE_PREFIX) {
            out.push(Diagnostic::new(
                "S2G022",
                Level::Warn,
                format!(
                    "{who} attaches to internal shuffle topic `{topic}`; its records are \
                     keyed intermediate frames owned by the job's stages"
                ),
                &["producer", "consumer", "spe_job"],
                "read the job's sink topic instead of its shuffle internals",
            ));
        }
    };
    for p in &f.producers {
        for t in &p.topics {
            check(format!("producer `{}`", p.name), t, out);
        }
    }
    for c in &f.consumers {
        for t in &c.topics {
            check(format!("consumer `{}`", c.name), t, out);
        }
    }
    for j in &f.jobs {
        for t in &j.sources {
            check(format!("SPE job `{}`", j.name), t, out);
        }
    }
}

/// S2G023 (warn): a replica lag bound at or below the fetch interval —
/// followers are judged out of sync between their own fetches and the
/// ISR flaps.
fn rule_replica_lag(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.max_replication() < 2 {
        return;
    }
    for b in &f.brokers {
        if b.cfg.replica_lag_max < b.cfg.replica_fetch_interval * 2 {
            out.push(Diagnostic::new(
                "S2G023",
                Level::Warn,
                format!(
                    "broker on `{}` ejects followers lagging {} but they only fetch every \
                     {}; the ISR flaps on scheduling noise",
                    b.host, b.cfg.replica_lag_max, b.cfg.replica_fetch_interval
                ),
                &["replica_lag_max", "replica_fetch_interval"],
                "keep replica_lag_max at several fetch intervals",
            ));
        }
    }
}

/// S2G024 (warn): crashing the only replica of a store that backs
/// checkpoints or broker durability — the durability tier itself goes
/// down with it.
fn rule_store_crash_durability(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    if f.store_replication > 1 {
        return;
    }
    for ev in &f.faults {
        let (FaultTarget::Store(r), FaultKind::Crash) = (&ev.target, ev.kind) else {
            continue;
        };
        let Some(host) = f.store_hosts.get(*r as usize) else {
            continue; // S2G008 already denies out-of-range replicas
        };
        let mut backs: Vec<&str> = Vec::new();
        if f.checkpoint_store_host.as_deref() == Some(host.as_str()) {
            backs.push("checkpoints");
        }
        if f.durability_store_host.as_deref() == Some(host.as_str()) {
            backs.push("broker durability");
        }
        if !backs.is_empty() {
            out.push(Diagnostic::new(
                "S2G024",
                Level::Warn,
                format!(
                    "crashing store replica {r} (host `{host}`) takes down {} with it and \
                     the store has no other replica",
                    backs.join(" and ")
                ),
                &["store_replication", "crash_store"],
                "replicate the store (`.store_replication(2)`) so the durability tier survives",
            ));
        }
    }
}

/// S2G025 (warn): a restart of a target that never crashed — a no-op
/// that usually means a typo'd or missing crash event.
fn rule_restart_without_crash(f: &ScenarioFacts, out: &mut Vec<Diagnostic>) {
    let mut crashed: Vec<&FaultTarget> = Vec::new();
    for ev in &f.faults {
        match ev.kind {
            FaultKind::Crash => crashed.push(&ev.target),
            FaultKind::Restart => {
                if !crashed.contains(&&ev.target) {
                    let label = match &ev.target {
                        FaultTarget::Process(n) => format!("process `{n}`"),
                        FaultTarget::Broker(b) => format!("broker b{b}"),
                        FaultTarget::Store(r) => format!("store replica {r}"),
                        FaultTarget::Net(n) => format!("network ({n})"),
                    };
                    out.push(Diagnostic::new(
                        "S2G025",
                        Level::Warn,
                        format!(
                            "fault plan restarts {label} at t={} but never crashed it first; \
                             the restart is a no-op",
                            ev.at
                        ),
                        &["fault plan"],
                        "schedule the matching crash/down event before the restart",
                    ));
                }
            }
            FaultKind::Other => {}
        }
    }
}

/// Crash→restart windows per target, pairing each down event with the
/// next up event for the same target.
fn down_windows(f: &ScenarioFacts) -> Vec<(FaultTarget, SimTime, SimTime)> {
    let mut out = Vec::new();
    let mut open: Vec<(FaultTarget, SimTime)> = Vec::new();
    for ev in &f.faults {
        match ev.kind {
            FaultKind::Crash => open.push((ev.target.clone(), ev.at)),
            FaultKind::Restart => {
                if let Some(pos) = open.iter().position(|(t, _)| *t == ev.target) {
                    let (t, down) = open.remove(pos);
                    out.push((t, down, ev.at));
                }
            }
            FaultKind::Other => {}
        }
    }
    out
}
