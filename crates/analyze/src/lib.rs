//! Static analysis for stream2gym.
//!
//! Two layers share this crate:
//!
//! * **Scenario analyzer** — [`analyze`] runs a cross-subsystem feasibility
//!   ruleset over a [`ScenarioFacts`] view of a scenario *before* any sim
//!   time elapses, emitting coded [`Diagnostic`]s (`S2G0xx`). `Deny`
//!   diagnostics describe scenarios that cannot mean what their author
//!   intended (the run would fail or silently misconfigure); `Warn`
//!   diagnostics encode tuning traps learned the hard way (an election
//!   timer that waits out the outage it was meant to detect, an `acks=all`
//!   producer whose unbatched interval collapses into queueing, ...).
//!   `s2g_core::Scenario::analyze` builds the facts and calls this.
//! * **Determinism source linter** — [`mod@lint`] token-scans workspace
//!   sources for hazards the type system cannot catch: wall-clock reads,
//!   OS entropy, `HashMap` iteration in sim-visible crates, unchecked
//!   `as` narrowing in codec modules. The `s2g-lint` binary wraps it for
//!   CI (`cargo run -p s2g-analyze --bin s2g-lint -- --deny`).

#![deny(missing_docs)]

use std::fmt;

pub mod facts;
pub mod lint;
pub mod rules;

pub use facts::{
    BrokerFacts, ConsumerFacts, FaultFacts, FaultKind, FaultTarget, JobFacts, ProducerFacts,
    ScenarioFacts, TopicFacts,
};
pub use lint::{lint, LintConfig, LintFinding, LintLevel, LintReport};
pub use rules::analyze;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A tuning trap: the run will start, but the outcome will likely not
    /// be what the scenario's author intended.
    Warn,
    /// A misconfiguration: `Scenario::run` refuses to start unless
    /// explicitly overridden.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Warn => write!(f, "warn"),
            Level::Deny => write!(f, "deny"),
        }
    }
}

/// One coded finding from the scenario analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`"S2G001"`..); the catalog lives in `docs/analysis.md`.
    pub code: &'static str,
    /// Severity tier.
    pub level: Level,
    /// What is wrong, with the offending values inlined.
    pub message: String,
    /// The scenario knobs involved (builder-method names), most specific
    /// first.
    pub knobs: Vec<String>,
    /// A concrete way out.
    pub suggestion: String,
}

impl Diagnostic {
    /// Creates a diagnostic; knobs are the builder methods involved.
    pub fn new(
        code: &'static str,
        level: Level,
        message: impl Into<String>,
        knobs: &[&str],
        suggestion: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            level,
            message: message.into(),
            knobs: knobs.iter().map(|k| (*k).to_string()).collect(),
            suggestion: suggestion.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.code, self.level, self.message)?;
        if !self.suggestion.is_empty() {
            write!(f, " (fix: {})", self.suggestion)?;
        }
        Ok(())
    }
}

/// The analyzer's verdict: every diagnostic the ruleset produced, ordered
/// `Deny` first, then by code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Builds a report, sorting `Deny` before `Warn` and by code within a
    /// tier so output (and JSON) is stable.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| b.level.cmp(&a.level).then(a.code.cmp(b.code)));
        AnalysisReport { diagnostics }
    }

    /// True when nothing at all was flagged.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one `Deny` diagnostic is present — `run` refuses
    /// to start on these.
    pub fn has_deny(&self) -> bool {
        self.diagnostics.iter().any(|d| d.level == Level::Deny)
    }

    /// The `Deny`-tier findings.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.level == Level::Deny)
    }

    /// The `Warn`-tier findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.level == Level::Warn)
    }

    /// True when some finding carries `code`.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Every distinct code present, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.code) {
                out.push(d.code);
            }
        }
        out
    }

    /// Machine-readable JSON: `{"diagnostics":[{code,level,message,knobs,
    /// suggestion}...]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":{},\"level\":{},\"message\":{},\"knobs\":[",
                json_str(d.code),
                json_str(&d.level.to_string()),
                json_str(&d.message),
            ));
            for (j, k) in d.knobs.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&json_str(k));
            }
            s.push_str(&format!("],\"suggestion\":{}}}", json_str(&d.suggestion)));
        }
        s.push_str("]}");
        s
    }

    /// Tidy (one line per finding, tab-separated `code level message
    /// suggestion`) for grepping and spreadsheets.
    pub fn to_tidy(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                d.code, d.level, d.message, d.suggestion
            ));
        }
        s
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "scenario analyzes clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Edit distance used for "did you mean" suggestions on fault-plan
/// targets and topic names.
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur.push((prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The candidate closest to `name` within an edit distance small enough
/// to look like a typo (≤ 1/3 of the name's length, minimum 2).
pub(crate) fn nearest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let budget = (name.chars().count() / 3).max(2);
    candidates
        .map(|c| (levenshtein(name, c), c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, c)| (*d, c.to_string()))
        .map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_orders_deny_first_and_serializes() {
        let r = AnalysisReport::new(vec![
            Diagnostic::new("S2G020", Level::Warn, "warned", &["a"], "do b"),
            Diagnostic::new("S2G002", Level::Deny, "denied \"x\"", &[], "do c"),
        ]);
        assert!(r.has_deny());
        assert_eq!(r.codes(), vec!["S2G002", "S2G020"]);
        let json = r.to_json();
        assert!(json.starts_with("{\"diagnostics\":["));
        assert!(json.contains("\\\"x\\\""));
        assert!(r.to_tidy().lines().count() == 2);
    }

    #[test]
    fn nearest_finds_typos_only() {
        let names = ["fraud-detect", "producer-0"];
        assert_eq!(
            nearest("fraud-detct", names.iter().copied()),
            Some("fraud-detect".to_string())
        );
        assert_eq!(nearest("zzzzzz", names.iter().copied()), None);
    }
}
