//! Maritime monitoring — persistent storage (Table II).
//!
//! "Analyzes a stream of ship tracking reports (e.g., AIS messages) to count
//! the number of ships heading to a set of desired ports in a given time
//! window. Its data processing pipeline uses an external key-value store,
//! i.e., in addition to the one embedded in the stream processing engine, to
//! store the results." Four components: producer, broker, SPE, store.

use s2g_broker::TopicSpec;
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Plan, SpeConfig, Value, WindowAggregate, WindowAssigner};
use s2g_store::StoreConfig;

use crate::data::ais_reports;

/// Ports of interest for the monitoring query.
pub const WATCHED_PORTS: &[&str] = &["halifax", "rotterdam"];

/// The maritime job: parse AIS reports, keep only watched destination
/// ports, and count ships per port per 30-second window.
pub fn port_count_plan() -> Plan {
    Plan::new()
        .map("parse", |mut e| {
            let text = e.value.as_str().unwrap_or("").to_string();
            let fields: Vec<&str> = text.split('|').collect();
            e.value = Value::map([
                (
                    "ship",
                    Value::Str(fields.first().copied().unwrap_or("?").into()),
                ),
                (
                    "port",
                    Value::Str(fields.get(1).copied().unwrap_or("?").into()),
                ),
                (
                    "speed",
                    Value::Float(fields.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.0)),
                ),
            ]);
            e
        })
        .filter("watched-ports", |e| {
            e.value
                .field("port")
                .and_then(Value::as_str)
                .is_some_and(|p| WATCHED_PORTS.contains(&p))
        })
        .key_by("by-port", |e| {
            e.value
                .field("port")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        })
        .then(WindowAggregate::count(
            "ships-per-window",
            WindowAssigner::Tumbling(SimDuration::from_secs(30)),
        ))
}

/// Builds the maritime-monitoring scenario over `n` AIS reports, persisting
/// window counts into the external store on `h-store`.
pub fn scenario(n: usize, duration: SimTime, seed: u64) -> Scenario {
    let mut sc = Scenario::new("maritime-monitoring");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(4)))
        .topic(TopicSpec::new("ais"));
    sc.broker("h-broker");
    sc.store("h-store", StoreConfig::default());
    sc.producer(
        "h-src",
        SourceSpec::Items {
            topic: "ais".into(),
            items: ais_reports(n, seed),
            interval: SimDuration::from_millis(25),
        },
        Default::default(),
    );
    sc.spe_job(
        "h-spe",
        SpeJobSpec::new(
            "port-counts",
            vec!["ais".into()],
            port_count_plan,
            SpeSinkSpec::StoreOn {
                host: "h-store".into(),
                table: "port_counts".into(),
            },
            SpeConfig::default(),
        ),
    );
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_spe::Event;
    use s2g_store::StoreServer;

    #[test]
    fn plan_filters_and_counts() {
        let mut plan = port_count_plan();
        let mk = |port: &str, s: u64| {
            Event::new(Value::Str(format!("s1|{port}|10.0")), SimTime::from_secs(s))
        };
        plan.run_batch(
            SimTime::ZERO,
            vec![
                mk("halifax", 1),
                mk("halifax", 2),
                mk("boston", 3),
                mk("rotterdam", 4),
            ],
        );
        let out = plan.flush(SimTime::ZERO);
        assert_eq!(out.len(), 2, "two watched ports, one window each");
        let halifax = out
            .iter()
            .find(|e| e.key.as_deref() == Some("halifax"))
            .unwrap();
        assert_eq!(halifax.value.as_int(), Some(2));
        assert!(out.iter().all(|e| e.key.as_deref() != Some("boston")));
    }

    #[test]
    fn pipeline_persists_counts_to_store() {
        let sc = scenario(200, SimTime::from_secs(60), 21);
        let result = sc.run().expect("runs");
        let store_pid = result.store_pids["h-store"];
        let store = result.sim.process_ref::<StoreServer>(store_pid).unwrap();
        let rows = store.tables().total_rows();
        assert!(rows >= 2, "window counts persisted, got {rows}");
        // Every persisted row names a watched port.
        let mut tables = store.tables().clone();
        for row in tables.select("port_counts", None).unwrap() {
            assert!(WATCHED_PORTS.contains(&row[0].as_str()), "row {row:?}");
        }
        // The SPE actually filtered: fewer outputs than inputs.
        let (r_in, r_out) = result.report.spe["port-counts"].record_counts;
        assert!(r_in >= 200);
        assert!(r_out < r_in / 4);
    }
}
