//! Fraud detection — machine learning prediction (Table II).
//!
//! "Runs a machine learning algorithm (SVM) to predict anomalies in a
//! stream of financial transactions." The SVM is trained offline on a
//! labeled synthetic set and embedded into the stream job, which scores
//! every transaction and forwards the flagged ones to an alerts topic.
//! Five components: producer, broker, SPE, alerts consumer (+ training).

use s2g_broker::TopicSpec;
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_ml::{Label, LinearSvm, SvmParams};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Plan, SpeConfig, Value};

use crate::data::{transactions, Transaction};

/// Trains the fraud model on a fresh synthetic labeled set.
pub fn train_model(training_size: usize, seed: u64) -> LinearSvm {
    let txs = transactions(training_size, seed);
    let data: Vec<(Vec<f64>, Label)> = txs
        .iter()
        .map(|t| {
            (
                t.features(),
                if t.fraudulent {
                    Label::Positive
                } else {
                    Label::Negative
                },
            )
        })
        .collect();
    LinearSvm::train(
        &data,
        SvmParams {
            seed,
            ..SvmParams::default()
        },
    )
}

/// The fraud job: parse transactions, score them with the SVM, keep the
/// predicted anomalies with their margins.
pub fn fraud_plan(model: LinearSvm) -> Plan {
    Plan::new()
        .map("score", move |mut e| {
            let text = e.value.as_str().unwrap_or("").to_string();
            match Transaction::parse(&text) {
                Some(tx) => {
                    let margin = model.margin(&tx.features());
                    e.value = Value::map([
                        ("amount", Value::Float(tx.amount)),
                        ("margin", Value::Float(margin)),
                        ("flagged", Value::Bool(margin > 0.0)),
                    ]);
                }
                None => e.value = Value::Null,
            }
            e
        })
        .filter("flagged-only", |e| {
            e.value
                .field("flagged")
                .is_some_and(|f| matches!(f, Value::Bool(true)))
        })
}

/// Builds the fraud-detection scenario: `n` streamed transactions scored by
/// a model trained on `training_size` labeled examples.
pub fn scenario(n: usize, training_size: usize, duration: SimTime, seed: u64) -> Scenario {
    let mut sc = Scenario::new("fraud-detection");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(3)))
        .topic(TopicSpec::new("transactions"))
        .topic(TopicSpec::new("fraud-alerts"));
    sc.broker("h-broker");
    let stream: Vec<String> = transactions(n, seed ^ 0x00ff)
        .iter()
        .map(Transaction::to_record)
        .collect();
    sc.producer(
        "h-src",
        SourceSpec::Items {
            topic: "transactions".into(),
            items: stream,
            interval: SimDuration::from_millis(20),
        },
        Default::default(),
    );
    sc.spe_job(
        "h-spe",
        SpeJobSpec::new(
            "fraud-scoring",
            vec!["transactions".into()],
            move || fraud_plan(train_model(training_size, seed)),
            SpeSinkSpec::Topic("fraud-alerts".into()),
            SpeConfig::default(),
        ),
    );
    sc.consumer("h-alerts", Default::default(), &["fraud-alerts"]);
    sc
}

/// The parallel port of [`scenario`]: the same SVM-scoring pipeline, but
/// the transactions topic gets 8 partitions and the (stateless, single
/// stage) job runs `parallelism` instances, each statically owning a
/// contiguous partition range. With `parallelism == 1` this degenerates to
/// the classic single-worker layout (the output-parity baseline).
pub fn parallel_scenario(
    n: usize,
    training_size: usize,
    duration: SimTime,
    seed: u64,
    parallelism: usize,
) -> Scenario {
    let mut sc = Scenario::new("fraud-detection-parallel");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(3)))
        .topic(TopicSpec::new("transactions").partitions(8))
        .topic(TopicSpec::new("fraud-alerts"));
    sc.broker("h-broker");
    let stream: Vec<String> = transactions(n, seed ^ 0x00ff)
        .iter()
        .map(Transaction::to_record)
        .collect();
    sc.producer(
        "h-src",
        SourceSpec::Items {
            topic: "transactions".into(),
            items: stream,
            interval: SimDuration::from_millis(20),
        },
        Default::default(),
    );
    let mut job = SpeJobSpec::new(
        "fraud-scoring",
        vec!["transactions".into()],
        move || fraud_plan(train_model(training_size, seed)),
        SpeSinkSpec::Topic("fraud-alerts".into()),
        SpeConfig::default(),
    );
    if parallelism > 1 {
        // A stateless plan has one stage; forcing the parallel layout makes
        // the instances split the source partitions between them.
        job = job.parallelism(parallelism);
    }
    sc.spe_job("h-spe", job);
    sc.consumer("h-alerts", Default::default(), &["fraud-alerts"]);
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_spe::Event;

    #[test]
    fn model_separates_synthetic_fraud() {
        let model = train_model(1_500, 3);
        let test = transactions(500, 99);
        let mut tp = 0;
        let mut fp = 0;
        let mut fraud_total = 0;
        for t in &test {
            let flagged = model.predict(&t.features()) == Label::Positive;
            if t.fraudulent {
                fraud_total += 1;
                if flagged {
                    tp += 1;
                }
            } else if flagged {
                fp += 1;
            }
        }
        assert!(fraud_total > 10);
        let recall = tp as f64 / fraud_total as f64;
        assert!(recall > 0.85, "recall {recall}");
        assert!(fp < 15, "{fp} false positives of {}", test.len());
    }

    #[test]
    fn plan_flags_only_anomalies() {
        let model = train_model(1_500, 3);
        let mut plan = fraud_plan(model);
        let benign = Transaction {
            amount: 25.0,
            velocity: 1.0,
            geo_distance: 5.0,
            fraudulent: false,
        };
        let shady = Transaction {
            amount: 4_000.0,
            velocity: 25.0,
            geo_distance: 8_000.0,
            fraudulent: true,
        };
        let out = plan.run_batch(
            SimTime::ZERO,
            vec![
                Event::new(Value::Str(benign.to_record()), SimTime::ZERO),
                Event::new(Value::Str(shady.to_record()), SimTime::ZERO),
            ],
        );
        assert_eq!(out.len(), 1, "only the anomaly passes the filter");
        assert!(out[0].value.field("margin").unwrap().as_float().unwrap() > 0.0);
    }

    #[test]
    fn pipeline_raises_alerts() {
        let sc = scenario(300, 1_500, SimTime::from_secs(30), 17);
        let result = sc.run().expect("runs");
        let monitor = result.monitor.borrow();
        let alerts: Vec<_> = monitor.for_topic("fraud-alerts").collect();
        // ~8% of 300 transactions are fraudulent.
        assert!(
            (10..80).contains(&alerts.len()),
            "plausible alert volume, got {}",
            alerts.len()
        );
    }
}
