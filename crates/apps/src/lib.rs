//! # s2g-apps — the example applications (Table II)
//!
//! The five applications the paper deploys on stream2gym, plus the two
//! research-reproduction workloads of §V-C:
//!
//! | Application | Module | Components | Feature |
//! |---|---|---|---|
//! | Word count | [`word_count`] | 5 | multiple stream processing jobs |
//! | Ride selection | [`ride_selection`] | 5 | structured data, stateful processing |
//! | Sentiment analysis | [`sentiment`] | 3 | unstructured data |
//! | Maritime monitoring | [`maritime`] | 4 | persistent storage |
//! | Fraud detection | [`fraud`] | 5 | machine learning prediction |
//! | Video analytics (Ichinose et al.) | [`video_analytics`] | 2+N | consumer-scaling throughput |
//! | Traffic monitoring (Ocampo et al.) | [`traffic_monitor`] | 2+N | per-slot runtime scaling |
//!
//! Every module exposes its stream-job [`Plan`](s2g_spe::Plan) factories
//! (unit-testable offline) and a `scenario(...)` builder that assembles the
//! full pipeline on the emulated network. [`data`] holds the seeded
//! synthetic generators that stand in for the paper's datasets.

#![warn(missing_docs)]

pub mod data;
pub mod fraud;
pub mod maritime;
pub mod ride_selection;
pub mod sentiment;
pub mod traffic_monitor;
pub mod video_analytics;
pub mod word_count;
