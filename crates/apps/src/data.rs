//! Seeded synthetic data generators.
//!
//! The paper's applications consume real datasets (documents, taxi rides,
//! tweets, AIS ship reports, financial transactions). Those are not
//! redistributable here, so each generator produces a seeded synthetic
//! corpus with the same schema and the statistical features the queries
//! exercise (categories to group by, joinable ids, anomalies to detect).
//! DESIGN.md documents this substitution.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORDS: &[&str] = &[
    "stream",
    "data",
    "pipeline",
    "broker",
    "topic",
    "window",
    "event",
    "state",
    "query",
    "latency",
    "throughput",
    "cluster",
    "replica",
    "leader",
    "offset",
    "batch",
    "shuffle",
    "join",
    "filter",
    "scale",
    "monitor",
    "deploy",
    "emulate",
    "network",
    "switch",
];

const CATEGORIES: &[&str] = &["systems", "networks", "databases", "ml"];

/// Documents for the word-count pipeline: each item is
/// `"<category>|<text>"` with a word count drawn from `8..=40`.
pub fn documents(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cat = CATEGORIES[i % CATEGORIES.len()];
            let len = rng.gen_range(8..=40);
            let words: Vec<&str> = (0..len)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
                .collect();
            format!("{cat}|{}", words.join(" "))
        })
        .collect()
}

const AREAS: &[&str] = &[
    "downtown",
    "airport",
    "harbor",
    "university",
    "stadium",
    "suburbs",
];

/// Taxi ride descriptions: `"<ride_id>|<area>|<distance_km>"`.
pub fn rides(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let area = AREAS[rng.gen_range(0..AREAS.len())];
            let dist: f64 = rng.gen_range(0.5..25.0);
            format!("r{i}|{area}|{dist:.2}")
        })
        .collect()
}

/// Fares matching [`rides`] by id: `"<ride_id>|<fare>|<tip>"`. Tips are
/// systematically higher for airport and stadium rides so the "best tipping
/// areas" query has signal.
pub fn fares(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5a_f317);
    let ride_list = rides(n, seed);
    (0..n)
        .map(|i| {
            let area = ride_list[i].split('|').nth(1).expect("area field");
            let fare: f64 = rng.gen_range(5.0..60.0);
            let base_tip = if area == "airport" || area == "stadium" {
                0.22
            } else {
                0.10
            };
            let tip = fare * (base_tip + rng.gen_range(-0.05..0.05));
            format!("r{i}|{fare:.2}|{tip:.2}")
        })
        .collect()
}

const POSITIVE_TWEETS: &[&str] = &[
    "this release is really great, love the new dashboard",
    "absolutely amazing performance, very happy with the upgrade",
    "the team did an excellent job, best launch so far",
    "fast and reliable, what a wonderful tool",
];

const NEGATIVE_TWEETS: &[&str] = &[
    "the deploy was terrible, everything is broken again",
    "really slow and full of bugs, worst update ever",
    "i hate this awful regression, very disappointing",
    "the outage was horrible, such a sad failure",
];

const NEUTRAL_TWEETS: &[&str] = &[
    "the meeting starts at nine tomorrow",
    "version two ships with three new endpoints",
    "the train to the office leaves from platform four",
];

/// A tweet stream mixing positive, negative, and neutral messages.
pub fn tweets(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen();
            let pool = if roll < 0.4 {
                POSITIVE_TWEETS
            } else if roll < 0.8 {
                NEGATIVE_TWEETS
            } else {
                NEUTRAL_TWEETS
            };
            pool[rng.gen_range(0..pool.len())].to_string()
        })
        .collect()
}

const PORTS: &[&str] = &[
    "halifax",
    "boston",
    "rotterdam",
    "singapore",
    "santos",
    "oslo",
];

/// AIS-style ship reports: `"<ship_id>|<dest_port>|<speed_knots>"`.
pub fn ais_reports(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let ship = rng.gen_range(1000..9999);
            let port = PORTS[rng.gen_range(0..PORTS.len())];
            let speed: f64 = rng.gen_range(2.0..28.0);
            format!("s{ship}|{port}|{speed:.1}")
        })
        .collect()
}

/// A labeled transaction for fraud training/testing.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Amount in currency units.
    pub amount: f64,
    /// Transactions by the same account in the last hour.
    pub velocity: f64,
    /// Distance from the account's home location, km.
    pub geo_distance: f64,
    /// Ground truth.
    pub fraudulent: bool,
}

impl Transaction {
    /// Feature vector for the SVM.
    pub fn features(&self) -> Vec<f64> {
        // Normalize to comparable scales.
        vec![
            self.amount / 1_000.0,
            self.velocity / 10.0,
            self.geo_distance / 1_000.0,
        ]
    }

    /// Serializes as a stream record: `"<amount>|<velocity>|<distance>"`.
    pub fn to_record(&self) -> String {
        format!(
            "{:.2}|{:.2}|{:.2}",
            self.amount, self.velocity, self.geo_distance
        )
    }

    /// Parses a stream record.
    pub fn parse(s: &str) -> Option<Transaction> {
        let mut parts = s.split('|');
        Some(Transaction {
            amount: parts.next()?.parse().ok()?,
            velocity: parts.next()?.parse().ok()?,
            geo_distance: parts.next()?.parse().ok()?,
            fraudulent: false,
        })
    }
}

/// Synthetic transactions: ~8% are fraudulent (large amounts, high velocity,
/// far from home), the rest benign.
pub fn transactions(n: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.08 {
                Transaction {
                    amount: rng.gen_range(800.0..5_000.0),
                    velocity: rng.gen_range(5.0..30.0),
                    geo_distance: rng.gen_range(500.0..9_000.0),
                    fraudulent: true,
                }
            } else {
                Transaction {
                    amount: rng.gen_range(3.0..300.0),
                    velocity: rng.gen_range(0.0..4.0),
                    geo_distance: rng.gen_range(0.0..120.0),
                    fraudulent: false,
                }
            }
        })
        .collect()
}

/// Per-user packet summaries for the traffic-monitoring reproduction:
/// `"<user>|<service>|<bytes>"`.
pub fn packet_summary(user: u32, rng: &mut StdRng) -> String {
    const SERVICES: &[&str] = &["web", "dns", "ftp", "mail", "ssh"];
    let service = SERVICES[rng.gen_range(0..SERVICES.len())];
    let bytes = rng.gen_range(60..1_500);
    format!("u{user}|{service}|{bytes}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_have_category_prefix() {
        let docs = documents(8, 1);
        assert_eq!(docs.len(), 8);
        for d in &docs {
            let (cat, text) = d.split_once('|').expect("category separator");
            assert!(CATEGORIES.contains(&cat));
            assert!(text.split_whitespace().count() >= 8);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(documents(5, 42), documents(5, 42));
        assert_eq!(rides(5, 42), rides(5, 42));
        assert_eq!(tweets(5, 42), tweets(5, 42));
        assert_eq!(ais_reports(5, 42), ais_reports(5, 42));
    }

    #[test]
    fn fares_join_with_rides() {
        let r = rides(20, 7);
        let f = fares(20, 7);
        for (ride, fare) in r.iter().zip(&f) {
            assert_eq!(ride.split('|').next(), fare.split('|').next(), "ids align");
        }
    }

    #[test]
    fn airport_tips_are_higher_on_average() {
        let n = 2_000;
        let r = rides(n, 3);
        let f = fares(n, 3);
        let mut airport = (0.0, 0);
        let mut suburbs = (0.0, 0);
        for (ride, fare) in r.iter().zip(&f) {
            let area = ride.split('|').nth(1).unwrap();
            let fare_amt: f64 = fare.split('|').nth(1).unwrap().parse().unwrap();
            let tip: f64 = fare.split('|').nth(2).unwrap().parse().unwrap();
            let rate = tip / fare_amt;
            match area {
                "airport" => {
                    airport.0 += rate;
                    airport.1 += 1;
                }
                "suburbs" => {
                    suburbs.0 += rate;
                    suburbs.1 += 1;
                }
                _ => {}
            }
        }
        let airport_mean = airport.0 / airport.1 as f64;
        let suburbs_mean = suburbs.0 / suburbs.1 as f64;
        assert!(
            airport_mean > suburbs_mean + 0.05,
            "{airport_mean} vs {suburbs_mean}"
        );
    }

    #[test]
    fn transactions_have_separable_fraud() {
        let txs = transactions(1_000, 5);
        let fraud: Vec<&Transaction> = txs.iter().filter(|t| t.fraudulent).collect();
        let benign: Vec<&Transaction> = txs.iter().filter(|t| !t.fraudulent).collect();
        assert!(!fraud.is_empty() && !benign.is_empty());
        let fraud_amt: f64 = fraud.iter().map(|t| t.amount).sum::<f64>() / fraud.len() as f64;
        let benign_amt: f64 = benign.iter().map(|t| t.amount).sum::<f64>() / benign.len() as f64;
        assert!(fraud_amt > benign_amt * 2.0);
    }

    #[test]
    fn transaction_record_round_trips() {
        let t = Transaction {
            amount: 12.5,
            velocity: 2.0,
            geo_distance: 7.25,
            fraudulent: false,
        };
        let parsed = Transaction::parse(&t.to_record()).unwrap();
        assert!((parsed.amount - 12.5).abs() < 1e-9);
        assert!((parsed.geo_distance - 7.25).abs() < 1e-9);
        assert!(Transaction::parse("garbage").is_none());
    }

    #[test]
    fn packet_summaries_parse() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = packet_summary(3, &mut rng);
        let parts: Vec<&str> = p.split('|').collect();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], "u3");
        assert!(parts[2].parse::<u32>().is_ok());
    }
}
