//! Traffic monitoring — the Ocampo et al. reproduction (§V-C, Fig. 7b).
//!
//! "The proposed system takes a stream of network packets captured at
//! different switches as input and computes a set of relevant metrics
//! (e.g., number of active connections, bandwidth usage) on a windowed
//! basis... Each user generates traffic to a pre-defined set of services
//! (e.g., FTP, Web, DNS) following a Poisson process. Traffic is processed
//! in slots of one second."
//!
//! The scalability sweep varies the number of users and reports the SPE's
//! mean per-slot execution time, normalized by the 20-user result.

use rand::rngs::StdRng;

use s2g_broker::{DataSource, SourceAction, TopicSpec};
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Plan, SpeConfig, Value, WindowAggregate, WindowAssigner};

use crate::data::packet_summary;

/// Packets per second each user generates (Poisson mean).
pub const PACKETS_PER_USER_PER_SEC: f64 = 20.0;

/// A user's traffic generator: Poisson packet summaries to `packets`.
#[derive(Debug)]
pub struct UserTraffic {
    user: u32,
    mean_interval: SimDuration,
    until: SimTime,
}

impl UserTraffic {
    /// Traffic for `user` until `until`.
    pub fn new(user: u32, until: SimTime) -> Self {
        UserTraffic {
            user,
            mean_interval: SimDuration::from_secs_f64(1.0 / PACKETS_PER_USER_PER_SEC),
            until,
        }
    }
}

impl DataSource for UserTraffic {
    fn next(&mut self, now: SimTime, rng: &mut StdRng) -> SourceAction {
        use rand::Rng;
        if now >= self.until {
            return SourceAction::Done;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let gap = self.mean_interval.mul_f64(-u.ln());
        SourceAction::Emit {
            topic: "packets".into(),
            key: None,
            value: packet_summary(self.user, rng).into_bytes(),
            next_after: gap,
        }
    }
}

/// The monitoring job: per-service connection counts and byte totals per
/// one-second slot.
pub fn monitoring_plan() -> Plan {
    Plan::new()
        .map("parse", |mut e| {
            let text = e.value.as_str().unwrap_or("").to_string();
            let fields: Vec<&str> = text.split('|').collect();
            e.value = Value::map([
                (
                    "user",
                    Value::Str(fields.first().copied().unwrap_or("?").into()),
                ),
                (
                    "service",
                    Value::Str(fields.get(1).copied().unwrap_or("?").into()),
                ),
                (
                    "bytes",
                    Value::Int(fields.get(2).and_then(|b| b.parse().ok()).unwrap_or(0)),
                ),
            ]);
            e
        })
        .key_by("by-service", |e| {
            e.value
                .field("service")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        })
        .window(WindowAggregate::new(
            "per-slot-metrics",
            WindowAssigner::Tumbling(SimDuration::from_secs(1)),
            Value::map([("packets", Value::Int(0)), ("bytes", Value::Int(0))]),
            |acc, e| {
                let p = acc.field("packets").and_then(Value::as_int).unwrap_or(0) + 1;
                let b = acc.field("bytes").and_then(Value::as_int).unwrap_or(0)
                    + e.value.field("bytes").and_then(Value::as_int).unwrap_or(0);
                Value::map([("packets", Value::Int(p)), ("bytes", Value::Int(b))])
            },
            |acc, _| acc,
        ))
}

/// The SPE configuration calibrated for the scalability sweep: a fixed
/// scheduling overhead that dominates at low load plus per-record cost that
/// grows with users, giving the paper's ~1.0→1.7 normalized-runtime curve.
pub fn spark_config() -> SpeConfig {
    SpeConfig {
        batch_interval: SimDuration::from_secs(1),
        scheduling_overhead: SimDuration::from_millis(380),
        cpu_per_record: SimDuration::from_micros(200),
        ..SpeConfig::default()
    }
}

/// Builds the traffic-monitoring scenario with `users` traffic generators.
pub fn scenario(users: u32, duration: SimTime, seed: u64) -> Scenario {
    let mut sc = Scenario::new("traffic-monitoring");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("packets"));
    sc.broker("h-broker");
    let traffic_until = duration - SimDuration::from_secs(5);
    for u in 0..users {
        let host = format!("u{u}");
        sc.producer(
            &host,
            SourceSpec::Custom {
                topics: vec!["packets".into()],
                make: Box::new(move || Box::new(UserTraffic::new(u, traffic_until))),
            },
            Default::default(),
        );
    }
    sc.spe_job(
        "h-spark",
        SpeJobSpec::new(
            "traffic-metrics",
            vec!["packets".into()],
            monitoring_plan,
            SpeSinkSpec::Collect,
            spark_config(),
        ),
    );
    sc
}

/// Runs the sweep and returns `(users, mean_slot_runtime)` pairs.
pub fn sweep(user_counts: &[u32], duration: SimTime, seed: u64) -> Vec<(u32, SimDuration)> {
    user_counts
        .iter()
        .map(|&users| {
            let result = scenario(users, duration, seed)
                .run()
                .expect("valid scenario");
            (
                users,
                result.report.spe["traffic-metrics"].mean_busy_runtime,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_spe::Event;

    #[test]
    fn plan_aggregates_per_service_slots() {
        let mut plan = monitoring_plan();
        let mk = |svc: &str, bytes: u32, ms: u64| {
            Event::new(
                Value::Str(format!("u1|{svc}|{bytes}")),
                SimTime::from_millis(ms),
            )
        };
        plan.run_batch(
            SimTime::ZERO,
            vec![mk("web", 100, 100), mk("web", 200, 300), mk("dns", 60, 400)],
        );
        let out = plan.flush(SimTime::ZERO);
        assert_eq!(out.len(), 2);
        let web = out
            .iter()
            .find(|e| e.key.as_deref() == Some("web"))
            .unwrap();
        assert_eq!(web.value.field("packets").unwrap().as_int(), Some(2));
        assert_eq!(web.value.field("bytes").unwrap().as_int(), Some(300));
    }

    #[test]
    fn runtime_grows_with_users() {
        let sweep = sweep(&[5, 25], SimTime::from_secs(25), 3);
        let (u_small, t_small) = sweep[0];
        let (u_large, t_large) = sweep[1];
        assert_eq!((u_small, u_large), (5, 25));
        assert!(
            t_large > t_small,
            "mean slot runtime must grow with users: {t_small} vs {t_large}"
        );
        // Overhead-dominated at low load: sub-linear growth.
        let ratio = t_large.as_secs_f64() / t_small.as_secs_f64();
        assert!(
            ratio < 5.0,
            "5x users must not mean 5x runtime (got {ratio:.2}x)"
        );
    }
}
