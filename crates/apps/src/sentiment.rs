//! Sentiment analysis — unstructured data (Table II).
//!
//! "Computes the subjectivity and polarity, two common natural language
//! processing tasks, of each message in a Tweet stream and thus involves
//! manipulating unstructured data." Three components: producer, broker, and
//! the SPE job (results collected at the engine).

use s2g_broker::TopicSpec;
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_ml::SentimentLexicon;
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Plan, SpeConfig, Value};

use crate::data::tweets;

/// The sentiment job: score each tweet's polarity and subjectivity.
pub fn sentiment_plan() -> Plan {
    let lexicon = SentimentLexicon::new();
    Plan::new().map("score", move |mut e| {
        let text = e.value.as_str().unwrap_or("").to_string();
        let s = lexicon.score(&text);
        e.value = Value::map([
            ("text", Value::Str(text)),
            ("polarity", Value::Float(s.polarity)),
            ("subjectivity", Value::Float(s.subjectivity)),
        ]);
        e
    })
}

/// Builds the sentiment-analysis scenario over `n` tweets.
pub fn scenario(n: usize, duration: SimTime, seed: u64) -> Scenario {
    let mut sc = Scenario::new("sentiment-analysis");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(3)))
        .topic(TopicSpec::new("tweets"));
    sc.broker("h-broker");
    sc.producer(
        "h-src",
        SourceSpec::Items {
            topic: "tweets".into(),
            items: tweets(n, seed),
            interval: SimDuration::from_millis(30),
        },
        Default::default(),
    );
    sc.spe_job(
        "h-spe",
        SpeJobSpec::new(
            "sentiment",
            vec!["tweets".into()],
            sentiment_plan,
            SpeSinkSpec::Collect,
            SpeConfig::default(),
        ),
    );
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_spe::Event;

    #[test]
    fn plan_scores_polarity_and_subjectivity() {
        let mut plan = sentiment_plan();
        let out = plan.run_batch(
            SimTime::ZERO,
            vec![
                Event::new(
                    Value::Str("really great wonderful launch".into()),
                    SimTime::ZERO,
                ),
                Event::new(
                    Value::Str("terrible awful broken mess".into()),
                    SimTime::ZERO,
                ),
            ],
        );
        let pol = |e: &Event| e.value.field("polarity").unwrap().as_float().unwrap();
        assert!(pol(&out[0]) > 0.3);
        assert!(pol(&out[1]) < -0.3);
        assert!(
            out[0]
                .value
                .field("subjectivity")
                .unwrap()
                .as_float()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn pipeline_scores_the_stream() {
        let sc = scenario(60, SimTime::from_secs(30), 13);
        let result = sc.run().expect("runs");
        let report = &result.report.spe["sentiment"];
        assert_eq!(report.collected.len(), 60, "every tweet scored");
        let positives = report
            .collected
            .iter()
            .filter(|e| e.value.field("polarity").unwrap().as_float().unwrap() > 0.1)
            .count();
        let negatives = report
            .collected
            .iter()
            .filter(|e| e.value.field("polarity").unwrap().as_float().unwrap() < -0.1)
            .count();
        assert!(positives > 5, "{positives} positives");
        assert!(negatives > 5, "{negatives} negatives");
    }
}
