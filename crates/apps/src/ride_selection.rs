//! Ride selection — structured data with stateful processing (Table II).
//!
//! "Leverages structured data (e.g., geographical coordinates, fare values)
//! from a stream of taxi ride information to compute the best tipping areas
//! in a city. The processed query includes a combination of join, groupby,
//! and window operators, which requires dealing with an intermediate
//! state." Five components: two producers (rides, fares), a broker, the SPE
//! job, and a consumer.

use s2g_broker::TopicSpec;
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Event, Plan, SpeConfig, Value, WindowAggregate, WindowAssigner, WindowJoin};

use crate::data::{fares, rides};

/// The ride-selection query: join rides with fares on ride id, group by
/// pickup area, and compute the mean tip rate per area per window.
pub fn best_tipping_areas_plan() -> Plan {
    Plan::new()
        // Parse both inputs into keyed structured events.
        .map("parse", |mut e| {
            let text = e.value.as_str().unwrap_or("").to_string();
            let fields: Vec<&str> = text.split('|').collect();
            if e.source == 0 {
                // rides: id|area|distance
                e.key = Some(fields.first().copied().unwrap_or("?").to_string());
                e.value = Value::map([
                    (
                        "area",
                        Value::Str(fields.get(1).copied().unwrap_or("?").into()),
                    ),
                    (
                        "distance",
                        Value::Float(fields.get(2).and_then(|d| d.parse().ok()).unwrap_or(0.0)),
                    ),
                ]);
            } else {
                // fares: id|fare|tip
                e.key = Some(fields.first().copied().unwrap_or("?").to_string());
                let fare: f64 = fields.get(1).and_then(|x| x.parse().ok()).unwrap_or(1.0);
                let tip: f64 = fields.get(2).and_then(|x| x.parse().ok()).unwrap_or(0.0);
                e.value = Value::map([("fare", Value::Float(fare)), ("tip", Value::Float(tip))]);
            }
            e
        })
        // Join rides with fares within 30-second windows.
        .join(WindowJoin::new(
            "ride-fare-join",
            WindowAssigner::Tumbling(SimDuration::from_secs(30)),
            |ride, fare| {
                let area = ride
                    .value
                    .field("area")
                    .and_then(Value::as_str)
                    .unwrap_or("?");
                let f = fare
                    .value
                    .field("fare")
                    .and_then(Value::as_float)
                    .unwrap_or(1.0);
                let t = fare
                    .value
                    .field("tip")
                    .and_then(Value::as_float)
                    .unwrap_or(0.0);
                Value::map([
                    ("area", Value::Str(area.to_string())),
                    ("tip_rate", Value::Float(t / f.max(0.01))),
                ])
            },
        ))
        // Group by area and average the tip rate per 60-second window.
        .key_by("by-area", |e| {
            e.value
                .field("area")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        })
        .window(WindowAggregate::avg_field(
            "avg-tip-rate",
            WindowAssigner::Tumbling(SimDuration::from_secs(60)),
            "tip_rate",
        ))
}

/// Builds the ride-selection scenario over `n` rides.
pub fn scenario(n: usize, duration: SimTime, seed: u64) -> Scenario {
    let mut sc = Scenario::new("ride-selection");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(3)))
        .topic(TopicSpec::new("rides"))
        .topic(TopicSpec::new("fares"))
        .topic(TopicSpec::new("best-areas"));
    sc.broker("h-broker");
    let interval = SimDuration::from_millis(40);
    sc.producer(
        "h-rides",
        SourceSpec::Items {
            topic: "rides".into(),
            items: rides(n, seed),
            interval,
        },
        Default::default(),
    );
    sc.producer(
        "h-fares",
        SourceSpec::Items {
            topic: "fares".into(),
            items: fares(n, seed),
            interval,
        },
        Default::default(),
    );
    sc.spe_job(
        "h-spe",
        SpeJobSpec::new(
            "best-tipping-areas",
            vec!["rides".into(), "fares".into()],
            best_tipping_areas_plan,
            SpeSinkSpec::Topic("best-areas".into()),
            SpeConfig::default(),
        ),
    );
    sc.consumer("h-sink", Default::default(), &["best-areas"]);
    sc
}

/// Extracts `(area, mean_tip_rate)` pairs from the job's output events,
/// averaging across windows, sorted by tip rate descending.
pub fn rank_areas(outputs: &[Event]) -> Vec<(String, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<String, (f64, u32)> = BTreeMap::new();
    for e in outputs {
        let Some(area) = e.key.clone() else { continue };
        let Some(rate) = e.value.as_float() else {
            continue;
        };
        let slot = acc.entry(area).or_insert((0.0, 0));
        slot.0 += rate;
        slot.1 += 1;
    }
    let mut out: Vec<(String, f64)> = acc
        .into_iter()
        .map(|(a, (s, n))| (a, s / n as f64))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rates"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_joins_and_ranks_offline() {
        let mut plan = best_tipping_areas_plan();
        let mut events = Vec::new();
        // Two rides in the same window: airport tips 30%, suburbs 5%.
        for (i, (area, tip)) in [("airport", 0.3), ("suburbs", 0.05)].iter().enumerate() {
            let mut ride = Event::new(
                Value::Str(format!("r{i}|{area}|5.0")),
                SimTime::from_secs(1),
            );
            ride.source = 0;
            let mut fare = Event::new(
                Value::Str(format!("r{i}|10.0|{}", 10.0 * tip)),
                SimTime::from_secs(2),
            );
            fare.source = 1;
            events.push(ride);
            events.push(fare);
        }
        plan.run_batch(SimTime::ZERO, events);
        let out = plan.flush(SimTime::ZERO);
        let ranking = rank_areas(&out);
        assert_eq!(ranking[0].0, "airport");
        assert!(ranking[0].1 > ranking[1].1);
    }

    #[test]
    fn pipeline_finds_best_tipping_areas() {
        let sc = scenario(150, SimTime::from_secs(60), 7);
        let result = sc.run().expect("runs");
        let monitor = result.monitor.borrow();
        let delivered: Vec<_> = monitor.for_topic("best-areas").collect();
        assert!(!delivered.is_empty(), "windowed averages must be emitted");
        // Reconstruct the ranking from the consumer-side events.
        drop(monitor);
        let core = result.monitor.borrow();
        let mut events = Vec::new();
        for d in core.for_topic("best-areas") {
            let _ = d;
        }
        drop(core);
        // Pull events from the SPE-emitted topic through the collecting sink.
        let sink_events: Vec<Event> = {
            use s2g_broker::{CollectingSink, ConsumerProcess};
            use s2g_core::MonitoredSink;
            let pid = result.consumer_pids[0];
            let cons = result.sim.process_ref::<ConsumerProcess>(pid).unwrap();
            let monitored = cons.sink_as::<MonitoredSink>().unwrap();
            let inner = (monitored.inner() as &dyn std::any::Any)
                .downcast_ref::<CollectingSink>()
                .unwrap();
            inner
                .deliveries
                .iter()
                .filter_map(|(_, _, r)| Event::from_bytes(&r.value).ok())
                .collect()
        };
        events.extend(sink_events);
        let ranking = rank_areas(&events);
        assert!(ranking.len() >= 3, "several areas ranked: {ranking:?}");
        let top_two: Vec<&str> = ranking.iter().take(2).map(|(a, _)| a.as_str()).collect();
        assert!(
            top_two.contains(&"airport") || top_two.contains(&"stadium"),
            "high-tip areas must rank top: {ranking:?}"
        );
    }
}
