//! Video analytics — the Ichinose et al. reproduction (§V-C, Fig. 7a).
//!
//! "We replicate the experiment from Ichinose et al. using a single end
//! host that runs a data pipeline containing one broker, one producer, and
//! a varying number of consumers. We use a single topic to ingest data and
//! produce a large number of MNIST images before the first consumer
//! subscribes to the topic to avoid data stalls."
//!
//! Everything is co-located on one 8-core host, so aggregate transfer
//! throughput grows with the consumer count until the cores are saturated
//! and then flattens — the paper's Fig. 7a shape.

use s2g_broker::{BrokerConfig, ConsumerConfig, TopicSpec};
use s2g_core::{Scenario, ServerSpec, SourceSpec};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};

/// An MNIST frame: 28×28 grayscale pixels plus header.
pub const FRAME_BYTES: usize = 28 * 28 + 16;

/// Images pre-produced into the topic.
pub const FRAMES: u64 = 40_000;

/// Builds the Fig. 7a scenario: one host, one broker, one producer,
/// `consumers` consumers, everything co-located.
pub fn scenario(consumers: usize, seed: u64) -> Scenario {
    let mut sc = Scenario::new("video-analytics");
    sc.seed(seed)
        .duration(SimTime::from_secs(40))
        .server(ServerSpec::default()) // 8 cores, like the original host
        .default_link(LinkSpec::new().latency(SimDuration::from_micros(100)))
        .topic(TopicSpec::new("frames"));
    // Cheap request handling so consumer-side deserialization dominates,
    // as in the original frame-transfer benchmark.
    sc.broker_with(
        "h1",
        BrokerConfig {
            cpu_per_request: SimDuration::from_micros(8),
            cpu_per_record: SimDuration::from_nanos(300),
            fetch_max_records: 1_000,
            ..BrokerConfig::default()
        },
    );
    // Pre-produce the backlog fast (finishes within the first seconds).
    sc.producer(
        "h1",
        SourceSpec::Rate {
            topic: "frames".into(),
            count: FRAMES,
            interval: SimDuration::from_micros(50),
            payload: FRAME_BYTES,
        },
        Default::default(),
    );
    for _ in 0..consumers {
        sc.consumer(
            "h1",
            ConsumerConfig {
                max_poll_records: 1_000,
                // Per-frame decode cost: this is the CPU-bound stage that
                // caps per-consumer throughput at ~1/cost on one core.
                cpu_per_record: SimDuration::from_micros(40),
                ..ConsumerConfig::default()
            },
            &["frames"],
        );
    }
    sc
}

/// Runs one point of the sweep, returning aggregate transfer throughput in
/// images per second (total records fetched by all consumers over the span
/// between the first and last delivery).
pub fn measure_throughput(consumers: usize, seed: u64) -> f64 {
    let result = scenario(consumers, seed).run().expect("valid scenario");
    let monitor = result.monitor.borrow();
    if monitor.deliveries.is_empty() {
        return 0.0;
    }
    let first = monitor
        .deliveries
        .iter()
        .map(|d| d.delivered)
        .min()
        .expect("non-empty");
    let last = monitor
        .deliveries
        .iter()
        .map(|d| d.delivered)
        .max()
        .expect("non-empty");
    let span = last.saturating_since(first).as_secs_f64().max(1e-6);
    monitor.deliveries.len() as f64 / span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumers_drain_the_backlog() {
        let result = scenario(2, 3).run().expect("runs");
        let monitor = result.monitor.borrow();
        // Both consumers eventually fetch the full pre-produced topic.
        assert_eq!(monitor.deliveries.len() as u64, 2 * FRAMES);
    }

    #[test]
    fn throughput_grows_then_plateaus() {
        // Debug-build-friendly mini-sweep: 1 vs 4 consumers must scale,
        // 8 vs 12 must not (8 cores). The full sweep runs in the benches.
        let t1 = measure_throughput(1, 5);
        let t4 = measure_throughput(4, 5);
        assert!(
            t4 > t1 * 2.5,
            "parallel consumers must scale: {t1:.0} vs {t4:.0}"
        );
    }
}
