//! Word count — the paper's reference application (Fig. 2a, Table II).
//!
//! Pipeline: a data source streams documents into `raw-data`; SPE job 1
//! counts the distinct words per document into `words-per-doc`; SPE job 2
//! maintains the running average document length per topic category into
//! `avg-words-per-topic`; a data sink consumes the result. Five components
//! over a one-big-switch network, each on its own host — the allocation of
//! Fig. 2b.

use s2g_broker::TopicSpec;
use s2g_core::{Scenario, SourceSpec, SpeJobSpec, SpeSinkSpec};
use s2g_net::LinkSpec;
use s2g_sim::{SimDuration, SimTime};
use s2g_spe::{Event, Plan, SpeConfig, Value};

use crate::data::documents;

/// Per-component link delays for the Fig. 5 experiment ("we increase the
/// link delay of a single component and keep the remaining ones at a very
/// low value (<10ms)").
#[derive(Debug, Clone, Copy)]
pub struct ComponentDelays {
    /// Producer access link.
    pub producer: SimDuration,
    /// Broker access link.
    pub broker: SimDuration,
    /// Stream-processing hosts' access links.
    pub spe: SimDuration,
    /// Consumer access link.
    pub consumer: SimDuration,
}

impl Default for ComponentDelays {
    fn default() -> Self {
        let low = SimDuration::from_millis(2);
        ComponentDelays {
            producer: low,
            broker: low,
            spe: low,
            consumer: low,
        }
    }
}

/// Job 1: count the distinct words in each document.
///
/// Input: raw `"category|text"` records. Output: one event per document,
/// keyed by category, value `{words: n, distinct: m}`.
pub fn count_words_plan() -> Plan {
    Plan::new().map("count-words", |mut e| {
        let text = e.value.as_str().unwrap_or("").to_string();
        let (category, body) = text.split_once('|').unwrap_or(("unknown", text.as_str()));
        let words: Vec<&str> = body.split_whitespace().collect();
        let mut distinct: Vec<&str> = words.clone();
        distinct.sort_unstable();
        distinct.dedup();
        e.key = Some(category.to_string());
        e.value = Value::map([
            ("words", Value::Int(words.len() as i64)),
            ("distinct", Value::Int(distinct.len() as i64)),
        ]);
        e
    })
}

/// Job 2: running average document length per topic category.
///
/// Input: job 1's per-document counts. Output: one event per input, keyed
/// by category, value `{avg_words: x, docs: n}` — continuous-query
/// semantics, so every document yields an end-to-end measurable output.
pub fn avg_doc_length_plan() -> Plan {
    Plan::new().stateful(
        "avg-doc-length",
        Value::map([("sum", Value::Int(0)), ("n", Value::Int(0))]),
        |state, e| {
            let words = e.value.field("words").and_then(Value::as_int).unwrap_or(0);
            let sum = state.field("sum").and_then(Value::as_int).unwrap_or(0) + words;
            let n = state.field("n").and_then(Value::as_int).unwrap_or(0) + 1;
            *state = Value::map([("sum", Value::Int(sum)), ("n", Value::Int(n))]);
            vec![Event {
                value: Value::map([
                    ("avg_words", Value::Float(sum as f64 / n as f64)),
                    ("docs", Value::Int(n)),
                ]),
                ..e.clone()
            }]
        },
    )
}

/// Builds the full word-count scenario: `files` documents streamed at
/// `file_interval`, per-component link delays per `delays`.
pub fn scenario(
    files: usize,
    file_interval: SimDuration,
    delays: ComponentDelays,
    duration: SimTime,
    seed: u64,
) -> Scenario {
    let mut sc = Scenario::new("word-count");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .host_link("h1", LinkSpec::new().latency(delays.producer))
        .host_link("h2", LinkSpec::new().latency(delays.broker))
        .host_link("h3", LinkSpec::new().latency(delays.spe))
        .host_link("h4", LinkSpec::new().latency(delays.spe))
        .host_link("h5", LinkSpec::new().latency(delays.consumer))
        .topic(TopicSpec::new("raw-data"))
        .topic(TopicSpec::new("words-per-doc"))
        .topic(TopicSpec::new("avg-words-per-topic"));
    sc.broker("h2");
    sc.producer(
        "h1",
        SourceSpec::Items {
            topic: "raw-data".into(),
            items: documents(files, seed),
            interval: file_interval,
        },
        Default::default(),
    );
    let fast_batches = SpeConfig {
        batch_interval: SimDuration::from_millis(250),
        scheduling_overhead: SimDuration::from_millis(40),
        ..SpeConfig::default()
    };
    sc.spe_job(
        "h3",
        SpeJobSpec::new(
            "job1-word-count",
            vec!["raw-data".into()],
            count_words_plan,
            SpeSinkSpec::Topic("words-per-doc".into()),
            fast_batches.clone(),
        ),
    );
    sc.spe_job(
        "h4",
        SpeJobSpec::new(
            "job2-avg-length",
            vec!["words-per-doc".into()],
            avg_doc_length_plan,
            SpeSinkSpec::Topic("avg-words-per-topic".into()),
            fast_batches,
        ),
    );
    sc.consumer("h5", Default::default(), &["avg-words-per-topic"]);
    sc
}

/// Continuous per-word running count — the stateful job used by the
/// crash/recovery scenarios. Every input word emits an updated
/// `(word, count)` event, so the downstream topic always carries the latest
/// count per word and duplicate emissions are idempotent at the consumer.
pub fn running_count_plan() -> Plan {
    Plan::new()
        .key_by("by-word", |e| e.value.as_str().unwrap_or("").to_string())
        .stateful("running-count", Value::Int(0), |state, e| {
            let n = state.as_int().unwrap_or(0) + 1;
            *state = Value::Int(n);
            vec![Event {
                value: Value::Int(n),
                ..e.clone()
            }]
        })
}

/// A deterministic stream of single-word records drawn from a small
/// vocabulary — the input corpus for the recovery scenarios.
pub fn word_stream(n: usize, seed: u64) -> Vec<String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const VOCAB: [&str; 8] = [
        "stream", "gym", "fault", "replay", "offset", "window", "batch", "state",
    ];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_50DA);
    (0..n)
        .map(|_| VOCAB[rng.gen_range(0..VOCAB.len())].to_string())
        .collect()
}

/// Builds the worker crash/recovery scenario: a producer streams `words`
/// single-word records at `interval` into `words`; the stateful `wordcount`
/// job keeps a running count per word and emits `(word, count)` updates to
/// `counts`; a consumer collects them. Callers add checkpointing
/// ([`Scenario::with_checkpointing`]) and a crash plan
/// (`FaultPlan::crash_restart("wordcount", ..)`) on top.
pub fn recovery_scenario(
    words: usize,
    interval: SimDuration,
    duration: SimTime,
    seed: u64,
) -> Scenario {
    let mut sc = Scenario::new("word-count-recovery");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words"))
        .topic(TopicSpec::new("counts"));
    sc.broker("h2");
    sc.producer(
        "h1",
        SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(words, seed),
            interval,
        },
        Default::default(),
    );
    let cfg = SpeConfig {
        batch_interval: SimDuration::from_millis(250),
        scheduling_overhead: SimDuration::from_millis(20),
        startup_cpu: SimDuration::from_millis(200),
        ..SpeConfig::default()
    };
    sc.spe_job(
        "h3",
        SpeJobSpec::new(
            "wordcount",
            vec!["words".into()],
            running_count_plan,
            SpeSinkSpec::Topic("counts".into()),
            cfg,
        ),
    );
    sc.consumer("h5", Default::default(), &["counts"]);
    sc
}

/// The parallel port of [`recovery_scenario`]: the same stateful word-count
/// pipeline, but the source topic gets 8 partitions and the job runs
/// `parallelism` instances per stage — stage 0 (`key_by`) splits the source
/// partitions, the keyed shuffle routes each word to the instance owning
/// its key group, and the running counts live sliced across the stage-1
/// instances. With `parallelism == 1` this degenerates to the classic
/// single-worker layout (the output-parity baseline).
pub fn parallel_recovery_scenario(
    words: usize,
    interval: SimDuration,
    duration: SimTime,
    seed: u64,
    parallelism: usize,
) -> Scenario {
    let mut sc = Scenario::new("word-count-parallel");
    sc.seed(seed)
        .duration(duration)
        .default_link(LinkSpec::new().latency(SimDuration::from_millis(2)))
        .topic(TopicSpec::new("words").partitions(8))
        .topic(TopicSpec::new("counts"));
    sc.broker("h2");
    sc.producer(
        "h1",
        SourceSpec::Items {
            topic: "words".into(),
            items: word_stream(words, seed),
            interval,
        },
        Default::default(),
    );
    let cfg = SpeConfig {
        batch_interval: SimDuration::from_millis(250),
        scheduling_overhead: SimDuration::from_millis(20),
        startup_cpu: SimDuration::from_millis(200),
        ..SpeConfig::default()
    };
    let mut job = SpeJobSpec::new(
        "wordcount",
        vec!["words".into()],
        running_count_plan,
        SpeSinkSpec::Topic("counts".into()),
        cfg,
    );
    if parallelism > 1 {
        job = job.parallelism(parallelism);
    }
    sc.spe_job("h3", job);
    sc.consumer("h5", Default::default(), &["counts"]);
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2g_sim::SimTime;

    #[test]
    fn plans_compute_counts_and_averages() {
        let mut j1 = count_words_plan();
        let out = j1.run_batch(
            SimTime::ZERO,
            vec![Event::new(
                Value::Str("ml|alpha beta alpha".into()),
                SimTime::ZERO,
            )],
        );
        assert_eq!(out[0].key.as_deref(), Some("ml"));
        assert_eq!(out[0].value.field("words").unwrap().as_int(), Some(3));
        assert_eq!(out[0].value.field("distinct").unwrap().as_int(), Some(2));

        let mut j2 = avg_doc_length_plan();
        let mk = |n: i64| {
            Event::new(Value::map([("words", Value::Int(n))]), SimTime::ZERO).with_key("ml")
        };
        let out = j2.run_batch(SimTime::ZERO, vec![mk(10), mk(20)]);
        assert_eq!(
            out[1].value.field("avg_words").unwrap().as_float(),
            Some(15.0)
        );
        assert_eq!(out[1].value.field("docs").unwrap().as_int(), Some(2));
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let sc = scenario(
            30,
            SimDuration::from_millis(100),
            ComponentDelays::default(),
            SimTime::from_secs(40),
            11,
        );
        let result = sc.run().expect("runs");
        let monitor = result.monitor.borrow();
        let finals: Vec<_> = monitor.for_topic("avg-words-per-topic").collect();
        assert_eq!(finals.len(), 30, "one running-average output per document");
        // End-to-end latency is positive and bounded at low link delays.
        for d in finals {
            let lat = d.latency();
            assert!(lat > SimDuration::ZERO);
            assert!(lat < SimDuration::from_secs(5), "latency {lat}");
        }
    }
}
