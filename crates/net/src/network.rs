//! The live emulated network: routing, shaping, counters, placement.
//!
//! [`Network`] is built from a [`Topology`] and installed into the simulator
//! as its [`Transport`]. Every message a process sends is routed along a
//! proactively computed path (like stream2gym's `ovs-ofctl`-programmed
//! switches), charged against link bandwidth with FIFO queuing, delayed by
//! propagation and switch forwarding, possibly dropped by loss or downed
//! links, and accounted in per-port counters (the OpenFlow-statistics
//! equivalent used for the paper's bandwidth plots).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use s2g_sim::{Delivery, ProcessId, SimDuration, SimTime, Transport};

use crate::topology::{LinkId, NodeId, NodeKind, PortNo, Topology};

/// Routing metric used when computing proactive routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingAlgo {
    /// Minimize summed link latency (hop count as tiebreak). Default.
    #[default]
    ShortestLatency,
    /// Minimize hop count (latency as tiebreak).
    MinHop,
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Bernoulli loss on a link (the `loss` attribute, or gray failure).
    Loss,
    /// A link on the path was administratively down.
    LinkDown,
    /// The source or destination node was down.
    NodeDown,
    /// No path existed between the endpoints.
    NoRoute,
    /// The sender or receiver process has no placement.
    Unplaced,
}

/// Cumulative traffic counters for one port, mirroring OpenFlow port stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCounters {
    /// Bytes transmitted out of this port.
    pub tx_bytes: u64,
    /// Bytes received into this port.
    pub rx_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Packets received.
    pub rx_packets: u64,
}

#[derive(Debug, Clone, Copy)]
struct LinkRuntime {
    up: bool,
    /// Next instant the a→b direction is free to start serializing.
    next_free_ab: SimTime,
    /// Next instant the b→a direction is free.
    next_free_ba: SimTime,
}

/// One hop of a precomputed path: the link and the traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Which link is traversed.
    pub link: LinkId,
    /// True when traversing from endpoint `a` to endpoint `b`.
    pub a_to_b: bool,
}

/// Tuning knobs distinguishing emulation from hardware backends (Fig. 8).
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Per-switch forwarding delay. Software switches (OVS) are an order of
    /// magnitude slower than hardware ASICs (§VII of the paper).
    pub switch_forward_delay: SimDuration,
    /// Delay for loopback delivery between co-located processes.
    pub loopback_delay: SimDuration,
    /// Routing metric.
    pub routing: RoutingAlgo,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            // ~50 µs models an OVS software switch under emulation load.
            switch_forward_delay: SimDuration::from_micros(50),
            loopback_delay: SimDuration::from_micros(20),
            routing: RoutingAlgo::ShortestLatency,
        }
    }
}

impl NetworkConfig {
    /// The configuration used for the "hardware testbed" comparison backend:
    /// ASIC-speed switching and kernel-bypass loopback.
    pub fn hardware() -> Self {
        NetworkConfig {
            switch_forward_delay: SimDuration::from_nanos(800),
            loopback_delay: SimDuration::from_micros(5),
            routing: RoutingAlgo::ShortestLatency,
        }
    }
}

/// A shared, interior-mutable handle to a [`Network`].
pub type NetHandle = Rc<RefCell<Network>>;

/// The emulated network state.
pub struct Network {
    topo: Topology,
    cfg: NetworkConfig,
    links: Vec<LinkRuntime>,
    node_up: Vec<bool>,
    /// routes[src][dst] — full hop list, or `None` if unreachable.
    routes: Vec<Vec<Option<Vec<Hop>>>>,
    placement: HashMap<ProcessId, NodeId>,
    counters: HashMap<(NodeId, PortNo), PortCounters>,
    node_tx_bytes: Vec<u64>,
    node_rx_bytes: Vec<u64>,
    drops: HashMap<DropCause, u64>,
    delivered_packets: u64,
}

impl Network {
    /// Builds a network over `topo` with default configuration and computes
    /// routes proactively.
    pub fn new(topo: Topology) -> Self {
        Self::with_config(topo, NetworkConfig::default())
    }

    /// Builds a network with an explicit configuration.
    pub fn with_config(topo: Topology, cfg: NetworkConfig) -> Self {
        let n = topo.node_count();
        let links = vec![
            LinkRuntime {
                up: true,
                next_free_ab: SimTime::ZERO,
                next_free_ba: SimTime::ZERO
            };
            topo.link_count()
        ];
        let mut net = Network {
            topo,
            cfg,
            links,
            node_up: vec![true; n],
            routes: Vec::new(),
            placement: HashMap::new(),
            counters: HashMap::new(),
            node_tx_bytes: vec![0; n],
            node_rx_bytes: vec![0; n],
            drops: HashMap::new(),
            delivered_packets: 0,
        };
        net.recompute_routes();
        net
    }

    /// Wraps the network in a shared handle.
    pub fn into_handle(self) -> NetHandle {
        Rc::new(RefCell::new(self))
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Places a process on a host. Multiple processes may share a host
    /// (co-location, as in the Fig. 6a setup where each site runs a broker,
    /// a producer and a consumer).
    ///
    /// # Panics
    ///
    /// Panics if `node` is a switch.
    pub fn place(&mut self, pid: ProcessId, node: NodeId) {
        assert_eq!(
            self.topo.node(node).kind,
            NodeKind::Host,
            "processes can only be placed on hosts, {} is a switch",
            self.topo.node(node).name
        );
        self.placement.insert(pid, node);
    }

    /// The host a process is placed on, if any.
    pub fn placement(&self, pid: ProcessId) -> Option<NodeId> {
        self.placement.get(&pid).copied()
    }

    /// Recomputes all-pairs routes over currently-up links using the
    /// configured metric. Stream2gym programs routes proactively; call this
    /// after topology-affecting faults only if re-routing is desired.
    pub fn recompute_routes(&mut self) {
        let n = self.topo.node_count();
        let mut routes = Vec::with_capacity(n);
        for src in 0..n {
            routes.push(self.dijkstra(NodeId(src as u32)));
        }
        self.routes = routes;
    }

    fn dijkstra(&self, src: NodeId) -> Vec<Option<Vec<Hop>>> {
        let n = self.topo.node_count();
        // cost = (primary, secondary) per the routing metric.
        let mut dist: Vec<Option<(u128, u128)>> = vec![None; n];
        let mut prev: Vec<Option<(NodeId, Hop)>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[src.index()] = Some((0, 0));
        // Adjacency once.
        let mut adj: Vec<Vec<(NodeId, Hop, u64)>> = vec![Vec::new(); n];
        for (lid, link) in self.topo.links() {
            if !self.links[lid.index()].up {
                continue;
            }
            if !self.node_up[link.a.index()] || !self.node_up[link.b.index()] {
                continue;
            }
            let lat = link.spec.latency.as_nanos();
            adj[link.a.index()].push((
                link.b,
                Hop {
                    link: lid,
                    a_to_b: true,
                },
                lat,
            ));
            adj[link.b.index()].push((
                link.a,
                Hop {
                    link: lid,
                    a_to_b: false,
                },
                lat,
            ));
        }
        for _ in 0..n {
            // Pick unvisited node with least cost (n is small; O(n^2) fine).
            let mut best: Option<(usize, (u128, u128))> = None;
            for (i, d) in dist.iter().enumerate() {
                if visited[i] {
                    continue;
                }
                if let Some(d) = d {
                    if best.is_none_or(|(_, bd)| *d < bd) {
                        best = Some((i, *d));
                    }
                }
            }
            let (u, du) = match best {
                Some(x) => x,
                None => break,
            };
            visited[u] = true;
            for &(v, hop, lat) in &adj[u] {
                let step = match self.cfg.routing {
                    RoutingAlgo::ShortestLatency => (lat as u128, 1u128),
                    RoutingAlgo::MinHop => (1u128, lat as u128),
                };
                let cand = (du.0 + step.0, du.1 + step.1);
                let better = match dist[v.index()] {
                    None => true,
                    Some(dv) => cand < dv,
                };
                if better && !visited[v.index()] {
                    dist[v.index()] = Some(cand);
                    prev[v.index()] = Some((NodeId(u as u32), hop));
                }
            }
        }
        // Reconstruct paths.
        let mut out = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for dst in 0..n {
            if dst == src.index() {
                out.push(Some(Vec::new()));
                continue;
            }
            if dist[dst].is_none() {
                out.push(None);
                continue;
            }
            let mut hops = Vec::new();
            let mut cur = dst;
            while cur != src.index() {
                let (p, hop) = prev[cur].expect("reachable node has predecessor");
                hops.push(hop);
                cur = p.index();
            }
            hops.reverse();
            out.push(Some(hops));
        }
        out
    }

    /// The current route between two nodes, if any.
    pub fn route_between(&self, src: NodeId, dst: NodeId) -> Option<&[Hop]> {
        self.routes[src.index()][dst.index()].as_deref()
    }

    /// Marks a link up or down. Packets crossing a down link are dropped —
    /// routes are *not* recomputed automatically (proactive routing).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link.index()].up = up;
    }

    /// Whether a link is currently up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.links[link.index()].up
    }

    /// Marks a node up or down. A down node neither sends, receives, nor
    /// forwards.
    pub fn set_node_up(&mut self, node: NodeId, up: bool) {
        self.node_up[node.index()] = up;
    }

    /// Whether a node is currently up.
    pub fn node_up(&self, node: NodeId) -> bool {
        self.node_up[node.index()]
    }

    /// Disconnects a host: all adjacent links go down (the Fig. 6 failure).
    pub fn disconnect_host(&mut self, node: NodeId) {
        for l in self.topo.adjacent(node) {
            self.set_link_up(l, false);
        }
    }

    /// Reconnects a host: all adjacent links come back up.
    pub fn reconnect_host(&mut self, node: NodeId) {
        for l in self.topo.adjacent(node) {
            self.set_link_up(l, true);
        }
    }

    /// Retunes a link's one-way latency (dynamic operating conditions).
    pub fn set_link_latency(&mut self, link: LinkId, lat: SimDuration) {
        self.topo.link_mut(link).spec.latency = lat;
    }

    /// Retunes a link's loss percentage (gray failures, congestion).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `0.0..=100.0`.
    pub fn set_link_loss(&mut self, link: LinkId, pct: f64) {
        assert!(
            (0.0..=100.0).contains(&pct),
            "loss must be in 0..=100, got {pct}"
        );
        self.topo.link_mut(link).spec.loss_pct = pct;
    }

    /// Port counters for `(node, port)`; zeros if nothing has flowed.
    pub fn port_counters(&self, node: NodeId, port: PortNo) -> PortCounters {
        self.counters
            .get(&(node, port))
            .copied()
            .unwrap_or_default()
    }

    /// Total bytes transmitted by a node across all its ports.
    pub fn node_tx_bytes(&self, node: NodeId) -> u64 {
        self.node_tx_bytes[node.index()]
    }

    /// Total bytes received by a node across all its ports.
    pub fn node_rx_bytes(&self, node: NodeId) -> u64 {
        self.node_rx_bytes[node.index()]
    }

    /// Packets delivered end-to-end.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Drop count for a cause.
    pub fn drops(&self, cause: DropCause) -> u64 {
        self.drops.get(&cause).copied().unwrap_or(0)
    }

    fn record_drop(&mut self, cause: DropCause) -> Delivery {
        *self.drops.entry(cause).or_insert(0) += 1;
        Delivery::Drop
    }

    /// Routes one packet; the core of the [`Transport`] implementation.
    pub fn route_packet(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
    ) -> Delivery {
        let (src, dst) = match (self.placement(from), self.placement(to)) {
            (Some(s), Some(d)) => (s, d),
            _ => return self.record_drop(DropCause::Unplaced),
        };
        if !self.node_up[src.index()] || !self.node_up[dst.index()] {
            return self.record_drop(DropCause::NodeDown);
        }
        if src == dst {
            return Delivery::After(self.cfg.loopback_delay);
        }
        let path = match self.routes[src.index()][dst.index()].clone() {
            Some(p) => p,
            None => return self.record_drop(DropCause::NoRoute),
        };
        // Check the whole path first: a down link or node anywhere blackholes
        // the packet (proactive routes are not patched around failures).
        for hop in &path {
            let rt = self.links[hop.link.index()];
            if !rt.up {
                return self.record_drop(DropCause::LinkDown);
            }
            let l = self.topo.link(hop.link);
            let (next, _) = if hop.a_to_b { (l.b, l.a) } else { (l.a, l.b) };
            if !self.node_up[next.index()] {
                return self.record_drop(DropCause::NodeDown);
            }
        }
        // Bernoulli loss per link.
        for hop in &path {
            let loss = self.topo.link(hop.link).spec.loss_pct;
            if loss > 0.0 && rng.gen::<f64>() * 100.0 < loss {
                return self.record_drop(DropCause::Loss);
            }
        }
        // Accumulate delay hop by hop with FIFO queuing per direction.
        let mut cursor = now;
        let mut switch_hops = 0u32;
        for hop in &path {
            let l = self.topo.link(hop.link);
            let ser = match l.spec.bandwidth_bps {
                Some(bw) => SimDuration::from_nanos(
                    ((bytes as u128 * 8 * 1_000_000_000) / bw as u128) as u64,
                ),
                None => SimDuration::ZERO,
            };
            let rt = &mut self.links[hop.link.index()];
            let next_free = if hop.a_to_b {
                &mut rt.next_free_ab
            } else {
                &mut rt.next_free_ba
            };
            let depart = (*next_free).max(cursor);
            *next_free = depart + ser;
            cursor = depart + ser + l.spec.latency;
            // Port accounting.
            let (tx_node, tx_port, rx_node, rx_port) = if hop.a_to_b {
                (l.a, l.port_a, l.b, l.port_b)
            } else {
                (l.b, l.port_b, l.a, l.port_a)
            };
            let c = self.counters.entry((tx_node, tx_port)).or_default();
            c.tx_bytes += bytes as u64;
            c.tx_packets += 1;
            let c = self.counters.entry((rx_node, rx_port)).or_default();
            c.rx_bytes += bytes as u64;
            c.rx_packets += 1;
            self.node_tx_bytes[tx_node.index()] += bytes as u64;
            self.node_rx_bytes[rx_node.index()] += bytes as u64;
            // Intermediate nodes on the path are switches that add
            // forwarding delay (the final hop's receiver is the host).
            if self.topo.node(rx_node).kind == NodeKind::Switch {
                switch_hops += 1;
            }
        }
        cursor += self.cfg.switch_forward_delay * switch_hops as u64;
        Delivery::After(cursor - now)
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.topo.node_count())
            .field("links", &self.topo.link_count())
            .field("placed", &self.placement.len())
            .field("delivered", &self.delivered_packets)
            .finish()
    }
}

/// Adapter installing a shared [`Network`] as the simulator transport.
#[derive(Debug, Clone)]
pub struct NetTransport(pub NetHandle);

impl Transport for NetTransport {
    fn route(
        &mut self,
        now: SimTime,
        rng: &mut StdRng,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
    ) -> Delivery {
        let mut net = self.0.borrow_mut();
        let d = net.route_packet(now, rng, from, to, bytes);
        if matches!(d, Delivery::After(_)) {
            net.delivered_packets += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;
    use rand::SeedableRng;

    fn two_host_net(spec: LinkSpec) -> (Network, ProcessId, ProcessId) {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        topo.add_host("h2").unwrap();
        topo.add_switch("s1").unwrap();
        topo.add_link("h1", "s1", spec).unwrap();
        topo.add_link("s1", "h2", spec).unwrap();
        let mut net = Network::new(topo);
        let p1 = ProcessId(0);
        let p2 = ProcessId(1);
        let h1 = net.topology().lookup("h1").unwrap();
        let h2 = net.topology().lookup("h2").unwrap();
        net.place(p1, h1);
        net.place(p2, h2);
        (net, p1, p2)
    }

    #[test]
    fn latency_accumulates_over_path() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new().latency_ms(10));
        let mut rng = StdRng::seed_from_u64(0);
        match net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 100) {
            Delivery::After(d) => {
                // 2 links × 10ms + 1 switch hop forwarding delay.
                let expect =
                    SimDuration::from_millis(20) + NetworkConfig::default().switch_forward_delay;
                assert_eq!(d, expect);
            }
            Delivery::Drop => panic!("should deliver"),
        }
    }

    #[test]
    fn loopback_for_colocated() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        let mut net = Network::new(topo);
        let h1 = net.topology().lookup("h1").unwrap();
        net.place(ProcessId(0), h1);
        net.place(ProcessId(1), h1);
        let mut rng = StdRng::seed_from_u64(0);
        match net.route_packet(SimTime::ZERO, &mut rng, ProcessId(0), ProcessId(1), 10) {
            Delivery::After(d) => assert_eq!(d, NetworkConfig::default().loopback_delay),
            Delivery::Drop => panic!("loopback must deliver"),
        }
    }

    #[test]
    fn bandwidth_serializes_back_to_back_packets() {
        // 1 Mbps link: a 125-byte packet takes exactly 1 ms to serialize.
        let (mut net, p1, p2) = two_host_net(
            LinkSpec::new()
                .latency(SimDuration::ZERO)
                .bandwidth_mbps(1.0),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let d1 = match net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 125) {
            Delivery::After(d) => d,
            _ => panic!(),
        };
        let d2 = match net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 125) {
            Delivery::After(d) => d,
            _ => panic!(),
        };
        // Second packet queues behind the first on both links.
        assert!(d2 > d1, "second packet must queue: {d2} vs {d1}");
        assert_eq!(d2.as_millis() - d1.as_millis(), 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new().loss_pct(100.0));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
                Delivery::Drop
            );
        }
        assert_eq!(net.drops(DropCause::Loss), 10);
    }

    #[test]
    fn partial_loss_roughly_matches_rate() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new().loss_pct(10.0));
        let mut rng = StdRng::seed_from_u64(42);
        let mut dropped = 0;
        let n = 10_000;
        for _ in 0..n {
            if net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10) == Delivery::Drop {
                dropped += 1;
            }
        }
        // Two 10%-lossy links ≈ 19% path loss; accept 16..22%.
        let rate = dropped as f64 / n as f64;
        assert!((0.16..0.22).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn link_down_blackholes() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new());
        let mut rng = StdRng::seed_from_u64(0);
        net.set_link_up(LinkId(0), false);
        assert_eq!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
            Delivery::Drop
        );
        assert_eq!(net.drops(DropCause::LinkDown), 1);
        net.set_link_up(LinkId(0), true);
        assert!(matches!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
            Delivery::After(_)
        ));
    }

    #[test]
    fn node_down_blocks_endpoints() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new());
        let mut rng = StdRng::seed_from_u64(0);
        let h2 = net.topology().lookup("h2").unwrap();
        net.set_node_up(h2, false);
        assert_eq!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
            Delivery::Drop
        );
        assert_eq!(net.drops(DropCause::NodeDown), 1);
    }

    #[test]
    fn disconnect_host_downs_adjacent_links() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new());
        let mut rng = StdRng::seed_from_u64(0);
        let h1 = net.topology().lookup("h1").unwrap();
        net.disconnect_host(h1);
        assert_eq!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
            Delivery::Drop
        );
        net.reconnect_host(h1);
        assert!(matches!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 10),
            Delivery::After(_)
        ));
    }

    #[test]
    fn counters_track_both_directions() {
        let (mut net, p1, p2) = two_host_net(LinkSpec::new());
        let mut rng = StdRng::seed_from_u64(0);
        net.route_packet(SimTime::ZERO, &mut rng, p1, p2, 500)
            .unwrap_delivery();
        let h1 = net.topology().lookup("h1").unwrap();
        let s1 = net.topology().lookup("s1").unwrap();
        let h2 = net.topology().lookup("h2").unwrap();
        assert_eq!(net.node_tx_bytes(h1), 500);
        assert_eq!(net.node_rx_bytes(h2), 500);
        // The switch both received and retransmitted the packet.
        assert_eq!(net.node_tx_bytes(s1), 500);
        assert_eq!(net.node_rx_bytes(s1), 500);
        let pc = net.port_counters(h1, PortNo(1));
        assert_eq!(pc.tx_bytes, 500);
        assert_eq!(pc.tx_packets, 1);
    }

    trait UnwrapDelivery {
        fn unwrap_delivery(self) -> SimDuration;
    }
    impl UnwrapDelivery for Delivery {
        fn unwrap_delivery(self) -> SimDuration {
            match self {
                Delivery::After(d) => d,
                Delivery::Drop => panic!("expected delivery"),
            }
        }
    }

    #[test]
    fn min_hop_routing_prefers_fewer_hops() {
        // h1 —(1ms)— s1 —(1ms)— h2   (2 hops, 2ms)
        // h1 —(10ms)——————————— h2   (1 hop, 10ms)
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        topo.add_host("h2").unwrap();
        topo.add_switch("s1").unwrap();
        topo.add_link("h1", "s1", LinkSpec::new().latency_ms(1))
            .unwrap();
        topo.add_link("s1", "h2", LinkSpec::new().latency_ms(1))
            .unwrap();
        topo.add_link("h1", "h2", LinkSpec::new().latency_ms(10))
            .unwrap();
        let h1 = topo.lookup("h1").unwrap();
        let h2 = topo.lookup("h2").unwrap();

        let lat_net = Network::with_config(
            topo.clone(),
            NetworkConfig {
                routing: RoutingAlgo::ShortestLatency,
                ..NetworkConfig::default()
            },
        );
        assert_eq!(lat_net.route_between(h1, h2).unwrap().len(), 2);

        let hop_net = Network::with_config(
            topo,
            NetworkConfig {
                routing: RoutingAlgo::MinHop,
                ..NetworkConfig::default()
            },
        );
        assert_eq!(hop_net.route_between(h1, h2).unwrap().len(), 1);
    }

    #[test]
    fn recompute_routes_after_failure_heals_path() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        topo.add_host("h2").unwrap();
        topo.add_switch("s1").unwrap();
        topo.add_switch("s2").unwrap();
        let fast = topo
            .add_link("h1", "s1", LinkSpec::new().latency_ms(1))
            .unwrap();
        topo.add_link("s1", "h2", LinkSpec::new().latency_ms(1))
            .unwrap();
        topo.add_link("h1", "s2", LinkSpec::new().latency_ms(5))
            .unwrap();
        topo.add_link("s2", "h2", LinkSpec::new().latency_ms(5))
            .unwrap();
        let mut net = Network::new(topo);
        let h1 = net.topology().lookup("h1").unwrap();
        let h2 = net.topology().lookup("h2").unwrap();
        net.place(ProcessId(0), h1);
        net.place(ProcessId(1), h2);
        let mut rng = StdRng::seed_from_u64(0);
        // Fast path via s1 in use.
        let d = net.route_packet(SimTime::ZERO, &mut rng, ProcessId(0), ProcessId(1), 10);
        assert!(matches!(d, Delivery::After(x) if x.as_millis() < 5));
        // Down the fast link: blackhole until routes are recomputed.
        net.set_link_up(fast, false);
        assert_eq!(
            net.route_packet(SimTime::ZERO, &mut rng, ProcessId(0), ProcessId(1), 10),
            Delivery::Drop
        );
        net.recompute_routes();
        let d = net.route_packet(SimTime::ZERO, &mut rng, ProcessId(0), ProcessId(1), 10);
        assert!(matches!(d, Delivery::After(x) if x.as_millis() >= 10));
    }

    #[test]
    fn unplaced_process_drops() {
        let (mut net, p1, _) = two_host_net(LinkSpec::new());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            net.route_packet(SimTime::ZERO, &mut rng, p1, ProcessId(99), 10),
            Delivery::Drop
        );
        assert_eq!(net.drops(DropCause::Unplaced), 1);
    }

    #[test]
    #[should_panic(expected = "only be placed on hosts")]
    fn placing_on_switch_panics() {
        let mut topo = Topology::new();
        topo.add_switch("s1").unwrap();
        let mut net = Network::new(topo);
        let s1 = net.topology().lookup("s1").unwrap();
        net.place(ProcessId(0), s1);
    }
}
