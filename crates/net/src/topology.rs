//! Topology description: hosts, switches, and shaped links.
//!
//! Mirrors the network-setup half of stream2gym's GraphML input (§III-C of
//! the paper): nodes are hosts or switches, and each link carries the
//! Table I link attributes — latency (`lat`), bandwidth (`bw`), loss
//! percentage (`loss`), and source/destination ports (`st`/`dt`).

use std::collections::HashMap;
use std::fmt;

use s2g_sim::SimDuration;

/// Identifies a node (host or switch) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index into the node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a link in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Raw index into the link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A port number on a node, as in the `st`/`dt` GraphML attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortNo(pub u16);

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth{}", self.0)
    }
}

/// Whether a node hosts application components or forwards packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host; application components (brokers, producers, SPE workers)
    /// can be placed here.
    Host,
    /// A packet-forwarding switch. Adds a forwarding delay per traversal,
    /// configurable to model software (OVS) vs hardware (ASIC) switching.
    Switch,
}

/// A node in the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// Unique name, e.g. `"h1"` or `"s1"`.
    pub name: String,
    /// Host or switch.
    pub kind: NodeKind,
    next_port: u16,
}

/// The Table I link attributes: latency, bandwidth, loss, and ports.
///
/// # Examples
///
/// ```
/// use s2g_net::LinkSpec;
/// use s2g_sim::SimDuration;
///
/// let spec = LinkSpec::new()
///     .latency(SimDuration::from_millis(50))
///     .bandwidth_mbps(100.0)
///     .loss_pct(0.5);
/// assert_eq!(spec.latency.as_millis(), 50);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// One-way propagation delay (the paper's `lat`, in ms).
    pub latency: SimDuration,
    /// Capacity in bits per second (the paper's `bw`, in Mbps); `None`
    /// models an unconstrained link.
    pub bandwidth_bps: Option<u64>,
    /// Random loss probability in percent (the paper's `loss`), `0.0..=100.0`.
    pub loss_pct: f64,
    /// Explicit source port (`st`); auto-assigned when `None`.
    pub src_port: Option<PortNo>,
    /// Explicit destination port (`dt`); auto-assigned when `None`.
    pub dst_port: Option<PortNo>,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(50),
            bandwidth_bps: None,
            loss_pct: 0.0,
            src_port: None,
            dst_port: None,
        }
    }
}

impl LinkSpec {
    /// A link with default attributes (50 µs latency, unconstrained).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the one-way latency.
    pub fn latency(mut self, lat: SimDuration) -> Self {
        self.latency = lat;
        self
    }

    /// Sets the one-way latency in milliseconds (the paper's unit).
    pub fn latency_ms(self, ms: u64) -> Self {
        self.latency(SimDuration::from_millis(ms))
    }

    /// Sets the capacity in Mbps (the paper's unit).
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not strictly positive.
    pub fn bandwidth_mbps(mut self, mbps: f64) -> Self {
        assert!(
            mbps > 0.0 && mbps.is_finite(),
            "bandwidth must be positive, got {mbps}"
        );
        self.bandwidth_bps = Some((mbps * 1e6) as u64);
        self
    }

    /// Sets the random loss percentage.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `0.0..=100.0`.
    pub fn loss_pct(mut self, pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&pct),
            "loss must be in 0..=100, got {pct}"
        );
        self.loss_pct = pct;
        self
    }

    /// Pins the source-side port number.
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = Some(PortNo(p));
        self
    }

    /// Pins the destination-side port number.
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = Some(PortNo(p));
        self
    }
}

/// A link instance inside a topology.
#[derive(Debug, Clone)]
pub struct Link {
    /// Endpoint closer to the `source` given at add time.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Shaping attributes.
    pub spec: LinkSpec,
    /// Port on `a`.
    pub port_a: PortNo,
    /// Port on `b`.
    pub port_b: PortNo,
}

/// An error raised while building or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node name was registered twice.
    DuplicateNode(String),
    /// A referenced node does not exist.
    UnknownNode(String),
    /// A link connects a node to itself.
    SelfLoop(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateNode(n) => write!(f, "duplicate node name `{n}`"),
            TopologyError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            TopologyError::SelfLoop(n) => write!(f, "link from `{n}` to itself"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A network topology under construction.
///
/// # Examples
///
/// ```
/// use s2g_net::{LinkSpec, Topology};
///
/// let mut topo = Topology::new();
/// let h1 = topo.add_host("h1")?;
/// let s1 = topo.add_switch("s1")?;
/// topo.add_link("h1", "s1", LinkSpec::new().latency_ms(5))?;
/// assert_eq!(topo.node_count(), 2);
/// assert_eq!(topo.link_count(), 1);
/// assert_eq!(topo.lookup("h1"), Some(h1));
/// assert_ne!(h1, s1);
/// # Ok::<(), s2g_net::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    by_name: HashMap<String, NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an end host named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateNode`] if the name is taken.
    pub fn add_host(&mut self, name: impl Into<String>) -> Result<NodeId, TopologyError> {
        self.add_node(name.into(), NodeKind::Host)
    }

    /// Adds a switch named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::DuplicateNode`] if the name is taken.
    pub fn add_switch(&mut self, name: impl Into<String>) -> Result<NodeId, TopologyError> {
        self.add_node(name.into(), NodeKind::Switch)
    }

    fn add_node(&mut self, name: String, kind: NodeKind) -> Result<NodeId, TopologyError> {
        if self.by_name.contains_key(&name) {
            return Err(TopologyError::DuplicateNode(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            next_port: 1,
        });
        Ok(id)
    }

    /// Adds an undirected link between two named nodes.
    ///
    /// # Errors
    ///
    /// Returns an error if either node is unknown or the link is a self-loop.
    pub fn add_link(
        &mut self,
        source: &str,
        target: &str,
        spec: LinkSpec,
    ) -> Result<LinkId, TopologyError> {
        let a = self
            .lookup(source)
            .ok_or_else(|| TopologyError::UnknownNode(source.into()))?;
        let b = self
            .lookup(target)
            .ok_or_else(|| TopologyError::UnknownNode(target.into()))?;
        if a == b {
            return Err(TopologyError::SelfLoop(source.into()));
        }
        let port_a = spec.src_port.unwrap_or_else(|| self.alloc_port(a));
        let port_b = spec.dst_port.unwrap_or_else(|| self.alloc_port(b));
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            spec,
            port_a,
            port_b,
        });
        Ok(id)
    }

    fn alloc_port(&mut self, node: NodeId) -> PortNo {
        let n = &mut self.nodes[node.index()];
        let p = PortNo(n.next_port);
        n.next_port += 1;
        p
    }

    /// Looks a node up by name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The node table entry for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The link table entry for `id`.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link access (used to retune shaping between runs).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Iterates over all nodes with their ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over all links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Links adjacent to `node`.
    pub fn adjacent(&self, node: NodeId) -> Vec<LinkId> {
        self.links()
            .filter(|(_, l)| l.a == node || l.b == node)
            .map(|(id, _)| id)
            .collect()
    }

    /// Builds the paper's "one big switch" abstraction (§III-D): one switch
    /// `s1` with every listed host attached by a link with `spec`.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate host names.
    pub fn one_big_switch<'a>(
        hosts: impl IntoIterator<Item = &'a str>,
        spec: LinkSpec,
    ) -> Result<Topology, TopologyError> {
        let mut topo = Topology::new();
        topo.add_switch("s1")?;
        for h in hosts {
            topo.add_host(h)?;
            topo.add_link(h, "s1", spec)?;
        }
        Ok(topo)
    }

    /// Builds a star of `n` hosts (`h1..hn`) around a hub switch — the
    /// Fig. 6a evaluation setup.
    ///
    /// # Errors
    ///
    /// Propagates build errors (cannot occur for valid `n`).
    pub fn star(n: usize, spec: LinkSpec) -> Result<Topology, TopologyError> {
        let names: Vec<String> = (1..=n).map(|i| format!("h{i}")).collect();
        Topology::one_big_switch(names.iter().map(|s| s.as_str()), spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_topology() {
        let mut topo = Topology::new();
        let h1 = topo.add_host("h1").unwrap();
        let h2 = topo.add_host("h2").unwrap();
        let s1 = topo.add_switch("s1").unwrap();
        let l1 = topo.add_link("h1", "s1", LinkSpec::new()).unwrap();
        let l2 = topo.add_link("h2", "s1", LinkSpec::new()).unwrap();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 2);
        assert_eq!(topo.node(h1).kind, NodeKind::Host);
        assert_eq!(topo.node(s1).kind, NodeKind::Switch);
        assert_eq!(topo.link(l1).a, h1);
        assert_eq!(topo.link(l2).a, h2);
        assert_eq!(topo.adjacent(s1), vec![l1, l2]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        assert_eq!(
            topo.add_host("h1"),
            Err(TopologyError::DuplicateNode("h1".into()))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        assert!(matches!(
            topo.add_link("h1", "nope", LinkSpec::new()),
            Err(TopologyError::UnknownNode(_))
        ));
    }

    #[test]
    fn self_loop_rejected() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        assert!(matches!(
            topo.add_link("h1", "h1", LinkSpec::new()),
            Err(TopologyError::SelfLoop(_))
        ));
    }

    #[test]
    fn ports_auto_assign_sequentially() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        topo.add_switch("s1").unwrap();
        topo.add_switch("s2").unwrap();
        let l1 = topo.add_link("h1", "s1", LinkSpec::new()).unwrap();
        let l2 = topo.add_link("h1", "s2", LinkSpec::new()).unwrap();
        assert_eq!(topo.link(l1).port_a, PortNo(1));
        assert_eq!(topo.link(l2).port_a, PortNo(2));
        assert_eq!(topo.link(l1).port_b, PortNo(1));
        assert_eq!(topo.link(l2).port_b, PortNo(1));
    }

    #[test]
    fn explicit_ports_respected() {
        let mut topo = Topology::new();
        topo.add_host("h1").unwrap();
        topo.add_switch("s1").unwrap();
        let l = topo
            .add_link("h1", "s1", LinkSpec::new().src_port(7).dst_port(9))
            .unwrap();
        assert_eq!(topo.link(l).port_a, PortNo(7));
        assert_eq!(topo.link(l).port_b, PortNo(9));
    }

    #[test]
    fn one_big_switch_shape() {
        let topo = Topology::one_big_switch(["h1", "h2", "h3"], LinkSpec::new()).unwrap();
        assert_eq!(topo.node_count(), 4);
        assert_eq!(topo.link_count(), 3);
        let s1 = topo.lookup("s1").unwrap();
        assert_eq!(topo.adjacent(s1).len(), 3);
    }

    #[test]
    fn star_names_hosts() {
        let topo = Topology::star(10, LinkSpec::new()).unwrap();
        assert_eq!(topo.node_count(), 11);
        assert!(topo.lookup("h10").is_some());
        assert!(topo.lookup("h11").is_none());
    }

    #[test]
    fn linkspec_builders() {
        let s = LinkSpec::new()
            .latency_ms(25)
            .bandwidth_mbps(10.0)
            .loss_pct(1.5);
        assert_eq!(s.latency.as_millis(), 25);
        assert_eq!(s.bandwidth_bps, Some(10_000_000));
        assert!((s.loss_pct - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss must be in 0..=100")]
    fn bad_loss_panics() {
        let _ = LinkSpec::new().loss_pct(150.0);
    }
}
