//! Failure injection.
//!
//! The paper's `faultCfg` graph attribute describes reliability tests: link
//! failures, transient failures, and system crashes. [`FaultPlan`] is the
//! schedule of such events, and [`FaultInjector`] is a simulated process that
//! applies them to the live [`Network`] at the right instants (§V-B network
//! partitioning experiment).

use std::fmt;

use s2g_sim::{Ctx, Message, Process, ProcessId, SimDuration, SimTime};

use crate::network::NetHandle;
use crate::topology::NodeId;

/// One scheduled fault (or repair) action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Bring the link between two named nodes down.
    LinkDown(String, String),
    /// Bring the link between two named nodes back up.
    LinkUp(String, String),
    /// Disconnect a host: all adjacent links go down (Fig. 6 failure).
    Disconnect(String),
    /// Reconnect a host: all adjacent links come back up.
    Reconnect(String),
    /// Crash a node entirely (it stops sending/receiving/forwarding).
    NodeDown(String),
    /// Restore a crashed node.
    NodeUp(String),
    /// Set the loss percentage of the link between two nodes (gray failure).
    SetLoss(String, String, f64),
    /// Set the one-way latency of the link between two nodes.
    SetLatency(String, String, SimDuration),
    /// Recompute routes (model a control plane reacting to failures).
    RecomputeRoutes,
    /// Kill a named application process (an SPE worker by job name): its
    /// in-memory state, timers, and in-flight messages are lost. Applied by
    /// the scenario orchestrator, which owns the process table — the
    /// network-level [`FaultInjector`] records it without touching links.
    CrashProcess(String),
    /// Respawn a previously crashed process fresh; with checkpointing
    /// enabled it restores the latest snapshot and resumes from committed
    /// offsets.
    RestartProcess(String),
    /// Kill a broker process (by declaration index): its partition logs,
    /// group offsets, roles, timers, and in-flight messages are lost.
    /// Applied by the scenario orchestrator, like [`CrashProcess`].
    ///
    /// [`CrashProcess`]: FaultAction::CrashProcess
    CrashBroker(u32),
    /// Respawn a previously crashed broker with a bumped incarnation; with
    /// a durable broker log attached it replays persisted segments, rebuilds
    /// its high watermarks and consumer-group offsets, and re-registers with
    /// the controller before serving again.
    RestartBroker(u32),
    /// Kill a store-server replica (by flattened replica index across the
    /// scenario's store declarations): its KV blobs, tables, and group
    /// op log are lost with the process. With a replicated store
    /// (`Scenario::with_replicated_store`) the surviving members fail over;
    /// standalone, the durability tier is simply gone. Applied by the
    /// scenario orchestrator, like [`CrashProcess`].
    ///
    /// [`CrashProcess`]: FaultAction::CrashProcess
    CrashStore(u32),
    /// Respawn a previously crashed store replica in a recovering state: it
    /// pulls the op log from a ready group member, applies it, and only
    /// then rejoins (a standalone store restarts empty).
    RestartStore(u32),
}

impl FaultAction {
    /// True for actions that target an application process rather than the
    /// network; these are applied by the scenario orchestrator.
    pub fn is_process_action(&self) -> bool {
        matches!(
            self,
            FaultAction::CrashProcess(_)
                | FaultAction::RestartProcess(_)
                | FaultAction::CrashBroker(_)
                | FaultAction::RestartBroker(_)
                | FaultAction::CrashStore(_)
                | FaultAction::RestartStore(_)
        )
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::LinkDown(a, b) => write!(f, "link {a}<->{b} down"),
            FaultAction::LinkUp(a, b) => write!(f, "link {a}<->{b} up"),
            FaultAction::Disconnect(h) => write!(f, "disconnect {h}"),
            FaultAction::Reconnect(h) => write!(f, "reconnect {h}"),
            FaultAction::NodeDown(n) => write!(f, "node {n} down"),
            FaultAction::NodeUp(n) => write!(f, "node {n} up"),
            FaultAction::SetLoss(a, b, p) => write!(f, "link {a}<->{b} loss={p}%"),
            FaultAction::SetLatency(a, b, d) => write!(f, "link {a}<->{b} lat={d}"),
            FaultAction::RecomputeRoutes => write!(f, "recompute routes"),
            FaultAction::CrashProcess(p) => write!(f, "crash process {p}"),
            FaultAction::RestartProcess(p) => write!(f, "restart process {p}"),
            FaultAction::CrashBroker(b) => write!(f, "crash broker b{b}"),
            FaultAction::RestartBroker(b) => write!(f, "restart broker b{b}"),
            FaultAction::CrashStore(r) => write!(f, "crash store replica {r}"),
            FaultAction::RestartStore(r) => write!(f, "restart store replica {r}"),
        }
    }
}

/// A time-ordered schedule of fault actions.
///
/// # Examples
///
/// ```
/// use s2g_net::{FaultAction, FaultPlan};
/// use s2g_sim::{SimDuration, SimTime};
///
/// // The Fig. 6 partition: disconnect h3 at t=180s for 120 seconds.
/// let plan = FaultPlan::new()
///     .at(SimTime::from_secs(180), FaultAction::Disconnect("h3".into()))
///     .at(SimTime::from_secs(300), FaultAction::Reconnect("h3".into()));
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `action` at absolute time `at`. Events are kept sorted by
    /// time regardless of insertion order; same-instant events keep their
    /// insertion order, so `at(t, down).at(t, up)` still means down-then-up.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        let idx = self.events.partition_point(|(t, _)| *t <= at);
        self.events.insert(idx, (at, action));
        self
    }

    /// Schedules a transient host disconnection: down at `start`, back up
    /// after `duration`.
    pub fn transient_disconnect(self, host: &str, start: SimTime, duration: SimDuration) -> Self {
        self.at(start, FaultAction::Disconnect(host.into()))
            .at(start + duration, FaultAction::Reconnect(host.into()))
    }

    /// Schedules `n` link flaps of `down_for` each, spaced `period` apart.
    pub fn flapping_link(
        mut self,
        a: &str,
        b: &str,
        first: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        n: usize,
    ) -> Self {
        for i in 0..n {
            let t0 = first + period * i as u64;
            self = self
                .at(t0, FaultAction::LinkDown(a.into(), b.into()))
                .at(t0 + down_for, FaultAction::LinkUp(a.into(), b.into()));
        }
        self
    }

    /// Schedules a process crash at `at`, restarted `down_for` later — the
    /// worker crash/recover scenario in one call.
    pub fn crash_restart(self, process: &str, at: SimTime, down_for: SimDuration) -> Self {
        self.at(at, FaultAction::CrashProcess(process.into()))
            .at(at + down_for, FaultAction::RestartProcess(process.into()))
    }

    /// Schedules a process crash with no restart.
    pub fn crash_process(self, process: &str, at: SimTime) -> Self {
        self.at(at, FaultAction::CrashProcess(process.into()))
    }

    /// Schedules a broker crash (by declaration index) at `at`, restarted
    /// `down_for` later — the broker-bounce scenario in one call.
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_net::{FaultAction, FaultPlan};
    /// use s2g_sim::{SimDuration, SimTime};
    ///
    /// let plan = FaultPlan::new().crash_restart_broker(
    ///     0,
    ///     SimTime::from_secs(30),
    ///     SimDuration::from_secs(5),
    /// );
    /// assert_eq!(plan.len(), 2);
    /// assert_eq!(plan.events()[0].1, FaultAction::CrashBroker(0));
    /// assert_eq!(plan.events()[1].0, SimTime::from_secs(35));
    /// ```
    pub fn crash_restart_broker(self, broker: u32, at: SimTime, down_for: SimDuration) -> Self {
        self.at(at, FaultAction::CrashBroker(broker))
            .at(at + down_for, FaultAction::RestartBroker(broker))
    }

    /// Schedules a broker crash with no restart.
    pub fn crash_broker(self, broker: u32, at: SimTime) -> Self {
        self.at(at, FaultAction::CrashBroker(broker))
    }

    /// Schedules a store-replica crash (by flattened replica index) at
    /// `at`, restarted `down_for` later — the store-failover scenario in
    /// one call.
    ///
    /// # Examples
    ///
    /// ```
    /// use s2g_net::{FaultAction, FaultPlan};
    /// use s2g_sim::{SimDuration, SimTime};
    ///
    /// let plan = FaultPlan::new().crash_restart_store(
    ///     0,
    ///     SimTime::from_secs(10),
    ///     SimDuration::from_secs(3),
    /// );
    /// assert_eq!(plan.events()[0].1, FaultAction::CrashStore(0));
    /// assert_eq!(plan.events()[1].0, SimTime::from_secs(13));
    /// ```
    pub fn crash_restart_store(self, replica: u32, at: SimTime, down_for: SimDuration) -> Self {
        self.at(at, FaultAction::CrashStore(replica))
            .at(at + down_for, FaultAction::RestartStore(replica))
    }

    /// Schedules a store-replica crash with no restart.
    pub fn crash_store(self, replica: u32, at: SimTime) -> Self {
        self.at(at, FaultAction::CrashStore(replica))
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no actions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in time order (ties keep insertion order).
    pub fn events(&self) -> &[(SimTime, FaultAction)] {
        &self.events
    }

    /// The process-level events (crash/restart), in time order. These are
    /// applied by the scenario orchestrator rather than the network
    /// injector.
    pub fn process_events(&self) -> impl Iterator<Item = &(SimTime, FaultAction)> {
        self.events.iter().filter(|(_, a)| a.is_process_action())
    }

    /// True when the plan contains network-level events that need a
    /// [`FaultInjector`].
    pub fn has_network_events(&self) -> bool {
        self.events.iter().any(|(_, a)| !a.is_process_action())
    }
}

/// A simulated process that applies a [`FaultPlan`] to the network.
///
/// Register it with the simulator and it schedules one timer per action;
/// applied actions are recorded in [`applied`](FaultInjector::applied) for
/// post-run assertions.
pub struct FaultInjector {
    net: NetHandle,
    plan: FaultPlan,
    applied: Vec<(SimTime, FaultAction)>,
}

impl FaultInjector {
    /// Creates an injector over the shared network for `plan`.
    pub fn new(net: NetHandle, plan: FaultPlan) -> Self {
        FaultInjector {
            net,
            plan,
            applied: Vec::new(),
        }
    }

    /// Actions applied so far, with their application times.
    pub fn applied(&self) -> &[(SimTime, FaultAction)] {
        &self.applied
    }

    fn find_link(
        net: &crate::network::Network,
        a: &str,
        b: &str,
    ) -> Option<crate::topology::LinkId> {
        let na = net.topology().lookup(a)?;
        let nb = net.topology().lookup(b)?;
        net.topology()
            .links()
            .find(|(_, l)| (l.a == na && l.b == nb) || (l.a == nb && l.b == na))
            .map(|(id, _)| id)
    }

    fn apply(&mut self, now: SimTime, idx: usize) {
        let action = self.plan.events[idx].1.clone();
        let mut net = self.net.borrow_mut();
        let lookup = |net: &crate::network::Network, n: &str| -> NodeId {
            net.topology()
                .lookup(n)
                .unwrap_or_else(|| panic!("fault references unknown node `{n}`"))
        };
        match &action {
            FaultAction::LinkDown(a, b) => {
                let l = Self::find_link(&net, a, b)
                    .unwrap_or_else(|| panic!("fault references unknown link {a}<->{b}"));
                net.set_link_up(l, false);
            }
            FaultAction::LinkUp(a, b) => {
                let l = Self::find_link(&net, a, b)
                    .unwrap_or_else(|| panic!("fault references unknown link {a}<->{b}"));
                net.set_link_up(l, true);
            }
            FaultAction::Disconnect(h) => {
                let n = lookup(&net, h);
                net.disconnect_host(n);
            }
            FaultAction::Reconnect(h) => {
                let n = lookup(&net, h);
                net.reconnect_host(n);
            }
            FaultAction::NodeDown(h) => {
                let n = lookup(&net, h);
                net.set_node_up(n, false);
            }
            FaultAction::NodeUp(h) => {
                let n = lookup(&net, h);
                net.set_node_up(n, true);
            }
            FaultAction::SetLoss(a, b, pct) => {
                let l = Self::find_link(&net, a, b)
                    .unwrap_or_else(|| panic!("fault references unknown link {a}<->{b}"));
                net.set_link_loss(l, *pct);
            }
            FaultAction::SetLatency(a, b, d) => {
                let l = Self::find_link(&net, a, b)
                    .unwrap_or_else(|| panic!("fault references unknown link {a}<->{b}"));
                net.set_link_latency(l, *d);
            }
            FaultAction::RecomputeRoutes => net.recompute_routes(),
            // Process-level actions are the scenario orchestrator's job (it
            // owns the simulator's process table); the network injector just
            // records them for the applied-actions log.
            FaultAction::CrashProcess(_)
            | FaultAction::RestartProcess(_)
            | FaultAction::CrashBroker(_)
            | FaultAction::RestartBroker(_)
            | FaultAction::CrashStore(_)
            | FaultAction::RestartStore(_) => {}
        }
        drop(net);
        self.applied.push((now, action));
    }
}

impl Process for FaultInjector {
    fn name(&self) -> &str {
        "fault-injector"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, (at, _)) in self.plan.events.iter().enumerate() {
            ctx.set_timer_at(*at, i as u64);
        }
    }

    fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        let now = ctx.now();
        self.apply(now, tag as usize);
        ctx.trace_with("fault", || format!("{}", self.applied.last().unwrap().1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetTransport, Network};
    use crate::topology::{LinkSpec, Topology};
    use s2g_sim::Sim;

    fn star3() -> NetHandle {
        Network::new(Topology::star(3, LinkSpec::new()).unwrap()).into_handle()
    }

    #[test]
    fn plan_builders() {
        let plan = FaultPlan::new()
            .transient_disconnect("h1", SimTime::from_secs(10), SimDuration::from_secs(5))
            .flapping_link(
                "h2",
                "s1",
                SimTime::from_secs(20),
                SimDuration::from_secs(1),
                SimDuration::from_secs(4),
                2,
            );
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.events()[0].0, SimTime::from_secs(10));
        assert_eq!(plan.events()[1].0, SimTime::from_secs(15));
    }

    #[test]
    fn events_sorted_by_time_across_interleaved_builders() {
        // Insert out of order on purpose: a late `at()`, then a flapping
        // link whose windows straddle it, then an early `at()`.
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(30), FaultAction::Disconnect("h1".into()))
            .flapping_link(
                "h2",
                "s1",
                SimTime::from_secs(10),
                SimDuration::from_secs(5),
                SimDuration::from_secs(20),
                2,
            )
            .at(SimTime::from_secs(1), FaultAction::RecomputeRoutes);
        let times: Vec<u64> = plan.events().iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![1, 10, 15, 30, 30, 35]);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "events() must be time-ordered");
        // Same-instant events keep insertion order: the Disconnect at t=30
        // was inserted before the flap's second LinkDown at t=30.
        assert!(matches!(plan.events()[3].1, FaultAction::Disconnect(_)));
        assert!(matches!(plan.events()[4].1, FaultAction::LinkDown(_, _)));
    }

    #[test]
    fn process_events_are_split_from_network_events() {
        let plan = FaultPlan::new()
            .crash_restart("job1", SimTime::from_secs(10), SimDuration::from_secs(5))
            .at(SimTime::from_secs(2), FaultAction::Disconnect("h1".into()));
        assert_eq!(plan.process_events().count(), 2);
        assert!(plan.has_network_events());
        let only_process = FaultPlan::new().crash_process("job1", SimTime::from_secs(1));
        assert!(!only_process.has_network_events());
        assert!(only_process.events()[0].1.is_process_action());
    }

    #[test]
    fn injector_records_process_actions_without_touching_links() {
        let net = star3();
        let plan = FaultPlan::new().crash_restart(
            "job1",
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
        );
        let mut sim = Sim::new(0);
        let inj = sim.spawn(Box::new(FaultInjector::new(net.clone(), plan)));
        sim.run_until(SimTime::from_secs(3));
        let inj = sim.process_ref::<FaultInjector>(inj).unwrap();
        assert_eq!(inj.applied().len(), 2);
        let n = net.borrow();
        for (l, _) in n.topology().links() {
            assert!(n.link_up(l), "process faults must not touch links");
        }
    }

    #[test]
    fn injector_applies_disconnect_and_reconnect() {
        let net = star3();
        let plan = FaultPlan::new().transient_disconnect(
            "h1",
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
        );
        let mut sim = Sim::new(0);
        sim.set_transport(Box::new(NetTransport(net.clone())));
        let inj = sim.spawn(Box::new(FaultInjector::new(net.clone(), plan)));
        sim.run_until(SimTime::from_millis(1_500));
        {
            let n = net.borrow();
            let h1 = n.topology().lookup("h1").unwrap();
            let l = n.topology().adjacent(h1)[0];
            assert!(!n.link_up(l), "down during window");
        }
        sim.run_until(SimTime::from_secs(4));
        {
            let n = net.borrow();
            let h1 = n.topology().lookup("h1").unwrap();
            let l = n.topology().adjacent(h1)[0];
            assert!(n.link_up(l), "restored after window");
        }
        let inj = sim.process_ref::<FaultInjector>(inj).unwrap();
        assert_eq!(inj.applied().len(), 2);
    }

    #[test]
    fn injector_sets_loss_and_latency() {
        let net = star3();
        let plan = FaultPlan::new()
            .at(
                SimTime::from_secs(1),
                FaultAction::SetLoss("h1".into(), "s1".into(), 25.0),
            )
            .at(
                SimTime::from_secs(1),
                FaultAction::SetLatency("h2".into(), "s1".into(), SimDuration::from_millis(99)),
            );
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(FaultInjector::new(net.clone(), plan)));
        sim.run_until(SimTime::from_secs(2));
        let n = net.borrow();
        let h1 = n.topology().lookup("h1").unwrap();
        let h2 = n.topology().lookup("h2").unwrap();
        let l1 = n.topology().adjacent(h1)[0];
        let l2 = n.topology().adjacent(h2)[0];
        assert!((n.topology().link(l1).spec.loss_pct - 25.0).abs() < 1e-9);
        assert_eq!(n.topology().link(l2).spec.latency.as_millis(), 99);
    }

    #[test]
    fn injector_crashes_nodes() {
        let net = star3();
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(1), FaultAction::NodeDown("h2".into()))
            .at(SimTime::from_secs(3), FaultAction::NodeUp("h2".into()));
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(FaultInjector::new(net.clone(), plan)));
        sim.run_until(SimTime::from_secs(2));
        {
            let n = net.borrow();
            let h2 = n.topology().lookup("h2").unwrap();
            assert!(!n.node_up(h2));
        }
        sim.run_until(SimTime::from_secs(4));
        let n = net.borrow();
        let h2 = n.topology().lookup("h2").unwrap();
        assert!(n.node_up(h2));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_in_plan_panics() {
        let net = star3();
        let plan = FaultPlan::new().at(SimTime::from_secs(1), FaultAction::Disconnect("zz".into()));
        let mut sim = Sim::new(0);
        sim.spawn(Box::new(FaultInjector::new(net, plan)));
        sim.run_until(SimTime::from_secs(2));
    }
}
