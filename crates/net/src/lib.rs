//! # s2g-net — emulated network substrate
//!
//! The Rust stand-in for Mininet in stream2gym-rs. Provides:
//!
//! * [`Topology`] — hosts, switches, and links with the paper's Table I
//!   attributes (`lat`, `bw`, `loss`, `st`, `dt`),
//! * [`Network`] — the live network: proactive shortest-path routing,
//!   FIFO bandwidth shaping, Bernoulli loss, per-port OpenFlow-style
//!   counters, and administrative link/node state,
//! * [`NetTransport`] — the [`s2g_sim::Transport`] adapter,
//! * [`FaultPlan`] / [`FaultInjector`] — scheduled failure injection
//!   (link failures, host disconnections, crashes, gray loss),
//! * [`TxSampler`] — periodic throughput sampling for bandwidth plots.
//!
//! # Example
//!
//! ```
//! use s2g_net::{LinkSpec, Network, NetTransport, Topology};
//! use s2g_sim::{Sim, SimTime};
//!
//! let topo = Topology::one_big_switch(["h1", "h2"], LinkSpec::new().latency_ms(10))?;
//! let net = Network::new(topo).into_handle();
//! let mut sim = Sim::new(1);
//! sim.set_transport(Box::new(NetTransport(net.clone())));
//! // ... spawn processes, place them with net.borrow_mut().place(pid, node) ...
//! sim.run_until(SimTime::from_secs(1));
//! # Ok::<(), s2g_net::TopologyError>(())
//! ```

#![warn(missing_docs)]

mod faults;
mod network;
mod stats;
mod topology;

pub use faults::{FaultAction, FaultInjector, FaultPlan};
pub use network::{
    DropCause, Hop, NetHandle, NetTransport, Network, NetworkConfig, PortCounters, RoutingAlgo,
};
pub use stats::{TxSample, TxSampler, TxSeries};
pub use topology::{
    Link, LinkId, LinkSpec, Node, NodeId, NodeKind, PortNo, Topology, TopologyError,
};
