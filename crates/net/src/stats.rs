//! Periodic traffic sampling.
//!
//! stream2gym polls OpenFlow port statistics to report per-port throughput
//! over time (used for Fig. 6d's sending-throughput plot). [`TxSampler`]
//! does the same against the emulated network: every `interval` it reads the
//! cumulative tx counters of the watched nodes and records the delta as a
//! throughput sample.

use s2g_sim::{Ctx, Message, Process, ProcessId, SimDuration, SimTime};

use crate::network::NetHandle;
use crate::topology::NodeId;

/// One throughput sample for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxSample {
    /// End of the sampling window.
    pub at: SimTime,
    /// Transmit throughput over the window, in Mbps.
    pub tx_mbps: f64,
    /// Receive throughput over the window, in Mbps.
    pub rx_mbps: f64,
}

/// A per-node throughput time series.
#[derive(Debug, Clone, Default)]
pub struct TxSeries {
    /// The node name this series describes.
    pub node: String,
    /// Samples in time order.
    pub samples: Vec<TxSample>,
}

impl TxSeries {
    /// The peak transmit throughput seen, in Mbps.
    pub fn peak_tx_mbps(&self) -> f64 {
        self.samples.iter().map(|s| s.tx_mbps).fold(0.0, f64::max)
    }

    /// The mean transmit throughput across all samples, in Mbps.
    pub fn mean_tx_mbps(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.tx_mbps).sum::<f64>() / self.samples.len() as f64
    }
}

/// A simulated process sampling node throughput at a fixed interval.
pub struct TxSampler {
    net: NetHandle,
    interval: SimDuration,
    watched: Vec<(NodeId, String)>,
    last: Vec<(u64, u64)>,
    series: Vec<TxSeries>,
    stop_at: SimTime,
}

impl TxSampler {
    /// Watches the named nodes, sampling every `interval` until `stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if a node name is unknown or `interval` is zero.
    pub fn new(net: NetHandle, nodes: &[&str], interval: SimDuration, stop_at: SimTime) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let watched: Vec<(NodeId, String)> = {
            let n = net.borrow();
            nodes
                .iter()
                .map(|name| {
                    let id = n
                        .topology()
                        .lookup(name)
                        .unwrap_or_else(|| panic!("sampler references unknown node `{name}`"));
                    (id, (*name).to_string())
                })
                .collect()
        };
        let series = watched
            .iter()
            .map(|(_, name)| TxSeries {
                node: name.clone(),
                samples: Vec::new(),
            })
            .collect();
        let last = vec![(0, 0); watched.len()];
        TxSampler {
            net,
            interval,
            watched,
            last,
            series,
            stop_at,
        }
    }

    /// The collected series, one per watched node, in registration order.
    pub fn series(&self) -> &[TxSeries] {
        &self.series
    }

    /// The series for a node by name.
    pub fn series_for(&self, node: &str) -> Option<&TxSeries> {
        self.series.iter().find(|s| s.node == node)
    }

    fn sample(&mut self, now: SimTime) {
        let net = self.net.borrow();
        let window_s = self.interval.as_secs_f64();
        for (i, (node, _)) in self.watched.iter().enumerate() {
            let tx = net.node_tx_bytes(*node);
            let rx = net.node_rx_bytes(*node);
            let (ltx, lrx) = self.last[i];
            self.last[i] = (tx, rx);
            self.series[i].samples.push(TxSample {
                at: now,
                tx_mbps: (tx - ltx) as f64 * 8.0 / 1e6 / window_s,
                rx_mbps: (rx - lrx) as f64 * 8.0 / 1e6 / window_s,
            });
        }
    }
}

impl Process for TxSampler {
    fn name(&self) -> &str {
        "tx-sampler"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, 0);
    }

    fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        let now = ctx.now();
        self.sample(now);
        if now + self.interval <= self.stop_at {
            ctx.set_timer(self.interval, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{NetTransport, Network};
    use crate::topology::{LinkSpec, Topology};
    use s2g_sim::{downcast, Sim};

    #[derive(Debug)]
    struct Blob(usize);
    impl Message for Blob {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    /// Sends `size`-byte blobs to a peer at a fixed rate.
    struct Blaster {
        peer: ProcessId,
        size: usize,
        every: SimDuration,
        until: SimTime,
    }
    impl Process for Blaster {
        fn name(&self) -> &str {
            "blaster"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.every, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, _: Box<dyn Message>) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
            ctx.send(self.peer, Blob(self.size));
            if ctx.now() + self.every <= self.until {
                ctx.set_timer(self.every, 0);
            }
        }
    }

    struct Sink {
        got: u64,
    }
    impl Process for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ProcessId, msg: Box<dyn Message>) {
            let b = downcast::<Blob>(msg).unwrap();
            self.got += b.0 as u64;
        }
    }

    #[test]
    fn sampler_measures_send_rate() {
        let topo = Topology::star(2, LinkSpec::new()).unwrap();
        let net = Network::new(topo).into_handle();
        let mut sim = Sim::new(0);
        sim.set_transport(Box::new(NetTransport(net.clone())));
        let sink = sim.spawn(Box::new(Sink { got: 0 }));
        // 1250 bytes every 10 ms = 1 Mbps.
        let blaster = sim.spawn(Box::new(Blaster {
            peer: sink,
            size: 1_250,
            every: SimDuration::from_millis(10),
            until: SimTime::from_secs(10),
        }));
        {
            let mut n = net.borrow_mut();
            let h1 = n.topology().lookup("h1").unwrap();
            let h2 = n.topology().lookup("h2").unwrap();
            n.place(blaster, h1);
            n.place(sink, h2);
        }
        let sampler = sim.spawn(Box::new(TxSampler::new(
            net.clone(),
            &["h1"],
            SimDuration::from_millis(500),
            SimTime::from_secs(10),
        )));
        sim.run_until(SimTime::from_secs(10));
        let s = sim.process_ref::<TxSampler>(sampler).unwrap();
        let series = s.series_for("h1").unwrap();
        assert!(
            series.samples.len() >= 19,
            "got {} samples",
            series.samples.len()
        );
        // Steady-state samples should be ~1 Mbps.
        let mid = &series.samples[5];
        assert!((mid.tx_mbps - 1.0).abs() < 0.1, "tx {} Mbps", mid.tx_mbps);
        assert!((series.mean_tx_mbps() - 1.0).abs() < 0.15);
        assert!(series.peak_tx_mbps() <= 1.2);
        // And the sink actually received the bytes.
        assert!(sim.process_ref::<Sink>(sink).unwrap().got > 1_000_000);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let net = Network::new(Topology::star(1, LinkSpec::new()).unwrap()).into_handle();
        let _ = TxSampler::new(
            net,
            &["zz"],
            SimDuration::from_secs(1),
            SimTime::from_secs(1),
        );
    }
}
