//! # s2g-ml — machine learning kit for the example applications
//!
//! * [`LinearSvm`] — Pegasos-trained linear SVM for the fraud-detection
//!   pipeline's anomaly prediction,
//! * [`SentimentLexicon`] — polarity/subjectivity scoring for the
//!   sentiment-analysis pipeline's tweet stream.

#![warn(missing_docs)]

mod sentiment;
mod svm;

pub use sentiment::{Sentiment, SentimentLexicon};
pub use svm::{Label, LinearSvm, SvmParams};
