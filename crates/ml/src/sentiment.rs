//! Lexicon-based sentiment analysis: polarity and subjectivity.
//!
//! The sentiment-analysis application "computes the subjectivity and
//! polarity, two common natural language processing tasks, of each message
//! in a Tweet stream". This module provides a TextBlob-style lexicon scorer:
//! polarity in `[-1, 1]`, subjectivity in `[0, 1]`, with negation flipping
//! and intensifier scaling.

use std::collections::HashMap;

/// A sentiment score for one text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sentiment {
    /// Polarity in `[-1, 1]`: negative ↔ positive.
    pub polarity: f64,
    /// Subjectivity in `[0, 1]`: objective ↔ subjective.
    pub subjectivity: f64,
}

const POSITIVE: &[(&str, f64, f64)] = &[
    // (word, polarity, subjectivity)
    ("good", 0.7, 0.6),
    ("great", 0.8, 0.75),
    ("excellent", 1.0, 1.0),
    ("amazing", 0.9, 0.9),
    ("awesome", 0.9, 0.9),
    ("love", 0.8, 0.8),
    ("like", 0.4, 0.5),
    ("happy", 0.8, 0.9),
    ("best", 1.0, 0.3),
    ("wonderful", 0.9, 0.9),
    ("fantastic", 0.9, 0.9),
    ("nice", 0.6, 0.8),
    ("enjoy", 0.6, 0.7),
    ("fast", 0.3, 0.4),
    ("reliable", 0.6, 0.5),
    ("beautiful", 0.85, 0.9),
    ("win", 0.6, 0.5),
    ("success", 0.7, 0.5),
    ("perfect", 1.0, 0.9),
    ("smooth", 0.5, 0.6),
];

const NEGATIVE: &[(&str, f64, f64)] = &[
    ("bad", -0.7, 0.65),
    ("terrible", -1.0, 1.0),
    ("awful", -1.0, 1.0),
    ("hate", -0.8, 0.9),
    ("sad", -0.7, 0.85),
    ("worst", -1.0, 0.3),
    ("horrible", -0.9, 0.9),
    ("slow", -0.3, 0.4),
    ("broken", -0.6, 0.4),
    ("fail", -0.7, 0.5),
    ("failure", -0.7, 0.5),
    ("bug", -0.4, 0.3),
    ("crash", -0.6, 0.4),
    ("angry", -0.8, 0.9),
    ("annoying", -0.7, 0.9),
    ("poor", -0.6, 0.6),
    ("disappointing", -0.75, 0.8),
    ("ugly", -0.7, 0.9),
    ("lose", -0.5, 0.5),
    ("problem", -0.4, 0.3),
];

const NEGATIONS: &[&str] = &[
    "not", "no", "never", "neither", "nor", "cannot", "dont", "doesnt", "isnt", "wasnt",
];

const INTENSIFIERS: &[(&str, f64)] = &[
    ("very", 1.3),
    ("extremely", 1.5),
    ("really", 1.25),
    ("so", 1.2),
    ("absolutely", 1.4),
    ("slightly", 0.6),
    ("somewhat", 0.7),
    ("barely", 0.5),
];

/// A sentiment lexicon scorer.
///
/// # Examples
///
/// ```
/// use s2g_ml::SentimentLexicon;
///
/// let lex = SentimentLexicon::new();
/// let s = lex.score("this release is really great");
/// assert!(s.polarity > 0.5);
/// let s = lex.score("the deploy was not good");
/// assert!(s.polarity < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SentimentLexicon {
    entries: HashMap<&'static str, (f64, f64)>,
    intensifiers: HashMap<&'static str, f64>,
}

impl Default for SentimentLexicon {
    fn default() -> Self {
        Self::new()
    }
}

impl SentimentLexicon {
    /// Builds the embedded lexicon.
    pub fn new() -> Self {
        let mut entries = HashMap::new();
        for (w, p, s) in POSITIVE.iter().chain(NEGATIVE) {
            entries.insert(*w, (*p, *s));
        }
        let intensifiers = INTENSIFIERS.iter().copied().collect();
        SentimentLexicon {
            entries,
            intensifiers,
        }
    }

    /// Lowercase alphanumeric tokenization.
    pub fn tokenize(text: &str) -> Vec<String> {
        text.to_lowercase()
            .split(|c: char| !c.is_alphanumeric() && c != '\'')
            .map(|t| t.replace('\'', ""))
            .filter(|t| !t.is_empty())
            .collect()
    }

    /// Scores a text: mean signed polarity and mean subjectivity over the
    /// sentiment-bearing words, with negation flipping (a negation within
    /// the two preceding tokens inverts polarity at 0.5 strength) and
    /// intensifier scaling from the immediately preceding token.
    pub fn score(&self, text: &str) -> Sentiment {
        let tokens = Self::tokenize(text);
        let mut polarity_sum = 0.0;
        let mut subjectivity_sum = 0.0;
        let mut hits = 0usize;
        for (i, tok) in tokens.iter().enumerate() {
            let Some(&(mut pol, subj)) = self.entries.get(tok.as_str()) else {
                continue;
            };
            if i > 0 {
                if let Some(&boost) = self.intensifiers.get(tokens[i - 1].as_str()) {
                    pol = (pol * boost).clamp(-1.0, 1.0);
                }
            }
            let negated = tokens[i.saturating_sub(2)..i]
                .iter()
                .any(|t| NEGATIONS.contains(&t.as_str()));
            if negated {
                pol *= -0.5;
            }
            polarity_sum += pol;
            subjectivity_sum += subj;
            hits += 1;
        }
        if hits == 0 {
            return Sentiment {
                polarity: 0.0,
                subjectivity: 0.0,
            };
        }
        Sentiment {
            polarity: (polarity_sum / hits as f64).clamp(-1.0, 1.0),
            subjectivity: (subjectivity_sum / hits as f64).clamp(0.0, 1.0),
        }
    }

    /// Number of lexicon entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false — the embedded lexicon is non-empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative_texts() {
        let lex = SentimentLexicon::new();
        assert!(lex.score("what a great wonderful day").polarity > 0.5);
        assert!(lex.score("terrible awful horrible experience").polarity < -0.5);
    }

    #[test]
    fn neutral_text_scores_zero() {
        let lex = SentimentLexicon::new();
        let s = lex.score("the train departs at nine from platform two");
        assert_eq!(s.polarity, 0.0);
        assert_eq!(s.subjectivity, 0.0);
    }

    #[test]
    fn negation_flips_polarity() {
        let lex = SentimentLexicon::new();
        let plain = lex.score("this is good").polarity;
        let negated = lex.score("this is not good").polarity;
        assert!(plain > 0.0);
        assert!(negated < 0.0, "negated polarity {negated}");
    }

    #[test]
    fn intensifier_scales() {
        let lex = SentimentLexicon::new();
        let plain = lex.score("it is good").polarity;
        let boosted = lex.score("it is very good").polarity;
        let damped = lex.score("it is slightly good").polarity;
        assert!(boosted > plain);
        assert!(damped < plain);
    }

    #[test]
    fn subjectivity_reflects_lexicon() {
        let lex = SentimentLexicon::new();
        let opinion = lex.score("i love this amazing thing");
        let factual = lex.score("the best result was recorded");
        assert!(opinion.subjectivity > factual.subjectivity);
    }

    #[test]
    fn tokenizer_strips_punctuation() {
        let toks = SentimentLexicon::tokenize("Hello, World! don't BREAK-this");
        assert_eq!(toks, vec!["hello", "world", "dont", "break", "this"]);
    }

    #[test]
    fn scores_are_bounded() {
        let lex = SentimentLexicon::new();
        for text in [
            "extremely excellent absolutely perfect very amazing",
            "extremely terrible absolutely awful very horrible",
        ] {
            let s = lex.score(text);
            assert!((-1.0..=1.0).contains(&s.polarity));
            assert!((0.0..=1.0).contains(&s.subjectivity));
        }
    }
}
