//! A linear support vector machine trained with Pegasos SGD.
//!
//! The fraud-detection application in the paper "runs a machine learning
//! algorithm (SVM) to predict anomalies in a stream of financial
//! transactions". This is that algorithm: primal linear SVM with hinge loss
//! and L2 regularization, trained by the Pegasos stochastic sub-gradient
//! method (Shalev-Shwartz et al., ICML'07). Deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
/// A binary label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// The positive class (e.g. fraudulent).
    Positive,
    /// The negative class (e.g. legitimate).
    Negative,
}

impl Label {
    /// +1.0 / -1.0.
    pub fn sign(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => -1.0,
        }
    }

    /// From a sign.
    pub fn from_sign(s: f64) -> Label {
        if s >= 0.0 {
            Label::Positive
        } else {
            Label::Negative
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmParams {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of SGD steps.
    pub steps: usize,
    /// RNG seed for example sampling.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lambda: 1e-3,
            steps: 20_000,
            seed: 7,
        }
    }
}

/// A trained linear SVM.
///
/// # Examples
///
/// ```
/// use s2g_ml::{Label, LinearSvm, SvmParams};
///
/// // Two separable clusters in 2D.
/// let data: Vec<(Vec<f64>, Label)> = (0..50)
///     .map(|i| {
///         let x = i as f64 / 50.0;
///         (vec![x, x + 2.0], Label::Positive)
///     })
///     .chain((0..50).map(|i| {
///         let x = i as f64 / 50.0;
///         (vec![x, x - 2.0], Label::Negative)
///     }))
///     .collect();
/// let svm = LinearSvm::train(&data, SvmParams::default());
/// assert_eq!(svm.predict(&[0.5, 2.5]), Label::Positive);
/// assert_eq!(svm.predict(&[0.5, -1.5]), Label::Negative);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on `(features, label)` pairs with Pegasos.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or feature vectors have inconsistent
    /// dimensions.
    pub fn train(data: &[(Vec<f64>, Label)], params: SvmParams) -> LinearSvm {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let dim = data[0].0.len();
        assert!(
            data.iter().all(|(x, _)| x.len() == dim),
            "inconsistent feature dimensions"
        );
        // The bias is folded into the weight vector as a constant feature,
        // so it is shrunk and projected like every other coordinate —
        // otherwise early large-step bias updates dominate under class
        // imbalance and the model collapses to the majority class.
        let mut w = vec![0.0f64; dim + 1];
        let mut rng = StdRng::seed_from_u64(params.seed);
        for t in 1..=params.steps {
            let (x, y) = &data[rng.gen_range(0..data.len())];
            let y = y.sign();
            let eta = 1.0 / (params.lambda * t as f64);
            let wx = dot(&w[..dim], x) + w[dim];
            let margin = y * wx;
            // w ← (1 − ηλ)w  [+ ηy·x if the example violates the margin]
            let shrink = 1.0 - eta * params.lambda;
            for wi in w.iter_mut() {
                *wi *= shrink;
            }
            if margin < 1.0 {
                for (wi, xi) in w.iter_mut().zip(x) {
                    *wi += eta * y * xi;
                }
                w[dim] += eta * y;
            }
            // Pegasos projection onto the ‖w‖ ≤ 1/√λ ball.
            let norm = dot(&w, &w).sqrt();
            let cap = 1.0 / params.lambda.sqrt();
            if norm > cap {
                let scale = cap / norm;
                for wi in w.iter_mut() {
                    *wi *= scale;
                }
            }
        }
        let bias = w.pop().expect("augmented coordinate");
        LinearSvm { weights: w, bias }
    }

    /// The signed distance to the separating hyperplane.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn margin(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        dot(&self.weights, x) + self.bias
    }

    /// Classifies a feature vector.
    pub fn predict(&self, x: &[f64]) -> Label {
        Label::from_sign(self.margin(x))
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &[(Vec<f64>, Label)]) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters(n: usize, gap: f64, seed: u64) -> Vec<(Vec<f64>, Label)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-0.3..0.3);
            data.push((vec![x, gap + noise], Label::Positive));
            let x: f64 = rng.gen_range(-1.0..1.0);
            let noise: f64 = rng.gen_range(-0.3..0.3);
            data.push((vec![x, -gap + noise], Label::Negative));
        }
        data
    }

    #[test]
    fn separable_data_high_accuracy() {
        let data = clusters(200, 1.5, 3);
        let svm = LinearSvm::train(&data, SvmParams::default());
        assert!(
            svm.accuracy(&data) > 0.98,
            "accuracy {}",
            svm.accuracy(&data)
        );
    }

    #[test]
    fn margins_have_correct_sign() {
        let data = clusters(100, 2.0, 5);
        let svm = LinearSvm::train(&data, SvmParams::default());
        assert!(svm.margin(&[0.0, 3.0]) > 0.0);
        assert!(svm.margin(&[0.0, -3.0]) < 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let data = clusters(100, 1.0, 9);
        let a = LinearSvm::train(&data, SvmParams::default());
        let b = LinearSvm::train(&data, SvmParams::default());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn weight_norm_respects_pegasos_ball() {
        let data = clusters(100, 1.0, 11);
        let params = SvmParams {
            lambda: 0.01,
            ..SvmParams::default()
        };
        let svm = LinearSvm::train(&data, params);
        let norm: f64 = svm.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm <= 1.0 / params.lambda.sqrt() + 1e-9);
    }

    #[test]
    fn label_signs() {
        assert_eq!(Label::Positive.sign(), 1.0);
        assert_eq!(Label::Negative.sign(), -1.0);
        assert_eq!(Label::from_sign(0.5), Label::Positive);
        assert_eq!(Label::from_sign(-0.5), Label::Negative);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let _ = LinearSvm::train(&[], SvmParams::default());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let data = clusters(10, 1.0, 1);
        let svm = LinearSvm::train(&data, SvmParams::default());
        let _ = svm.margin(&[1.0, 2.0, 3.0]);
    }
}
